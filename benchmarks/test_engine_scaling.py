"""Engine scaling gates: parallel == serial, and parallel is faster.

Three promises of :mod:`repro.engine`, pinned:

* sharding and the executor never change results — a 4-shard
  ProcessPool campaign is byte-identical to the serial reference;
* on a multi-core host, fanning a fig11-class sweep over 4 workers
  actually buys wall-clock (>= 2x over the in-process serial run);
* a campaign killed mid-run resumes from its journal executing only the
  unfinished shards.  The resumed journal is written to
  ``benchmarks/output/`` so CI archives a real checkpoint artifact.

The correctness gates run everywhere (``--benchmark-disable`` in CI);
the speedup gate needs >= 4 usable CPUs and skips elsewhere — a 1-core
container can verify determinism but not parallelism.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import ProcessPool, default_job_count, run_campaign
from repro.experiments.fig11_ber_cdf import placement_trial
from repro.sim.runner import MonteCarloRunner

from conftest import OUTPUT_DIR, record

SPEEDUP_TRIALS = 600
SPEEDUP_WORKERS = 4
MIN_SPEEDUP = 2.0


def test_sharded_process_pool_matches_serial():
    """The determinism contract, on the real fig11 trial function."""
    serial = MonteCarloRunner(7).run(placement_trial, 24)
    for shards, executor in ((1, None), (4, None),
                             (4, ProcessPool(jobs=2))):
        outcome = run_campaign(placement_trial, 24, master_seed=7,
                               num_shards=shards, executor=executor)
        assert [r.values for r in outcome.results] \
            == [r.values for r in serial], \
            f"shards={shards} executor={executor} diverged from serial"
        assert [r.seed for r in outcome.results] \
            == [r.seed for r in serial]


def test_resumed_campaign_checkpoint(tmp_path):
    """Kill a campaign after 2 of 4 shards; resume runs only the rest."""

    class Dying:
        def __init__(self, survive):
            self.survive = survive

        def run_shards(self, trial_fn, shards, of_total,
                       record_telemetry=False):
            from repro.engine import SerialExecutor

            inner = SerialExecutor().run_shards(
                trial_fn, shards, of_total,
                record_telemetry=record_telemetry)
            for count, result in enumerate(inner):
                if count == self.survive:
                    raise KeyboardInterrupt("killed mid-campaign")
                yield result

    store_path = tmp_path / "campaign.jsonl"
    with pytest.raises(KeyboardInterrupt):
        run_campaign(placement_trial, 16, master_seed=3, num_shards=4,
                     executor=Dying(survive=2), store=store_path)
    assert len(store_path.read_text().splitlines()) == 3

    resumed = run_campaign(placement_trial, 16, master_seed=3,
                           num_shards=4, store=store_path)
    assert resumed.resumed_shards == (0, 1)
    assert resumed.executed_shards == (2, 3)

    clean = run_campaign(placement_trial, 16, master_seed=3,
                         num_shards=4)
    assert np.array_equal(resumed.collect("ber_with"),
                          clean.collect("ber_with"))
    assert np.array_equal(resumed.collect("ber_without"),
                          clean.collect("ber_without"))

    # Archive the completed journal: CI uploads it as the
    # resumed-campaign checkpoint artifact.
    OUTPUT_DIR.mkdir(exist_ok=True)
    artifact = OUTPUT_DIR / "engine-resumed-campaign.jsonl"
    artifact.write_text(store_path.read_text())
    record("engine_resume",
           f"campaign of 16 trials / 4 shards killed after 2 shards;\n"
           f"resume executed shards {list(resumed.executed_shards)} "
           f"only and matched the uninterrupted run exactly.\n"
           f"journal: {artifact.name} "
           f"({artifact.stat().st_size} bytes)")


@pytest.mark.skipif(
    default_job_count() < SPEEDUP_WORKERS,
    reason=f"speedup gate needs >= {SPEEDUP_WORKERS} usable CPUs")
def test_parallel_speedup_on_fig11_class_sweep():
    """>= 2x wall-clock win at 4 workers on a fig11-class sweep."""
    # Warm both paths so import/fork costs don't pollute the timing.
    run_campaign(placement_trial, SPEEDUP_WORKERS,
                 num_shards=SPEEDUP_WORKERS,
                 executor=ProcessPool(jobs=SPEEDUP_WORKERS))

    start = time.perf_counter()
    serial = run_campaign(placement_trial, SPEEDUP_TRIALS, master_seed=1,
                          num_shards=SPEEDUP_WORKERS)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_campaign(placement_trial, SPEEDUP_TRIALS,
                            master_seed=1, num_shards=SPEEDUP_WORKERS,
                            executor=ProcessPool(jobs=SPEEDUP_WORKERS))
    parallel_s = time.perf_counter() - start

    assert [r.values for r in parallel.results] \
        == [r.values for r in serial.results]
    speedup = serial_s / parallel_s
    record("engine_scaling",
           f"fig11-class sweep, {SPEEDUP_TRIALS} trials: "
           f"serial {serial_s:.2f} s, {SPEEDUP_WORKERS} workers "
           f"{parallel_s:.2f} s -> {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, \
        f"expected >= {MIN_SPEEDUP}x at {SPEEDUP_WORKERS} workers, " \
        f"got {speedup:.2f}x (serial {serial_s:.2f} s, " \
        f"parallel {parallel_s:.2f} s)"
