"""Ablation benchmarks: beam orthogonality and joint modulation (§6.2-6.3)."""

from repro.experiments import ablations
from conftest import record


def test_ablation_orthogonal_beams(benchmark):
    ortho = benchmark.pedantic(ablations.run_orthogonality,
                               kwargs={"num_placements": 200},
                               rounds=1, iterations=1)
    modulation = ablations.run_modulation(num_placements=200)
    search = ablations.run_beam_search()
    record("ablations", ablations.render(ortho, modulation, search))

    # Section 6.2: orthogonal beams reduce same-loss placements and
    # widen the coverage angle relative to the Fig. 5(a) design.
    assert ortho.orthogonal_wins
    assert (ortho.coverage_angle_orthogonal_deg
            > ortho.coverage_angle_non_orthogonal_deg + 10.0)

    # Section 6.3: the joint decoder serves at least as many placements
    # as either single-dimension decoder, and strictly more than ASK
    # alone (the ambiguous cases exist).
    assert modulation.joint_dominates
    assert modulation.success_joint > modulation.success_ask_only
