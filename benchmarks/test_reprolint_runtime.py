"""Lint-runtime gate: the static pass must stay cheap enough to run
on every push.

Two budgets, measured over the real ``src/`` tree with the real rule
pack (file-scope extraction + the PAR0xx project graph):

* **cold** — empty summary cache, parallel extraction: < 10 s;
* **warm** — second run against the same cache: < 2 s.

A warm run must also be a *full* cache hit (every summary served from
disk, zero re-parses) and report byte-identical findings — a cache
that is fast because it silently recomputes, or silently diverges, is
worse than no cache.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

sys.path.insert(0, str(REPO_ROOT / "tools"))

from reprolint import run_lint  # noqa: E402

COLD_BUDGET_S = 10.0
WARM_BUDGET_S = 2.0


def test_lint_runtime_budgets(tmp_path):
    cache = tmp_path / "reprolint-cache"

    start = time.perf_counter()
    cold = run_lint([SRC], cache_dir=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_lint([SRC], cache_dir=cache)
    warm_s = time.perf_counter() - start

    assert cold_s < COLD_BUDGET_S, \
        f"cold lint took {cold_s:.2f}s (budget {COLD_BUDGET_S}s)"
    assert warm_s < WARM_BUDGET_S, \
        f"warm lint took {warm_s:.2f}s (budget {WARM_BUDGET_S}s)"

    assert cold.stats["cache_misses"] == cold.stats["files"]
    assert warm.stats["cache_hits"] == warm.stats["files"]
    assert warm.stats["cache_misses"] == 0
    assert warm.findings == cold.findings
