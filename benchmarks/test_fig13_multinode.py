"""Benchmark: Fig. 13 — mean per-node SNR vs simultaneous node count."""


from repro.experiments import fig13_multinode
from conftest import record


def test_fig13_multinode(benchmark):
    result = benchmark.pedantic(fig13_multinode.run,
                                kwargs={"trials_per_count": 20},
                                rounds=1, iterations=1)
    record("fig13_multinode", fig13_multinode.render(result))

    assert result.node_counts == (1, 2, 5, 10, 20)

    # Paper: "even when 20 sensors transmit simultaneously, their
    # average SNR is higher than 29 dB" — allow reproduction tolerance.
    assert result.sinr_at_max_nodes_db >= 25.0

    # Degradation from 1 to 20 nodes is mild (a few dB), not a collapse.
    assert 0.0 <= result.degradation_db <= 10.0

    # The FDM region (counts within the 10-channel budget) is ~flat.
    fdm_means = result.mean_sinr_db[:4]  # 1, 2, 5, 10 nodes
    assert float(fdm_means.max() - fdm_means.min()) <= 5.0
