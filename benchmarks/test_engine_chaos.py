"""Engine chaos gates: supervised campaigns survive injected faults.

Three promises of the :mod:`repro.engine` supervision layer, pinned on
the real fig11 trial function:

* a campaign whose workers crash, hang and corrupt payloads on a seeded
  :class:`~repro.engine.WorkerFaultSchedule` still completes — under
  ``on_failure="degrade"`` it recovers *every* trial and is exactly
  equal to the serial reference;
* a poison shard (sabotaged past ``max_attempts``) is quarantined, the
  campaign ends as an explicit :class:`PartialCampaignResult`, and the
  attempt/quarantine journal it leaves behind is archived to
  ``benchmarks/output/`` so CI uploads a real forensics artifact;
* supervision is close to free: a fault-free supervised campaign costs
  at most 5% wall-clock (plus a fixed epsilon for pool startup) over
  the plain :class:`ProcessPool`.

The correctness gates run everywhere (``--benchmark-disable`` in CI);
the overhead gate compares two real process pools, so it skips on
single-core containers where both timings are fork-bound noise.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import (
    Campaign,
    PartialCampaignResult,
    ProcessPool,
    ResultStore,
    SupervisedPool,
    SupervisionPolicy,
    WorkerFault,
    WorkerFaultSchedule,
    default_job_count,
    run_campaign,
)
from repro.experiments.fig11_ber_cdf import placement_trial

from conftest import OUTPUT_DIR, record

CHAOS_TRIALS = 16
CHAOS_SHARDS = 4
MAX_OVERHEAD = 1.05
OVERHEAD_EPSILON_S = 0.5  # one pool spin-up of slack on slow hosts
OVERHEAD_TRIALS = 60


def test_chaotic_campaign_recovers_every_trial():
    """Crash + hang + corrupt across shards; degrade recovers them all."""
    faults = WorkerFaultSchedule(faults={
        (0, 1): WorkerFault(kind="crash"),
        # hangs well past the 2 s deadline, but short enough that the
        # stuck worker does not stall interpreter shutdown for long
        (1, 1): WorkerFault(kind="hang", delay_s=4.0),
        (2, 1): WorkerFault(kind="corrupt"),
        # shard 3 is poison: sabotaged on every allowed attempt, so
        # only the degrade fallback can bring its trials home.
        (3, 1): WorkerFault(kind="crash"),
        (3, 2): WorkerFault(kind="crash"),
    })
    pool = SupervisedPool(
        jobs=2, faults=faults,
        policy=SupervisionPolicy(max_attempts=2, backoff_base_s=0.01,
                                 shard_timeout_s=2.0,
                                 on_failure="degrade"))
    outcome = run_campaign(placement_trial, CHAOS_TRIALS, master_seed=3,
                           num_shards=CHAOS_SHARDS, executor=pool)
    assert not outcome.is_partial
    assert outcome.num_trials == CHAOS_TRIALS

    serial = run_campaign(placement_trial, CHAOS_TRIALS, master_seed=3,
                          num_shards=CHAOS_SHARDS)
    assert [r.values for r in outcome.results] \
        == [r.values for r in serial.results]
    assert [r.seed for r in outcome.results] \
        == [r.seed for r in serial.results]

    report = pool.last_report
    assert report is not None
    kinds = sorted({f.kind for f in report.failures})
    assert kinds == ["error", "invalid", "timeout"]
    assert report.degraded == (3,)
    assert report.abandoned == ()
    record("engine_chaos",
           f"fig11-class sweep, {CHAOS_TRIALS} trials / "
           f"{CHAOS_SHARDS} shards under injected "
           f"crash+hang+corrupt: {report.retries} retries, "
           f"shard 3 recovered in-process; result exactly equals "
           f"the serial reference.")


def test_poison_shard_quarantine_journal_artifact(tmp_path):
    """Quarantine ends explicit and journaled; the journal is archived."""
    store_path = tmp_path / "campaign.jsonl"
    faults = WorkerFaultSchedule(faults={
        (1, 1): WorkerFault(kind="crash"),
        (1, 2): WorkerFault(kind="corrupt"),
    })
    pool = SupervisedPool(
        jobs=2, faults=faults,
        policy=SupervisionPolicy(max_attempts=2, backoff_base_s=0.01,
                                 on_failure="quarantine"))
    partial = Campaign(placement_trial, CHAOS_TRIALS, master_seed=3,
                       num_shards=CHAOS_SHARDS, executor=pool,
                       store=store_path).run()
    assert isinstance(partial, PartialCampaignResult)
    assert partial.quarantined_shards == (1,)
    assert partial.num_trials == CHAOS_TRIALS - len(partial.missing_trials)

    store = ResultStore(store_path)
    attempts = store.load_attempts()
    assert [(f.shard_id, f.kind) for f in attempts] \
        == [(1, "error"), (1, "invalid")]
    assert store.load_quarantined() == (1,)

    # Archive the quarantine journal: CI uploads it as the chaos
    # forensics artifact.
    OUTPUT_DIR.mkdir(exist_ok=True)
    artifact = OUTPUT_DIR / "engine-chaos-journal.jsonl"
    artifact.write_text(store_path.read_text())
    record("engine_quarantine",
           f"campaign of {CHAOS_TRIALS} trials / {CHAOS_SHARDS} shards "
           f"with a poison shard: quarantined shards "
           f"{list(partial.quarantined_shards)}, missing trials "
           f"{list(partial.missing_trials)}; every attempt and the "
           f"quarantine decision are journaled.\n"
           f"journal: {artifact.name} "
           f"({artifact.stat().st_size} bytes)")

    # The journal is a working checkpoint, not just forensics: a
    # fault-free re-run completes the campaign from it.
    resumed = Campaign(placement_trial, CHAOS_TRIALS, master_seed=3,
                       num_shards=CHAOS_SHARDS, store=store_path).run()
    assert not resumed.is_partial
    assert resumed.executed_shards == (1,)


@pytest.mark.skipif(
    default_job_count() < 2,
    reason="overhead gate compares two real 2-worker pools")
def test_supervision_overhead_is_negligible():
    """Fault-free supervised run costs <= 5% over the plain pool."""
    # Warm both pool paths so fork/import costs don't pollute timings.
    run_campaign(placement_trial, 2, num_shards=2,
                 executor=ProcessPool(jobs=2))
    run_campaign(placement_trial, 2, num_shards=2,
                 executor=SupervisedPool(jobs=2))

    start = time.perf_counter()
    plain = run_campaign(placement_trial, OVERHEAD_TRIALS, master_seed=1,
                         num_shards=4, executor=ProcessPool(jobs=2))
    plain_s = time.perf_counter() - start

    start = time.perf_counter()
    supervised = run_campaign(placement_trial, OVERHEAD_TRIALS,
                              master_seed=1, num_shards=4,
                              executor=SupervisedPool(jobs=2))
    supervised_s = time.perf_counter() - start

    assert [r.values for r in supervised.results] \
        == [r.values for r in plain.results]
    overhead = supervised_s / plain_s
    record("engine_chaos_overhead",
           f"fig11-class sweep, {OVERHEAD_TRIALS} trials / 4 shards, "
           f"2 workers: plain {plain_s:.2f} s, supervised "
           f"{supervised_s:.2f} s -> {overhead:.2f}x")
    assert supervised_s <= plain_s * MAX_OVERHEAD + OVERHEAD_EPSILON_S, \
        f"supervision overhead {overhead:.2f}x exceeds " \
        f"{MAX_OVERHEAD:.2f}x (+{OVERHEAD_EPSILON_S} s slack): " \
        f"plain {plain_s:.2f} s, supervised {supervised_s:.2f} s"
