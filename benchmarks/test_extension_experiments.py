"""Extension benchmarks: mobility, SDM scheduling, 60 GHz, motivation."""

from repro.experiments import extensions
from conftest import record


def test_extension_mobility(benchmark):
    result = benchmark.pedantic(extensions.run_mobility,
                                kwargs={"duration_s": 60.0},
                                rounds=1, iterations=1)
    record("extension_mobility", extensions.render_mobility(result))

    # "Works in dynamic environments": OTAM suffers less outage than the
    # Beam-1-only baseline while people repeatedly cross the link, and
    # every blockage event is absorbed as a polarity flip rather than a
    # re-search.
    assert result.otam_outage <= result.no_otam_outage
    assert result.polarity_flips >= 2
    assert result.mean_otam_snr_db > 15.0
    # Outages, when they happen, are sub-second walker transits.
    assert result.mean_outage_duration_s < 2.0


def test_extension_sdm_scheduler(benchmark):
    result = benchmark.pedantic(extensions.run_scheduler,
                                kwargs={"num_nodes": 20, "trials": 15},
                                rounds=1, iterations=1)
    record("extension_scheduler", extensions.render_scheduler(result))

    # Direction-aware assignment spreads co-channel partners far apart
    # and buys measurable SINR at 20 nodes.
    assert (result.min_separation_angular_deg
            > 3 * result.min_separation_round_robin_deg)
    assert result.gain_db > 1.0


def test_extension_60ghz(benchmark):
    result = benchmark.pedantic(extensions.run_60ghz, rounds=3, iterations=1)
    record("extension_60ghz", extensions.render_60ghz(result))

    # 7 GHz / 250 MHz: ~28x the device capacity (section 7a's numbers).
    assert 20.0 <= result.capacity_ratio <= 40.0
    # 60/24 GHz: 20 log10(2.5) ~ 8 dB extra free-space loss.
    assert 7.0 <= result.extra_path_loss_db_at_18m <= 9.0
    # Oxygen absorption is irrelevant indoors even at 60 GHz.
    assert result.oxygen_loss_db_at_18m < 0.5


def test_extension_motivation(benchmark):
    counts = benchmark.pedantic(extensions.run_motivation,
                                rounds=3, iterations=1)
    from repro.experiments.report import format_table
    record("extension_motivation", format_table(
        ["network", "1 Mbps IoT devices per AP"],
        [["WiFi channel (low-rate PHY)", counts["wifi"]],
         ["mmX AP (FDM + SDM)", counts["mmx"]]],
        title="Extension — section 1 motivation: spectrum strain"))

    # Section 1's argument quantified: an order of magnitude or more.
    assert counts["mmx"] > 30 * counts["wifi"]


def test_extension_channel_self_check(benchmark):
    stats = benchmark.pedantic(extensions.run_channel_stats,
                               rounds=1, iterations=1)
    record("extension_channel_stats",
           extensions.render_channel_stats(stats))

    # Section 2's claims, checked against our own traced channel.
    assert stats.is_sparse
    assert stats.median_path_count >= 2
    assert stats.median_delay_spread_ns < 50.0
    assert stats.flat_fading_at(10e6)


def test_extension_streaming(benchmark):
    result = benchmark.pedantic(extensions.run_streaming,
                                rounds=1, iterations=1)
    record("extension_streaming", extensions.render_streaming(result))

    # The rate adapter switches from coded to uncoded as SNR grows.
    assert result.modes[0] == "hamming74"
    assert result.modes[-1] == "uncoded"

    # Streaming is broken at 8 dB, essentially perfect from ~10-12 dB —
    # which is exactly why the paper's >=10-11 dB coverage target
    # (Fig. 10) is the right bar for HD cameras.
    assert result.delivery_ratios[0] < 0.5
    assert all(r > 0.95 for r in result.delivery_ratios[1:])
    assert all(l < 100.0 for l in result.p99_latencies_ms[1:])
