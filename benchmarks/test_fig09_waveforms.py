"""Benchmark: Fig. 9 + §6.3 — joint ASK-FSK decoding and ambiguity rate."""

from repro.experiments import fig09_waveforms
from conftest import record


def test_fig09_joint_ask_fsk(benchmark):
    result = benchmark.pedantic(fig09_waveforms.run,
                                kwargs={"num_placements": 300},
                                rounds=1, iterations=1)
    record("fig09_waveforms", fig09_waveforms.render(result))

    # Fig. 9(a): distinct beam losses decode via the ASK branch.
    assert result.ask_case.decoded_branch == "ask"
    assert result.ask_case.bit_errors == 0

    # Fig. 9(b): equal losses decode via the FSK branch.
    assert result.fsk_case.decoded_branch == "fsk"
    assert result.fsk_case.bit_errors == 0

    # Section 6.3: "a small chance (<10%) that the received power from
    # Beam 1 and Beam 0 experiences the same loss" — allow reproduction
    # tolerance around the quoted bound.
    assert result.ambiguous_fraction < 0.15

    # And joint modulation decodes all of those (given any signal).
    assert result.ambiguous_decoded_fraction >= 0.95
