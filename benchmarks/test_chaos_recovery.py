"""Chaos benchmark: the recovery ladder vs frozen config under faults.

Acceptance gate for the resilience layer: under identical, seeded fault
schedules the adaptive supervisor must (a) strictly beat the static
baseline wherever the faults leave headroom to exploit, (b) never do
worse, (c) return the link's SNR to its clean baseline once the faults
clear, and (d) reproduce bit-identically from one master seed.
"""

import numpy as np

from repro.experiments import chaos
from conftest import record

SEED = 7
"""One master seed for the whole gate.  Chosen so the Poisson draws
actually materialise every fault class (seed 0's kitchen-sink happens
to draw zero dropout events in 30 s at 2/min — a fair roll of the
dice, but useless as an acceptance gate)."""


def _sweep():
    return chaos.run_all(seed=SEED)


def test_chaos_recovery_sweep(benchmark):
    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record("chaos_recovery", chaos.render_all(outcomes)
           + "\n\n" + "\n\n".join(chaos.render(o) for o in outcomes))

    by_name = {o.scenario: o for o in outcomes}
    assert sorted(by_name) == ["blockage", "drift", "dropout",
                               "interference", "kitchen-sink", "stuck-beam"]

    # (c) every fault class: post-fault SNR back within tolerance of the
    # clean baseline — the ladder actually recovers, never wedges.
    for outcome in outcomes:
        assert outcome.recovered, f"{outcome.scenario} failed to recover"
        assert np.isfinite(outcome.result.post_fault_snr_db())

    # (b) adaptive never loses to static under identical faults.
    for outcome in outcomes:
        assert (outcome.result.adaptive_delivery_ratio
                >= outcome.result.static_delivery_ratio - 1e-12), \
            f"{outcome.scenario}: adaptive worse than static"

    # (a) where faults leave headroom (a healthy branch, a clean
    # channel), adaptive strictly wins.  kitchen-sink is the acceptance
    # scenario: blockers + interferer + dropouts in one schedule.
    for name in ("blockage", "interference", "stuck-beam", "kitchen-sink"):
        outcome = by_name[name]
        assert outcome.delivery_gain > 0.05, \
            f"{name}: expected a strict adaptive win, " \
            f"gain {outcome.delivery_gain:+.3f}"

    # The kitchen-sink schedule must actually contain the acceptance
    # fault classes it claims to cover.
    kinds = by_name["kitchen-sink"].result.schedule.kinds()
    for kind in ("blockage", "interference", "dropout"):
        assert kind in kinds


def test_chaos_ladder_rungs_all_fire():
    """Across the sweep every recovery mechanism sees real use."""
    fired = set()
    for outcome in chaos.run_all(seed=SEED):
        fired.update(outcome.action_counts())
    for policy in ("branch-fallback", "coding-step-down",
                   "channel-reallocation", "link-lost",
                   "reinit-attempt", "reinit-success"):
        assert policy in fired, f"rung never fired: {policy}"


def test_chaos_deterministic_from_master_seed():
    """(d) one master seed regenerates the whole outcome bit-identically."""
    a = chaos.run("kitchen-sink", seed=SEED)
    b = chaos.run("kitchen-sink", seed=SEED)
    assert a.result.schedule.events == b.result.schedule.events
    assert np.array_equal(a.result.adaptive_success, b.result.adaptive_success)
    assert np.array_equal(a.result.static_success, b.result.static_success)
    assert np.array_equal(a.result.adaptive_snr_db, b.result.adaptive_snr_db)
    assert a.action_counts() == b.action_counts()
    assert a.delivery_gain == b.delivery_gain

    different = chaos.run("kitchen-sink", seed=SEED + 1)
    assert different.result.schedule.events != a.result.schedule.events
