"""Telemetry overhead gate: recording must be cheap, null must be free.

The instrumentation contract (docs/observability.md) is that the
default :class:`~repro.telemetry.NullRecorder` costs essentially
nothing — hot loops guard whole blocks behind ``telemetry.enabled`` —
and that a live :class:`~repro.telemetry.Recorder` stays under 5%
end-to-end on a realistic chaos workload.  Wall-clock timing is
inherently noisy, so each configuration is timed as the *minimum* over
several repeats (the standard low-noise estimator: the min is the run
least disturbed by the host).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.link import OtamLink
from repro.faults import scenario_injector
from repro.resilience import ChaosSimulation
from repro.sim.environment import default_lab_room
from repro.sim.geometry import Point, angle_of
from repro.sim.placement import Placement
from repro.telemetry import NullRecorder, Recorder

from conftest import record

REPEATS = 5
DURATION_S = 20.0
TIME_STEP_S = 0.05
NULL_OVERHEAD_LIMIT = 0.03
"""NullRecorder must be within timing noise of the uninstrumented path."""

RECORDING_OVERHEAD_LIMIT = 0.05
"""The ISSUE gate: a live Recorder costs < 5% on the chaos workload."""


def _chaos_sim(telemetry) -> ChaosSimulation:
    """The benchmark workload: the kitchen-sink scenario, mid-room."""
    room = default_lab_room()
    ap = Point(room.width_m / 2.0, 0.15)
    node = Point(room.width_m / 2.0, 4.15)
    placement = Placement(node, angle_of(node, ap), ap, math.pi / 2)
    link = OtamLink(placement=placement, room=room)
    injector = scenario_injector("kitchen-sink", master_seed=0)
    return ChaosSimulation(link, injector, time_step_s=TIME_STEP_S,
                           telemetry=telemetry)


def _best_time(telemetry) -> float:
    """Min-of-N wall seconds for one full chaos run."""
    sim = _chaos_sim(telemetry)
    sim.run(DURATION_S)  # warm-up: JIT nothing, but fill caches
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        sim.run(DURATION_S)
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_gates():
    baseline_s = _best_time(None)
    null_s = _best_time(NullRecorder())
    recorder = Recorder()
    recording_s = _best_time(recorder)

    null_overhead = null_s / baseline_s - 1.0
    recording_overhead = recording_s / baseline_s - 1.0

    steps = int(round(DURATION_S / TIME_STEP_S))
    text = "\n".join([
        f"chaos workload: kitchen-sink, {DURATION_S:.0f} s simulated, "
        f"{steps} steps, min of {REPEATS} runs",
        f"  baseline (telemetry=None) : {baseline_s * 1e3:8.1f} ms",
        f"  NullRecorder              : {null_s * 1e3:8.1f} ms "
        f"({null_overhead:+.1%})",
        f"  Recorder (full recording) : {recording_s * 1e3:8.1f} ms "
        f"({recording_overhead:+.1%})",
        f"  gates: null < {NULL_OVERHEAD_LIMIT:.0%}, "
        f"recording < {RECORDING_OVERHEAD_LIMIT:.0%}",
    ])
    record("telemetry_overhead", text)

    assert null_overhead < NULL_OVERHEAD_LIMIT, (
        f"NullRecorder overhead {null_overhead:.1%} exceeds "
        f"{NULL_OVERHEAD_LIMIT:.0%} — the enabled-guard contract broke")
    assert recording_overhead < RECORDING_OVERHEAD_LIMIT, (
        f"Recorder overhead {recording_overhead:.1%} exceeds "
        f"{RECORDING_OVERHEAD_LIMIT:.0%}")

    # The recording run must actually have recorded — an accidentally
    # disabled recorder would pass the gates vacuously.
    assert recorder.metrics.counter("chaos.steps").value \
        == float(steps * (1 + REPEATS))


def test_recording_throughput_sane():
    """Raw verb cost: a Recorder sustains >1e5 counter bumps/second.

    Not a comparative gate — a floor so a pathological regression (say,
    re-validating the metric name on every increment) fails loudly.
    """
    recorder = Recorder()
    n = 100_000
    rng = np.random.default_rng(0)
    values = rng.random(n)
    start = time.perf_counter()
    for value in values:
        recorder.count("bench.counter", 1.0)
        recorder.observe("bench.latency_s", float(value))
    elapsed = time.perf_counter() - start
    rate = 2 * n / elapsed
    assert rate > 1e5, f"telemetry verbs at {rate:.0f}/s are too slow"
