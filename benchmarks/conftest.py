"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper, asserts the
published *shape* (who wins, by roughly what factor, where crossovers
fall) and prints the rendered text table so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's evaluation section on the
terminal.  Rendered outputs are also written to ``benchmarks/output/``.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def record(name: str, text: str) -> None:
    """Print a rendered experiment and persist it for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
