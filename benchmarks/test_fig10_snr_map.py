"""Benchmark: Fig. 10 — room SNR heatmaps with vs without OTAM."""

import numpy as np

from repro.experiments import fig10_snr_map
from conftest import record


def test_fig10_snr_heatmaps(benchmark):
    result = benchmark.pedantic(fig10_snr_map.run,
                                kwargs={"grid_step_m": 0.5},
                                rounds=1, iterations=1)
    record("fig10_snr_map", fig10_snr_map.render(result))

    with_otam = result.snr_with_otam_db
    without = result.snr_without_otam_db

    # Fig. 10(a): without OTAM a noticeable set of locations < 5 dB.
    assert result.fraction_below_5db_without >= 0.05

    # Fig. 10(b): with OTAM the same room is overwhelmingly >= 10 dB
    # and tops out around the paper's ~30 dB scale.
    assert result.fraction_above_10db_with >= 0.75
    assert np.nanmax(with_otam) >= 25.0
    assert np.nanpercentile(with_otam, 10) >= 6.0

    # OTAM never loses badly anywhere and wins where blockage bites:
    # the low tail is lifted dramatically.
    assert (np.nanpercentile(with_otam, 5)
            > np.nanpercentile(without, 5) + 3.0)
    assert result.median_gain_db >= 0.0

    # Where the baseline was in trouble (< 5 dB), OTAM lifts every cell
    # clear of the failure region and gains several dB on average.
    mask = without < 5.0
    assert np.all(with_otam[mask] >= 5.0)
    assert np.mean(with_otam[mask] - without[mask]) >= 4.0
