"""Admission-control scale gates: a million nodes, sub-linear churn.

The :mod:`repro.admission` claims, pinned:

* a **10⁶-node** spectrum book builds under a wall-clock budget — the
  seed's O(n) first-fit rescan would take hours here (every allocation
  re-sorts and walks the full occupied list), the interval-indexed book
  stays at tens of microseconds per admit;
* **churn is sub-linear**: ≥10⁴ release+admit pairs against the full
  million-node band, and the per-op cost grows ≪10x when the node count
  grows 10x (the O(log n)/O(√n) structure, measured end to end);
* the **saturation study** runs as a real campaign and its
  blocking-probability curve is archived to ``benchmarks/output/`` as
  a CI artifact.

The band is synthetic — unit-width channels on a ``1.25 * n`` Hz band —
because the paper's 250 MHz ISM slice physically holds only ~100 FDM
channels; the data structure, not the spectrum, is under test.

Budgets are ~5x a warm local run so slow CI containers don't flap.
"""

from __future__ import annotations

import json
import random
import time

from repro.network.fdm import FdmAllocator

from conftest import record

MILLION = 10**6
CHURN_OPS = 10**4
BUILD_BUDGET_S = 180.0
CHURN_BUDGET_S = 30.0
MAX_CHURN_RATIO = 8.0
"""Per-op churn cost may grow at most this much for 10x the nodes
(linear rescans would grow ~10x; the book measures ~4-5x, dominated by
cache effects rather than algorithmic growth)."""


def _dense_allocator(n: int) -> FdmAllocator:
    """A band sized to hold exactly ``n`` unit channels plus slack."""
    return FdmAllocator(band_low_hz=0.0, band_high_hz=n * 1.25 + 100.0,
                        bandwidth_per_bps=1.0, guard_fraction=0.25,
                        min_channel_hz=1e-9)


def _churn(alloc: FdmAllocator, n: int, ops: int, seed: int) -> float:
    """``ops`` release+admit pairs against a full band; seconds taken."""
    rng = random.Random(seed)
    live = list(range(n))
    next_id = n
    start = time.perf_counter()
    for _ in range(ops):
        victim = live.pop(rng.randrange(len(live)))
        alloc.release(victim)
        alloc.allocate(next_id, 1.0)
        live.append(next_id)
        next_id += 1
    return time.perf_counter() - start


def test_million_node_build_and_churn():
    """The headline gate: 10⁶ admits + 10⁴ churn ops, budgeted."""
    alloc = _dense_allocator(MILLION)
    start = time.perf_counter()
    for i in range(MILLION):
        alloc.allocate(i, 1.0)
    build_s = time.perf_counter() - start
    assert len(alloc.plans) == MILLION
    assert build_s < BUILD_BUDGET_S, \
        f"10^6-node build took {build_s:.1f}s (budget {BUILD_BUDGET_S}s)"

    churn_s = _churn(alloc, MILLION, CHURN_OPS, seed=0)
    assert churn_s < CHURN_BUDGET_S, \
        f"{CHURN_OPS} churn ops took {churn_s:.1f}s " \
        f"(budget {CHURN_BUDGET_S}s)"
    # The band stayed coherent through the churn: still exactly 10^6
    # disjoint plans (disjointness is the book's free_hz invariant,
    # proven exhaustively in tests/test_admission.py).
    assert len(alloc.plans) == MILLION
    record("admission_scale", (
        f"build 10^6 nodes: {build_s:.2f}s "
        f"({build_s / MILLION * 1e6:.1f} us/op)\n"
        f"churn {CHURN_OPS} pairs: {churn_s:.2f}s "
        f"({churn_s / CHURN_OPS * 1e6:.1f} us/pair)"))


def test_churn_cost_grows_sublinearly():
    """10x the nodes must cost ≪10x per churn op (no hidden rescans)."""
    ops = 4000
    costs = {}
    for n in (10**5, 10**6):
        alloc = _dense_allocator(n)
        for i in range(n):
            alloc.allocate(i, 1.0)
        costs[n] = _churn(alloc, n, ops, seed=1) / ops
    ratio = costs[10**6] / costs[10**5]
    assert ratio < MAX_CHURN_RATIO, \
        f"churn per-op cost grew {ratio:.1f}x for 10x nodes " \
        f"({costs[10**5] * 1e6:.1f} -> {costs[10**6] * 1e6:.1f} us)"


def test_saturation_curve_artifact():
    """Run the saturation preset and archive the blocking curve."""
    from repro.admission import default_config, render, run_saturation

    config = default_config(replicates=2, arrivals=200)
    result = run_saturation(config, master_seed=0)
    # The curve is physically sane: monotone-ish blocking growth, and
    # the SDM rung visibly absorbs the overload before blocking starts.
    assert result.blocking_probability[0] == 0.0
    assert result.blocking_probability[-1] >= \
        result.blocking_probability[0]
    assert result.sdm_share[-1] > result.sdm_share[0]
    record("admission_saturation", render(result))
    record("admission_saturation_curve",
           json.dumps(result.curve(), indent=2))
