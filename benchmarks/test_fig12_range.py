"""Benchmark: Fig. 12 — SNR vs distance, facing and not facing."""

import numpy as np

from repro.experiments import fig12_range
from conftest import record


def test_fig12_range(benchmark):
    result = benchmark.pedantic(fig12_range.run, rounds=1, iterations=1)
    record("fig12_range", fig12_range.render(result))

    # Shape: SNR decays with distance for both orientations.
    assert result.monotone_decay()
    assert result.snr_facing_db[0] > result.snr_facing_db[-1] + 15.0

    # Both scenarios remain usable at 18 m (paper: >=15 dB facing,
    # ~9 dB not facing; we require the usable-link band).
    assert result.snr_facing_at_max_m >= 9.0
    assert result.snr_not_facing_at_max_m >= 6.0

    # Facing is at least as good as not facing at long range (the
    # not-facing node uses only one arm of the split beam).
    far = result.distances_m >= 10.0
    assert np.mean(result.snr_facing_db[far]
                   - result.snr_not_facing_db[far]) >= 0.0

    # Near-field SNR sits on the paper's ~35-40 dB scale.
    assert 30.0 <= result.snr_facing_db[0] <= 45.0
