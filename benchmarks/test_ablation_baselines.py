"""Ablation benchmark: OTAM vs beam-searching baselines (§3, §6)."""

from repro.experiments import ablations
from conftest import record


def test_ablation_beam_search_costs(benchmark):
    result = benchmark.pedantic(ablations.run_beam_search,
                                rounds=3, iterations=1)
    record("ablation_beam_search", ablations.render(
        ablations.run_orthogonality(num_placements=60),
        ablations.run_modulation(num_placements=60),
        result))

    # OTAM does no probing, no feedback, and needs no phased array.
    assert result.otam_is_free

    idx = {name: i for i, name in enumerate(result.scheme_names)}

    # Exhaustive search probes every codebook beam; hierarchical fewer.
    assert (result.probes[idx["Exhaustive sweep"]]
            > result.probes[idx["Hierarchical search"]])

    # Every search scheme burns node energy per realignment; OTAM zero.
    for name in ("Exhaustive sweep", "Hierarchical search",
                 "Fixed beams + feedback"):
        assert result.node_energy_mj[idx[name]] > 0.0
    assert result.node_energy_mj[idx["OTAM (mmX)"]] == 0.0

    # Phased-array schemes pay the hardware the paper prices out
    # (hundreds of dollars, > 1 W); OTAM's fixed arrays are ~$15.
    assert result.hardware_cost_usd[idx["Exhaustive sweep"]] > 200.0
    assert result.hardware_power_w[idx["Exhaustive sweep"]] > 1.0
    assert result.hardware_cost_usd[idx["OTAM (mmX)"]] < 50.0


def test_ablation_oracle_phased_array(benchmark):
    result = benchmark.pedantic(ablations.run_oracle_comparison,
                                kwargs={"num_placements": 100},
                                rounds=1, iterations=1)
    record("ablation_oracle", ablations.render_oracle(result))

    # The phased array's extra aperture is real: ~9 dB of array gain
    # plus perfect steering should show up as a clear median advantage.
    assert 5.0 <= result.median_oracle_advantage_db <= 20.0

    # And it costs what the paper says phased arrays cost.
    assert result.oracle_array_cost_usd > 1000.0
    assert result.oracle_array_power_w > 1.0

    # mmX's answer is not to win peak SNR but to stay usable without
    # any of that: its outage is bounded even in the blocked protocol.
    assert result.otam_outage < 0.5
