"""Benchmark: Fig. 11 — BER CDF with vs without OTAM."""

from repro.experiments import fig11_ber_cdf
from conftest import record


def test_fig11_ber_cdf(benchmark):
    result = benchmark.pedantic(fig11_ber_cdf.run,
                                kwargs={"num_placements": 30},
                                rounds=1, iterations=1)
    record("fig11_ber_cdf", fig11_ber_cdf.render(result))

    # Published shape: OTAM's median BER is many orders of magnitude
    # below the baseline's (paper: 1e-12 vs 1e-5).
    assert result.median_with() < 1e-9
    assert result.median_without() > 1e-9
    assert result.median_with() < result.median_without() * 1e-2

    # The 90th percentile improves too (paper: 1e-3 vs 0.3).
    assert result.p90_with() <= result.p90_without()

    # Both CDFs live in [floor, 0.5].
    assert result.ber_with_otam.min() >= 1e-15
    assert result.ber_without_otam.max() <= 0.5
