"""Benchmark: Fig. 8 — the node's orthogonal beam patterns."""

from repro.experiments import fig08_patterns
from conftest import record


def test_fig08_beam_patterns(benchmark):
    result = benchmark.pedantic(fig08_patterns.run, rounds=3, iterations=1)
    record("fig08_patterns", fig08_patterns.render(result))

    # Shape per the measured figure: Beam 1 broadside, Beam 0 at ~±30°,
    # each nulled at the other's peak, beamwidth in the tens of degrees.
    assert abs(result.beam1_peak_deg) <= 1.0
    assert 25.0 <= result.beam0_peak_abs_deg <= 32.0
    assert result.beam0_depth_at_beam1_peak_db < -15.0
    assert result.beam1_depth_at_beam0_peak_db < -15.0
    assert 20.0 <= result.beam1_beamwidth_deg <= 50.0
