"""Benchmark: Table 1 — platform comparison."""

from repro.experiments import table1
from conftest import record


def test_table1_platform_comparison(benchmark):
    result = benchmark.pedantic(table1.run, rounds=3, iterations=1)
    record("table1_comparison", table1.render(result))

    mmx = result.row("mmX")

    # Column-by-column orderings of the paper's Table 1.
    assert result.mmx_cheapest_mmwave
    assert result.mmx_lowest_power_mmwave
    assert result.mmx_beats_wifi_energy

    # mmX's absolute headline cells.
    assert mmx.cost_usd <= 125.0
    assert mmx.power_w == 1.1
    assert mmx.bitrate_bps == 100e6
    assert abs(mmx.energy_per_bit_j * 1e9 - 11.0) < 1e-6
    assert mmx.range_m == 18.0

    # Bitrate ordering: Bluetooth < mmX ~ WiFi < MiRa/OpenMili.
    assert (result.row("Bluetooth").bitrate_bps
            < mmx.bitrate_bps
            < result.row("MiRa").bitrate_bps)

    # Energy ordering: OpenMili < mmX < MiRa-ish < WiFi < Bluetooth.
    assert mmx.energy_per_bit_j < result.row("WiFi").energy_per_bit_j
    assert mmx.energy_per_bit_j < result.row("Bluetooth").energy_per_bit_j

    # Cost gap versus research platforms is ~60x (the paper's point).
    assert result.row("MiRa").cost_usd / mmx.cost_usd > 50.0


def test_table1_extends_down_market_node_classes():
    """The repro.energy registry rows slot under the paper's table.

    ``mmx-active`` must *be* the Table-1 mmX row (same hardware
    ledger, cell for cell), the backscatter tag must undercut every
    platform in the table on both cost and power, and the harvesting
    node is the same radio plus a rectenna adder.
    """
    import pytest

    from repro.energy import node_class

    result = table1.run()
    mmx = result.row("mmX")

    active = node_class("mmx-active")
    assert active.cost_usd == mmx.cost_usd
    assert active.active_power_w == pytest.approx(mmx.power_w)
    assert active.bitrate_bps == mmx.bitrate_bps
    assert active.energy_per_bit_j == pytest.approx(mmx.energy_per_bit_j)

    tag = node_class("mmx-backscatter")
    for name in ("mmX", "MiRa", "OpenMili", "WiFi", "Bluetooth"):
        row = result.row(name)
        assert tag.cost_usd < row.cost_usd
        assert tag.active_power_w < row.power_w

    harvester = node_class("mmx-harvesting")
    assert harvester.cost_usd > mmx.cost_usd
    assert harvester.active_power_w == pytest.approx(mmx.power_w)
    assert harvester.energy_per_bit_j == pytest.approx(
        mmx.energy_per_bit_j)
