"""Benchmark: Table 1 — platform comparison."""

from repro.experiments import table1
from conftest import record


def test_table1_platform_comparison(benchmark):
    result = benchmark.pedantic(table1.run, rounds=3, iterations=1)
    record("table1_comparison", table1.render(result))

    mmx = result.row("mmX")

    # Column-by-column orderings of the paper's Table 1.
    assert result.mmx_cheapest_mmwave
    assert result.mmx_lowest_power_mmwave
    assert result.mmx_beats_wifi_energy

    # mmX's absolute headline cells.
    assert mmx.cost_usd <= 125.0
    assert mmx.power_w == 1.1
    assert mmx.bitrate_bps == 100e6
    assert abs(mmx.energy_per_bit_j * 1e9 - 11.0) < 1e-6
    assert mmx.range_m == 18.0

    # Bitrate ordering: Bluetooth < mmX ~ WiFi < MiRa/OpenMili.
    assert (result.row("Bluetooth").bitrate_bps
            < mmx.bitrate_bps
            < result.row("MiRa").bitrate_bps)

    # Energy ordering: OpenMili < mmX < MiRa-ish < WiFi < Bluetooth.
    assert mmx.energy_per_bit_j < result.row("WiFi").energy_per_bit_j
    assert mmx.energy_per_bit_j < result.row("Bluetooth").energy_per_bit_j

    # Cost gap versus research platforms is ~60x (the paper's point).
    assert result.row("MiRa").cost_usd / mmx.cost_usd > 50.0
