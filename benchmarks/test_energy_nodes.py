"""Energy-node gates: the Table-1 class comparison and outage survival.

Two :mod:`repro.energy` campaign presets, pinned:

* the **node-class comparison** is byte-identical between a serial run
  and a supervised parallel run at the same master seed (the
  repro.engine determinism contract, end to end through the bistatic
  backscatter path and the battery state machine), and its per-class
  physics land where Table 1 says they must — the tag costs dollars
  and sips microwatts, the harvesting node realises a genuine
  sub-unity duty cycle;
* the **outage-survival drill** rides a total harvesting blackout with
  **zero** silence-failover false positives — a dormant fleet must
  never condemn its AP — while the resilience ladder logs the
  dormant-hold/dormant-wake pairs that prove recovery actually
  happened rather than the outage never biting.

Both rendered tables are archived to ``benchmarks/output/`` as CI
artifacts.
"""

from __future__ import annotations

import json

from repro.energy import compare, outage
from repro.engine import SupervisedPool

from conftest import record


def test_compare_campaign_serial_parallel_identical():
    """The determinism gate: same seed, same bytes, any executor."""
    config = compare.default_config(replicates=2, num_bits=200)
    serial = compare.run_compare(config, master_seed=7)
    parallel = compare.run_compare(config, master_seed=7,
                                   executor=SupervisedPool(jobs=3),
                                   num_shards=3)
    assert json.dumps(serial.rows()) == json.dumps(parallel.rows())
    record("energy_compare", compare.render(serial))
    record("energy_compare_rows", json.dumps(serial.rows(), indent=2))


def test_compare_physics_extend_table1_down_market():
    """The new columns mean something: cost/power tiers and duty."""
    result = compare.run_compare(
        compare.default_config(replicates=2, num_bits=200),
        master_seed=7)
    rows = {r["node_class"]: r for r in result.rows()}
    active, tag, harvester = (rows["mmx-active"],
                              rows["mmx-backscatter"],
                              rows["mmx-harvesting"])
    # Cost tiers: the tag is dollars against the prototype's ~$110.
    assert tag["cost_usd"] < 10.0 < active["cost_usd"]
    # Power tiers: microwatts (passive) vs watts (active front end).
    assert tag["active_power_w"] < 1e-4
    assert active["active_power_w"] > 1.0
    # Every class decodes cleanly at its operating point.
    assert active["measured_ber"] == 0.0
    assert tag["measured_ber"] == 0.0
    # Duty models: always-on = 1, illuminated = the booked airtime,
    # duty-cycled = whatever the harvest actually affords (sub-unity,
    # but the fleet is not dark).
    assert active["duty_cycle"] == 1.0
    assert tag["duty_cycle"] == result.config.illumination_duty
    assert 0.01 < harvester["duty_cycle"] < 0.9
    assert harvester["delivery_ratio"] > 0.3


def test_outage_survival_artifact():
    """The dormant ≠ dead gate, end to end through cluster failover."""
    config = outage.default_config(nodes=4, replicates=2)
    result = outage.run_outage(config, master_seed=7)
    summary = result.summary()
    # The headline number this preset exists to pin: a sleeping fleet
    # never looks like a dead AP.
    assert summary["silence_failovers"] == 0
    assert summary["orphaned_nodes"] == 0
    # The outage actually bit (nodes went dormant) and the ladder
    # recovered them (wakes observed, recovery time measured).
    assert summary["dormant_holds"] >= 1
    assert summary["dormant_wakes"] >= 1
    assert summary["dormant_fraction"] > 0.0
    assert summary["mean_recovery_s"] > 0.0
    record("energy_outage", outage.render(result))
    record("energy_outage_summary", json.dumps(summary, indent=2))


def test_outage_campaign_serial_parallel_identical():
    config = outage.default_config(nodes=3, replicates=2)
    serial = outage.run_outage(config, master_seed=3)
    parallel = outage.run_outage(config, master_seed=3,
                                 executor=SupervisedPool(jobs=2),
                                 num_shards=2)
    assert json.dumps(serial.summary()) == json.dumps(parallel.summary())
