"""Durability gates: every storage crash point resumes to the truth.

The headline guarantee of :mod:`repro.durability`, pinned in CI: for
*every* syscall a journaled campaign makes — enumerated, not sampled —
and for every fault kind the harness can inject at it (torn write,
short write, bit flip, ``ENOSPC``, ``EIO``, crash), a resumed campaign
yields a byte-identical full result or an explicit
:class:`PartialCampaignResult`.  Silent corruption is not an outcome.

Also gated here:

* the ``repro fsck`` report for a faulted journal is archived to
  ``benchmarks/output/`` so CI uploads real repair forensics;
* the durable seam is close to free: a fault-free journaled campaign
  costs at most 5% wall-clock (plus a fixed epsilon) over the PR 6
  style raw-``open()`` journal it replaced.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.durability import (
    FS_FAULT_KINDS,
    FaultyFs,
    FsFaultSchedule,
    InjectedFsCrash,
    fsck_path,
)
from repro.engine import run_campaign
from repro.engine.store import ResultStore, StoreError

from conftest import OUTPUT_DIR, record

SWEEP_TRIALS = 6
SWEEP_SHARDS = 3
MASTER_SEED = 5
MAX_OVERHEAD = 1.05
OVERHEAD_EPSILON_S = 0.5
OVERHEAD_SHARDS = 64


def sweep_trial(seed: int, index: int) -> dict:
    """Storage gates measure I/O, not physics: the trial is cheap."""
    return {"v": index * index}


def run_journaled(path, fs=None):
    return run_campaign(sweep_trial, SWEEP_TRIALS,
                        master_seed=MASTER_SEED,
                        num_shards=SWEEP_SHARDS,
                        store=ResultStore(path, fs=fs))


def enumerate_ops(tmp_path) -> int:
    """One fault-free instrumented run = the complete crash-point list."""
    probe = FaultyFs()
    run_journaled(tmp_path / "probe.jsonl", fs=probe)
    assert not probe.crashed
    return probe.op_count


def test_every_crash_point_resumes_byte_identical(tmp_path):
    """The sweep: all ops x all fault kinds, then repair-and-resume."""
    clean = run_journaled(tmp_path / "clean.jsonl")
    clean_lines = sorted(
        (tmp_path / "clean.jsonl").read_bytes().splitlines())
    num_ops = enumerate_ops(tmp_path)
    assert num_ops >= SWEEP_SHARDS * 3  # create + one append per shard

    outcomes: dict[str, int] = {}
    for kind in FS_FAULT_KINDS:
        for op in range(1, num_ops + 1):
            path = tmp_path / f"{kind}-{op}.jsonl"
            faulty = FaultyFs(FsFaultSchedule.single(kind, op))
            try:
                run_journaled(path, fs=faulty)
            except InjectedFsCrash:
                outcomes[f"{kind}:crashed"] = \
                    outcomes.get(f"{kind}:crashed", 0) + 1
            except OSError:
                # enospc/eio surfaced to the campaign; loud is allowed.
                outcomes[f"{kind}:errored"] = \
                    outcomes.get(f"{kind}:errored", 0) + 1
            else:
                outcomes[f"{kind}:survived"] = \
                    outcomes.get(f"{kind}:survived", 0) + 1

            if path.exists():
                report = fsck_path(path, repair=True)
                assert report.fatal is None or not path.exists() or \
                    report.kind in ("journal", "unknown")
                if report.fatal is not None:
                    # Unusable journal (e.g. torn header): start over,
                    # exactly what the fsck diagnostic tells the user.
                    path.unlink()

            # The "rebooted process": a fresh, fault-free backend.
            try:
                resumed = run_journaled(path)
            except StoreError:
                # Damage in the unhashed header (a bit-flipped
                # fingerprint digit) reads as a different campaign;
                # the resume refuses loudly and the diagnostic says to
                # remove the file — do that and start clean.
                path.unlink()
                resumed = run_journaled(path)
            assert not resumed.is_partial, \
                f"{kind} at op {op}: partial after clean resume"
            assert resumed.results == clean.results, \
                f"{kind} at op {op}: resumed result diverged"
            # Record order may differ (a repaired shard re-runs and
            # appends last) but every record must be byte-identical.
            assert sorted(path.read_bytes().splitlines()) \
                == clean_lines, \
                f"{kind} at op {op}: repaired journal records diverged"

    assert sum(outcomes.values()) == len(FS_FAULT_KINDS) * num_ops
    record("engine_crashpoints",
           f"{SWEEP_TRIALS}-trial/{SWEEP_SHARDS}-shard campaign makes "
           f"{num_ops} mutating syscalls; swept all "
           f"{len(FS_FAULT_KINDS) * num_ops} (kind x op) fault points: "
           f"every resume byte-identical to the fault-free journal. "
           f"outcomes: {json.dumps(outcomes, sort_keys=True)}")


def test_fsck_report_artifact(tmp_path):
    """A faulted journal's fsck report is archived for CI upload."""
    path = tmp_path / "damaged.jsonl"
    # A lying short write on a shard append leaves interior corruption.
    probe = FaultyFs()
    run_journaled(tmp_path / "probe.jsonl", fs=probe)
    append_write = next(
        i + 1 for i, entry in enumerate(probe.trace)
        if entry.startswith("write:") and i + 1 > 5
    )  # the first shard-append write after the 5-op atomic create
    faulty = FaultyFs(FsFaultSchedule.single("short_write",
                                             append_write))
    run_journaled(path, fs=faulty)

    before = fsck_path(path)
    assert before.exit_code == 1
    repaired = fsck_path(path, repair=True)
    assert repaired.repaired
    after = fsck_path(path)
    assert after.exit_code == 0

    OUTPUT_DIR.mkdir(exist_ok=True)
    artifact = OUTPUT_DIR / "engine-fsck-report.json"
    artifact.write_text(json.dumps(
        {"found": before.to_dict(), "repaired": repaired.to_dict(),
         "verified": after.to_dict()}, indent=1, sort_keys=True))
    record("engine_fsck",
           f"short-write corruption at syscall {append_write}: fsck "
           f"found {len(before.issues)} issue(s), repaired via "
           f"quarantine sidecar, re-scan clean.\n"
           f"report: {artifact.name} ({artifact.stat().st_size} bytes)")

    resumed = run_journaled(path)
    assert not resumed.is_partial


class _Pr6Store(ResultStore):
    """The pre-durability journal I/O, for the overhead baseline.

    What PR 6 shipped: plain ``open("w")`` creation (no temp file, no
    rename, no directory fsync) and per-line append with fsync but
    none of the seam's bookkeeping.
    """

    def create(self, plan) -> None:
        from repro.durability import canonical_json
        header = {
            "record": "campaign", "format": "repro-engine",
            "version": 2, "fingerprint": plan.fingerprint(),
            "master_seed": plan.master_seed,
            "num_trials": plan.num_trials,
            "num_shards": plan.num_shards,
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(header) + "\n")

    def _append(self, payload) -> None:
        from repro.durability import canonical_json
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(canonical_json(payload) + "\n")
            fh.flush()
            os.fsync(fh.fileno())


def test_durable_seam_overhead_is_negligible(tmp_path):
    """Fault-free journaled run costs <= 5% over the PR 6 raw I/O."""
    trials = OVERHEAD_SHARDS  # one trial per shard = one append each

    def run_with(store):
        return run_campaign(sweep_trial, trials, master_seed=1,
                            num_shards=OVERHEAD_SHARDS, store=store)

    # Warm both paths (page cache, imports).
    run_with(_Pr6Store(tmp_path / "warm-old.jsonl"))
    run_with(ResultStore(tmp_path / "warm-new.jsonl"))

    start = time.perf_counter()
    old = run_with(_Pr6Store(tmp_path / "old.jsonl"))
    old_s = time.perf_counter() - start

    start = time.perf_counter()
    new = run_with(ResultStore(tmp_path / "new.jsonl"))
    new_s = time.perf_counter() - start

    assert new.results == old.results
    overhead = new_s / old_s if old_s else 1.0
    record("engine_durability_overhead",
           f"{OVERHEAD_SHARDS}-shard journaled campaign: raw PR6 I/O "
           f"{old_s:.3f} s, durable seam {new_s:.3f} s -> "
           f"{overhead:.2f}x")
    assert new_s <= old_s * MAX_OVERHEAD + OVERHEAD_EPSILON_S, \
        f"durable seam overhead {overhead:.2f}x exceeds " \
        f"{MAX_OVERHEAD:.2f}x (+{OVERHEAD_EPSILON_S} s slack)"
