"""Benchmark: Fig. 7 (VCO tuning curve) + section 9.1 microbenchmarks."""

import numpy as np

from repro.experiments import fig07_vco
from conftest import record


def test_fig07_vco_tuning_curve(benchmark):
    result = benchmark.pedantic(fig07_vco.run, rounds=3, iterations=1)
    record("fig07_vco", fig07_vco.render(result))

    # Shape: monotone sweep covering the full ISM band (Fig. 7).
    assert np.all(np.diff(result.frequencies_hz) >= 0)
    assert result.covers_ism_band
    assert result.frequencies_hz[0] <= 23.96e9
    assert result.frequencies_hz[-1] >= 24.24e9
    assert result.frequency_span_hz >= 0.29e9

    # Section 9.1 headline numbers.
    assert result.max_bitrate_bps == 100e6
    assert result.node_power_w == 1.1
    assert abs(result.energy_per_bit_j * 1e9 - 11.0) < 1e-6

    # The FSK nudge is a few-mV control step — trivially implementable.
    assert result.fsk_voltage_step_v < 0.01
