"""Failover benchmark: the AP cluster vs a frozen single AP.

Acceptance gate for the control-plane resilience layer: under an
identical, seeded AP-crash schedule the adaptive cluster (heartbeat
detection + failover + checkpointed recovery) must strictly out-deliver
the frozen single-AP baseline, and a checkpoint save -> crash ->
restore cycle must reproduce the AP's FDM allocations and node
registrations exactly.
"""

import numpy as np

from repro.cluster import ApCheckpoint
from repro.experiments import chaos
from repro.node.access_point import MmxAccessPoint
from conftest import record

SEED = 7
"""Master seed shared with the chaos-recovery gate."""


def _failover():
    return chaos.run_failover(seed=SEED)


def test_failover_beats_frozen_single_ap(benchmark):
    outcome = benchmark.pedantic(_failover, rounds=1, iterations=1)
    record("chaos_failover", chaos.render_failover(outcome))
    r = outcome.result

    # The whole point: the cluster strictly out-delivers the frozen
    # baseline under the same crash schedule.
    assert r.adaptive_delivery_ratio > r.static_delivery_ratio, \
        f"cluster {r.adaptive_delivery_ratio:.3f} did not beat " \
        f"frozen {r.static_delivery_ratio:.3f}"
    assert r.gain > 0.1, f"failover gain too small: {r.gain:+.3f}"

    # Stranded nodes actually migrated; nobody was abandoned (two APs,
    # plenty of spectrum).
    assert r.failover_count > 0
    assert r.orphaned_nodes == 0

    # Detection is not free: the cluster pays a real stranded window
    # (heartbeat latency), so its delivery cannot be perfect either.
    assert r.detection_latency_s > 0
    assert r.adaptive_delivery_ratio < 1.0


def test_failover_deterministic_from_master_seed():
    """One master seed regenerates the comparison bit-identically."""
    a = chaos.run_failover(seed=SEED)
    b = chaos.run_failover(seed=SEED)
    assert np.array_equal(a.result.adaptive_success,
                          b.result.adaptive_success)
    assert np.array_equal(a.result.static_success, b.result.static_success)
    assert a.result.failover_count == b.result.failover_count
    assert a.delivery_gain == b.delivery_gain


def test_checkpoint_crash_restore_is_exact():
    """Save -> crash -> restore reproduces the control plane verbatim."""
    ap = MmxAccessPoint()
    for node_id, rate in enumerate([2e6, 1e6, 4e6, 0.5e6, 8e6]):
        ap.register_node(node_id, rate)
    ap.mark_interference(24.05e9, 24.07e9)
    ap.reallocate_node(0)
    ap.assign_tma_slot(1, 2)
    ap.assign_tma_slot(3, 1)

    snapshot = ApCheckpoint.capture(ap)
    blob = snapshot.to_json()
    del ap  # the crash: the live AP (and all its state) is gone

    restored = ApCheckpoint.from_json(blob).restore()
    roundtrip = ApCheckpoint.capture(restored)
    assert roundtrip == snapshot

    # Identical FDM allocations (exact plans, not merely equivalent;
    # snapshot.plans is sorted by node id, allocator.plans by center)...
    assert sorted((p.node_id, p.center_hz, p.bandwidth_hz)
                  for p in restored.allocator.plans) == list(snapshot.plans)
    assert restored.allocator.blocked_ranges == snapshot.blocked
    # ...and identical registrations, numerology included.
    assert tuple(
        (reg.node_id, reg.channel.center_hz, reg.channel.bandwidth_hz,
         reg.config.bit_rate_bps, reg.config.sample_rate_hz,
         reg.config.fsk_deviation_hz)
        for reg in (restored.registration(n)
                    for n in restored.registered_nodes)
    ) == snapshot.registrations
    assert restored.tma_assignments == dict(snapshot.tma_assignments)
