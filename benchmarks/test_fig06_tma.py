"""Benchmark: Fig. 6 / Eq. 1-4 — TMA direction-to-harmonic hashing."""

from repro.experiments import fig06_tma
from conftest import record


def test_fig06_tma_hashing(benchmark):
    result = benchmark.pedantic(fig06_tma.run,
                                kwargs={"arrival_degs": (0.0, 30.0)},
                                rounds=1, iterations=1)
    record("fig06_tma", fig06_tma.render(result))

    # Two co-channel arrivals land on distinct harmonics — the SDM
    # demultiplexing Fig. 6 illustrates.
    assert result.directions_separated

    # The analytic Eq. 4 prediction matches the Eq. 1 time-domain
    # simulation (FFT of the switched-array output).
    assert result.analysis_matches_timedomain

    # Unwanted copies are suppressed (the plain sequential schedule
    # reaches ~9.5 dB at the worst on-grid direction; optimised
    # schedules in [25] reach the paper's 20-30 dB).
    assert min(result.image_suppressions_db) > 8.0
