"""Tests for the mmX orthogonal beam pair (Fig. 8 properties)."""

import numpy as np
import pytest

from repro.antenna.orthogonal import (
    OrthogonalBeamPair,
    ParametricBeam,
    design_mmx_beams,
    measured_mmx_beams,
)
from repro.antenna.patterns import (
    half_power_beamwidth_deg,
    pattern_orthogonality_db,
    peak_direction_deg,
)


@pytest.fixture(params=["analytic", "measured"])
def beams(request) -> OrthogonalBeamPair:
    if request.param == "analytic":
        return design_mmx_beams()
    return measured_mmx_beams()


class TestBeamGeometry:
    def test_beam1_peaks_at_broadside(self, beams):
        assert peak_direction_deg(beams.beam1) == pytest.approx(0.0, abs=1.0)

    def test_beam0_peaks_near_30(self, beams):
        peak = abs(peak_direction_deg(beams.beam0))
        assert 25.0 <= peak <= 32.0

    def test_beam0_null_at_broadside(self, beams):
        assert float(beams.beam0.power_db(0.0)) < -15.0

    def test_beam1_null_at_30(self, beams):
        assert float(beams.beam1.power_db(np.radians(30.0))) < -15.0

    def test_mutual_orthogonality(self, beams):
        assert pattern_orthogonality_db(beams.beam1, beams.beam0) < -15.0
        assert pattern_orthogonality_db(beams.beam0, beams.beam1) < -15.0

    def test_beamwidth_in_paper_range(self, beams):
        # Paper: ~40 deg measured; the analytic 2-element model is a bit
        # narrower.  Accept the plausible band.
        width = half_power_beamwidth_deg(beams.beam1)
        assert 20.0 <= width <= 50.0

    def test_beam0_symmetric(self, beams):
        theta = np.radians(np.linspace(5, 80, 16))
        assert np.asarray(beams.beam0.power_db(theta)) == pytest.approx(
            np.asarray(beams.beam0.power_db(-theta)), abs=1e-6)


class TestPairInterface:
    def test_pattern_selection(self, beams):
        assert beams.pattern(1) is beams.beam1
        assert beams.pattern(0) is beams.beam0

    def test_invalid_bit(self, beams):
        with pytest.raises(ValueError):
            beams.pattern(2)

    def test_beam0_power_normalised_below_beam1(self, beams):
        # Beam 0 splits power across two arms: its arm peak must sit
        # below Beam 1's single-lobe peak.
        grid = np.linspace(-np.pi, np.pi, 3601)
        peak1 = float(np.max(beams.field(1, grid)))
        peak0 = float(np.max(beams.field(0, grid)))
        assert peak0 < peak1
        assert peak0 > 0.4 * peak1  # but only by a few dB

    def test_equal_total_power(self, beams):
        grid = np.linspace(-np.pi, np.pi, 3601)
        p1 = np.trapezoid(np.asarray(beams.field(1, grid)) ** 2, grid)
        p0 = np.trapezoid(np.asarray(beams.field(0, grid)) ** 2, grid)
        assert p0 == pytest.approx(p1, rel=0.02)

    def test_gain_dbi_peak(self, beams):
        grid = np.linspace(-np.pi, np.pi, 3601)
        assert float(np.max(beams.gain_dbi(1, grid))) == pytest.approx(
            beams.peak_gain_dbi, abs=0.05)

    def test_amplitude_gain_consistent(self, beams):
        theta = np.radians(12.0)
        expected = 10 ** (float(beams.gain_dbi(1, theta)) / 20.0)
        assert float(beams.amplitude_gain(1, theta)) == pytest.approx(expected)


class TestFieldOfView:
    def test_combined_coverage_within_fov(self):
        # Section 9.1: 120 deg field of view.  Within +-60 deg the best
        # of the two measured beams should stay within ~12 dB of peak.
        beams = measured_mmx_beams()
        theta = np.radians(np.linspace(-60, 60, 121))
        best = np.maximum(
            20 * np.log10(np.maximum(beams.field(1, theta), 1e-9)),
            20 * np.log10(np.maximum(beams.field(0, theta), 1e-9)))
        assert float(best.min()) > -13.0

    def test_coverage_collapses_outside_fov(self):
        beams = measured_mmx_beams()
        theta = np.radians(150.0)
        best = max(float(beams.field(1, theta)), float(beams.field(0, theta)))
        assert 20 * np.log10(best) < -12.0


class TestParametricBeam:
    def test_single_lobe_peak(self):
        beam = ParametricBeam(lobes=((0.0, 40.0),))
        assert float(beam.power_db(0.0)) == pytest.approx(0.0)

    def test_lobe_3db_width(self):
        beam = ParametricBeam(lobes=((0.0, 40.0),))
        assert float(beam.power_db(np.radians(20.0))) == pytest.approx(-3.0)

    def test_floor(self):
        beam = ParametricBeam(lobes=((0.0, 20.0),), floor_db=-18.0,
                              notches=())
        assert float(beam.power_db(np.radians(120.0))) == pytest.approx(-18.0)

    def test_notch_depth(self):
        beam = ParametricBeam(lobes=((0.0, 180.0),),
                              notches=((30.0, -25.0, 6.0),))
        assert float(beam.power_db(np.radians(30.0))) < -20.0

    def test_angle_wrapping(self):
        beam = ParametricBeam(lobes=((170.0, 40.0),))
        # -175 deg is 15 deg away from +170 across the wrap.
        assert float(beam.power_db(np.radians(-175.0))) > -3.1

    def test_design_frequency_scales_spacing(self):
        low = design_mmx_beams(frequency_hz=24.0e9)
        high = design_mmx_beams(frequency_hz=24.25e9)
        assert low.beam1.spacing_m > high.beam1.spacing_m
