"""Tests for repro.units: dB/linear/dBm conversions."""

import numpy as np
import pytest

from repro import units
from repro.constants import SPEED_OF_LIGHT


class TestDbConversions:
    def test_db_to_linear_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_roundtrip(self):
        values = np.array([0.001, 0.5, 1.0, 7.3, 1e6])
        assert units.db_to_linear(units.linear_to_db(values)) == pytest.approx(values)

    def test_linear_to_db_of_zero_is_neg_inf(self):
        assert units.linear_to_db(0.0) == -np.inf

    def test_negative_db_is_attenuation(self):
        assert units.db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_vectorised(self):
        out = units.db_to_linear([0.0, 10.0, 20.0])
        assert np.allclose(out, [1.0, 10.0, 100.0])


class TestDbmConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        for p in (1e-9, 1e-3, 0.5, 2.0):
            assert units.dbm_to_watts(units.watts_to_dbm(p)) == pytest.approx(p)

    def test_watts_to_dbm_zero_is_neg_inf(self):
        assert units.watts_to_dbm(0.0) == -np.inf

    def test_dbm_ratio(self):
        assert units.dbm_to_db_ratio(10.0, 7.0) == pytest.approx(3.0)


class TestAmplitudeConversions:
    def test_amplitude_to_db_uses_20log(self):
        assert units.amplitude_to_db(10.0) == pytest.approx(20.0)

    def test_db_to_amplitude_roundtrip(self):
        for a in (0.01, 0.5, 1.0, 3.0):
            assert units.db_to_amplitude(units.amplitude_to_db(a)) == pytest.approx(a)

    def test_negative_amplitude_uses_magnitude(self):
        assert units.amplitude_to_db(-10.0) == pytest.approx(20.0)


class TestWavelength:
    def test_24ghz_wavelength(self):
        lam = units.wavelength(24.0e9)
        assert lam == pytest.approx(SPEED_OF_LIGHT / 24.0e9)
        assert 0.012 < lam < 0.013  # ~12.5 mm, hence "millimeter wave"

    def test_vectorised(self):
        lams = units.wavelength([24.0e9, 60.0e9])
        assert lams[0] > lams[1]
