"""Tests for repro.phy filters, envelope detection and Goertzel."""

import numpy as np
import pytest

from repro.phy import envelope as E
from repro.phy import filters as F
from repro.phy import goertzel as G


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([1.0, 2.0, 3.0])
        assert F.moving_average(x, 1) == pytest.approx(x)

    def test_length_preserved(self):
        x = np.arange(50, dtype=float)
        assert F.moving_average(x, 7).size == 50

    def test_constant_signal_unchanged(self):
        x = np.full(30, 4.2)
        assert F.moving_average(x, 5) == pytest.approx(x)

    def test_smooths_noise(self, rng):
        x = rng.standard_normal(2000)
        assert F.moving_average(x, 16).std() < 0.5 * x.std()

    def test_window_larger_than_signal_ok(self):
        x = np.array([1.0, 2.0])
        out = F.moving_average(x, 10)
        assert out.size == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            F.moving_average(np.ones(4), 0)


class TestFirLowpass:
    def test_passband_gain_near_unity(self):
        taps = F.fir_lowpass(1e6, 8e6, 63)
        # DC gain.
        assert np.sum(taps) == pytest.approx(1.0, abs=1e-3)

    def test_attenuates_out_of_band_tone(self):
        fs = 8e6
        taps = F.fir_lowpass(5e5, fs, 101)
        t = np.arange(4000) / fs
        in_band = np.cos(2 * np.pi * 1e5 * t)
        out_band = np.cos(2 * np.pi * 3e6 * t)
        y_in = F.apply_fir(in_band, taps)
        y_out = F.apply_fir(out_band, taps)
        assert y_out[500:-500].std() < 0.01 * y_in[500:-500].std()

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            F.fir_lowpass(5e6, 8e6)

    def test_too_few_taps(self):
        with pytest.raises(ValueError):
            F.fir_lowpass(1e5, 8e6, num_taps=1)


class TestDecimate:
    def test_factor_one_is_copy(self):
        x = np.arange(10, dtype=float)
        assert F.decimate(x, 1) == pytest.approx(x)

    def test_length_reduced(self):
        x = np.random.default_rng(0).standard_normal(1000)
        assert F.decimate(x, 4).size == 250

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            F.decimate(np.ones(8), 0)


class TestExponentialSmooth:
    def test_alpha_one_is_identity(self):
        x = np.array([3.0, 1.0, 4.0])
        assert F.exponential_smooth(x, 1.0) == pytest.approx(x)

    def test_tracks_step(self):
        x = np.concatenate([np.zeros(10), np.ones(200)])
        y = F.exponential_smooth(x, 0.2)
        assert y[-1] == pytest.approx(1.0, abs=1e-3)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            F.exponential_smooth(np.ones(4), 0.0)


class TestEnvelope:
    def test_recovers_two_levels(self):
        t = np.arange(160) / 8e6
        tone = np.exp(1j * 2 * np.pi * 1e6 * t)
        env_in = np.repeat([1.0, 0.3], 80)
        env = E.envelope_detect(env_in * tone)
        assert env[:80] == pytest.approx(np.full(80, 1.0))
        assert env[80:] == pytest.approx(np.full(80, 0.3))

    def test_smoothing_reduces_variance(self, rng):
        x = np.ones(1000) + 0.2 * rng.standard_normal(1000)
        raw = E.envelope_detect(x)
        smooth = E.envelope_detect(x, smooth_window=16)
        assert smooth.std() < raw.std()

    def test_agc_normalises_rms(self, rng):
        env = np.abs(rng.standard_normal(500)) * 7.3
        out = E.automatic_gain_control(env)
        assert np.sqrt(np.mean(out**2)) == pytest.approx(1.0)

    def test_agc_zero_signal_safe(self):
        out = E.automatic_gain_control(np.zeros(8))
        assert np.all(out == 0)


class TestThresholdLevels:
    def test_separated_levels(self, rng):
        env = np.concatenate([
            1.0 + 0.01 * rng.standard_normal(500),
            0.2 + 0.01 * rng.standard_normal(500),
        ])
        low, high, threshold = E.threshold_levels(env)
        assert low == pytest.approx(0.2, abs=0.05)
        assert high == pytest.approx(1.0, abs=0.05)
        assert 0.3 < threshold < 0.9

    def test_degenerate_equal_levels(self):
        low, high, threshold = E.threshold_levels(np.full(100, 0.5))
        assert low == high == threshold == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            E.threshold_levels(np.zeros(0))

    def test_unbalanced_duty_cycle(self, rng):
        # 90/10 split must still find both levels.
        env = np.concatenate([
            1.0 + 0.01 * rng.standard_normal(900),
            0.1 + 0.01 * rng.standard_normal(100),
        ])
        low, high, _ = E.threshold_levels(env)
        assert high - low > 0.7


class TestGoertzel:
    def test_unit_tone_power_one(self):
        fs = 8e6
        t = np.arange(800) / fs
        x = np.exp(1j * 2 * np.pi * 5e5 * t)
        assert G.goertzel_power(x, 5e5, fs) == pytest.approx(1.0, rel=1e-6)

    def test_orthogonal_tone_rejected(self):
        fs, n = 8e6, 800
        t = np.arange(n) / fs
        # Tones separated by k/T are orthogonal over the block.
        x = np.exp(1j * 2 * np.pi * 5e5 * t)
        other = 5e5 + fs / n * 10
        assert G.goertzel_power(x, other, fs) < 1e-10

    def test_negative_frequency(self):
        fs = 8e6
        t = np.arange(400) / fs
        x = np.exp(-1j * 2 * np.pi * 1e6 * t)
        assert G.goertzel_power(x, -1e6, fs) == pytest.approx(1.0, rel=1e-6)
        assert G.goertzel_power(x, +1e6, fs) < 1e-3

    def test_amplitude_scales_as_square(self):
        fs = 8e6
        t = np.arange(400) / fs
        x = 0.5 * np.exp(1j * 2 * np.pi * 1e6 * t)
        assert G.goertzel_power(x, 1e6, fs) == pytest.approx(0.25, rel=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            G.goertzel_power(np.zeros(0, dtype=complex), 1e5, 8e6)


class TestGoertzelBlocks:
    def test_per_block_detection(self):
        fs, sps = 8e6, 8
        f0, f1 = -5e5, 5e5
        bits = [1, 0, 1, 1, 0]
        t = np.arange(sps) / fs
        chunks = [np.exp(1j * 2 * np.pi * (f1 if b else f0) * t) for b in bits]
        x = np.concatenate(chunks)
        powers = G.goertzel_block_powers(x, sps, [f0, f1], fs)
        decided = (powers[:, 1] > powers[:, 0]).astype(int)
        assert list(decided) == bits

    def test_shape(self):
        x = np.zeros(100, dtype=complex)
        out = G.goertzel_block_powers(x, 8, [1e5, 2e5, 3e5], 8e6)
        assert out.shape == (12, 3)

    def test_trailing_samples_dropped(self):
        x = np.ones(17, dtype=complex)
        out = G.goertzel_block_powers(x, 8, [0.0], 8e6)
        assert out.shape[0] == 2

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            G.goertzel_block_powers(np.ones(8, dtype=complex), 0, [0.0], 8e6)
