"""Tests for per-beam channel gains and the ChannelResponse."""

import math

import pytest

from repro.antenna.element import DipoleElement
from repro.antenna.orthogonal import measured_mmx_beams
from repro.channel.multipath import (
    ChannelResponse,
    beam_channel_gain,
    two_beam_gains,
)
from repro.channel.pathloss import free_space_path_loss_db
from repro.channel.raytrace import PropagationPath
from repro.sim.environment import Blocker, default_lab_room
from repro.sim.geometry import Point

FREQ = 24.125e9


def _los_path(length: float, bearing: float = 0.0) -> PropagationPath:
    return PropagationPath(
        vertices=(Point(0, 0), Point(length, 0)),
        length_m=length,
        departure_bearing_rad=bearing,
        arrival_bearing_rad=bearing + math.pi,
        excess_loss_db=0.0,
        kind="los",
        num_bounces=0,
    )


class TestBeamChannelGain:
    def test_single_path_magnitude(self):
        path = _los_path(3.0)
        gain = beam_channel_gain(
            [path], tx_field=lambda t: 1.0, rx_field=lambda t: 1.0,
            tx_orientation_rad=0.0, rx_orientation_rad=math.pi,
            frequency_hz=FREQ)
        expected = 10 ** (-float(free_space_path_loss_db(3.0, FREQ)) / 20.0)
        assert abs(gain) == pytest.approx(expected, rel=1e-3)

    def test_pattern_attenuates(self):
        path = _los_path(3.0)
        full = beam_channel_gain([path], lambda t: 1.0, lambda t: 1.0,
                                 0.0, math.pi, FREQ)
        half = beam_channel_gain([path], lambda t: 0.5, lambda t: 1.0,
                                 0.0, math.pi, FREQ)
        assert abs(half) == pytest.approx(0.5 * abs(full))

    def test_zero_pattern_drops_path(self):
        path = _los_path(3.0)
        gain = beam_channel_gain([path], lambda t: 0.0, lambda t: 1.0,
                                 0.0, math.pi, FREQ)
        assert gain == 0.0

    def test_excess_loss_applied(self):
        clean = _los_path(3.0)
        lossy = PropagationPath(
            vertices=clean.vertices, length_m=clean.length_m,
            departure_bearing_rad=0.0, arrival_bearing_rad=math.pi,
            excess_loss_db=20.0, kind="los", num_bounces=0)
        g_clean = beam_channel_gain([clean], lambda t: 1.0, lambda t: 1.0,
                                    0.0, math.pi, FREQ)
        g_lossy = beam_channel_gain([lossy], lambda t: 1.0, lambda t: 1.0,
                                    0.0, math.pi, FREQ)
        assert abs(g_lossy) == pytest.approx(0.1 * abs(g_clean))

    def test_multipath_phases_combine(self):
        # Two equal paths half a wavelength apart in length cancel.
        lam = 299792458.0 / FREQ
        p1 = _los_path(3.0)
        p2 = _los_path(3.0 + lam / 2)
        g1 = beam_channel_gain([p1], lambda t: 1.0, lambda t: 1.0,
                               0.0, math.pi, FREQ)
        g_both = beam_channel_gain([p1, p2], lambda t: 1.0, lambda t: 1.0,
                                   0.0, math.pi, FREQ)
        # Partial cancellation: the sum is smaller than the single path.
        assert abs(g_both) < abs(g1)


class TestChannelResponse:
    def test_contrast_db(self):
        ch = ChannelResponse(h1=1.0, h0=0.1, paths=())
        assert ch.ask_contrast_db == pytest.approx(20.0)

    def test_contrast_with_zero(self):
        assert ChannelResponse(h1=1.0, h0=0.0, paths=()).ask_contrast_db == math.inf
        assert ChannelResponse(h1=0.0, h0=0.0, paths=()).ask_contrast_db == 0.0

    def test_inverted_flag(self):
        assert ChannelResponse(h1=0.1, h0=0.5, paths=()).inverted
        assert not ChannelResponse(h1=0.5, h0=0.1, paths=()).inverted

    def test_difference_gain_uses_magnitudes(self):
        # Equal magnitudes with different phases: envelope cannot tell
        # them apart, so the difference gain must be ~0.
        ch = ChannelResponse(h1=0.5, h0=0.5j, paths=())
        assert ch.difference_gain() == pytest.approx(0.0)

    def test_stronger_gain(self):
        ch = ChannelResponse(h1=0.2, h0=0.7, paths=())
        assert ch.stronger_gain() == pytest.approx(0.7)

    def test_level_db(self):
        ch = ChannelResponse(h1=0.1, h0=0.0, paths=())
        assert ch.level_db(1) == pytest.approx(-20.0)
        assert ch.level_db(0) == -math.inf


class TestTwoBeamGains:
    def test_clear_los_beam1_dominates_when_facing(self, rng):
        room = default_lab_room()
        beams = measured_mmx_beams()
        node, ap = Point(2.0, 3.0), Point(2.0, 0.15)
        ch = two_beam_gains(node, ap, room, beams, DipoleElement(),
                            node_orientation_rad=-math.pi / 2,
                            ap_orientation_rad=math.pi / 2,
                            frequency_hz=FREQ)
        assert abs(ch.h1) > abs(ch.h0)
        assert not ch.inverted

    def test_blocked_los_inverts(self):
        room = default_lab_room()
        beams = measured_mmx_beams()
        node, ap = Point(2.0, 3.0), Point(2.0, 0.15)
        room.add_blocker(Blocker(Point(2.0, 1.5), penetration_loss_db=35.0))
        ch = two_beam_gains(node, ap, room, beams, DipoleElement(),
                            node_orientation_rad=-math.pi / 2,
                            ap_orientation_rad=math.pi / 2,
                            frequency_hz=FREQ)
        room.clear_blockers()
        # Fig. 4(b): with the LoS blocked, Beam 0's reflection wins and
        # the bits invert.
        assert ch.inverted

    def test_paths_shared_between_beams(self):
        room = default_lab_room()
        beams = measured_mmx_beams()
        ch = two_beam_gains(Point(1.0, 4.0), Point(2.0, 0.15), room, beams,
                            DipoleElement(),
                            node_orientation_rad=-math.pi / 2,
                            ap_orientation_rad=math.pi / 2,
                            frequency_hz=FREQ)
        assert len(ch.paths) >= 2
