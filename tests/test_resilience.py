"""Unit tests for the resilience layer (repro.resilience) and the
perturbation hooks it rides on (perturb_breakdown, demodulator monitor,
fault-aware TimelineSimulator, FDM reallocation)."""

import numpy as np
import pytest

from repro.core.demodulator import JointDemodulator
from repro.core.ask_fsk import AskFskConfig
from repro.core.link import perturb_breakdown
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    LinkDisturbance,
    PersistentBlockerProcess,
    scenario_injector,
)
from repro.network.fdm import FdmAllocator, SpectrumExhausted
from repro.node.access_point import MmxAccessPoint
from repro.phy.waveform import Waveform
from repro.resilience import (
    DEGRADED,
    HEALTHY,
    OUTAGE,
    ChaosSimulation,
    EwmaEstimator,
    LinkHealthMonitor,
    LinkSupervisor,
)
from repro.sim.environment import default_lab_room
from repro.sim.geometry import Point, angle_of
from repro.sim.placement import Placement
from repro.sim.timeline import TimelineSimulator


@pytest.fixture(scope="module")
def link():
    from repro.experiments.chaos import _facing_link
    return _facing_link(4.0)


@pytest.fixture(scope="module")
def clean(link):
    return link.snr_breakdown()


class TestEwmaEstimator:
    def test_first_sample_seeds_estimate(self):
        est = EwmaEstimator(alpha=0.5)
        assert est.value is None
        assert est.update(10.0) == 10.0

    def test_smoothing(self):
        est = EwmaEstimator(alpha=0.5)
        est.update(10.0)
        assert est.update(20.0) == pytest.approx(15.0)

    def test_nonfinite_clamps_hard(self):
        est = EwmaEstimator(alpha=0.1)
        est.update(30.0)
        assert est.update(float("-inf")) == float("-inf")
        # Recovery re-seeds rather than averaging with -inf.
        assert est.update(25.0) == 25.0

    def test_reset(self):
        est = EwmaEstimator()
        est.update(5.0)
        est.reset()
        assert est.value is None

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)


class TestLinkHealthMonitor:
    def test_state_ladder_down_and_up(self):
        monitor = LinkHealthMonitor(alpha=1.0)  # no smoothing
        assert monitor.observe(0.0, 30.0) == HEALTHY
        assert monitor.observe(1.0, 12.0) == DEGRADED
        assert monitor.observe(2.0, 5.0) == OUTAGE
        # Hysteresis: must clear threshold + margin to climb back.
        assert monitor.observe(3.0, 10.5) == OUTAGE
        assert monitor.observe(4.0, 13.0) == DEGRADED
        assert monitor.observe(5.0, 16.0) == DEGRADED
        assert monitor.observe(6.0, 20.0) == HEALTHY

    def test_time_order_enforced(self):
        monitor = LinkHealthMonitor()
        monitor.observe(1.0, 20.0)
        with pytest.raises(ValueError):
            monitor.observe(0.5, 20.0)

    def test_report_availability_and_mttr(self):
        monitor = LinkHealthMonitor(alpha=1.0)
        for i, snr in enumerate([30.0, 30.0, 0.0, 0.0, 30.0, 30.0,
                                 30.0, 30.0]):
            monitor.observe(float(i), snr)
        report = monitor.report()
        assert 0.0 <= report.availability <= 1.0
        assert report.outage_count == 1
        assert report.mttr_s == pytest.approx(2.0)
        assert report.min_snr_db == 0.0

    def test_report_requires_samples(self):
        with pytest.raises(ValueError):
            LinkHealthMonitor().report()

    def test_observe_demod_dead_capture(self):
        monitor = LinkHealthMonitor(alpha=1.0)
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        demod = JointDemodulator(config, health_monitor=monitor)
        demod.demodulate(Waveform(np.zeros(0, dtype=complex),
                                  config.sample_rate_hz))
        assert monitor.num_samples == 1
        assert monitor.state == OUTAGE

    def test_demodulator_feeds_monitor(self):
        monitor = LinkHealthMonitor()
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        demod = JointDemodulator(config, health_monitor=monitor)
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(800) + 1j * rng.standard_normal(800)
        demod.demodulate(Waveform(samples, config.sample_rate_hz))
        assert monitor.num_samples == 1


class TestPerturbBreakdown:
    def test_clear_disturbance_via_snr_breakdown_is_identical(self, link):
        assert link.snr_breakdown() == link.snr_breakdown(
            disturbance=LinkDisturbance())

    def test_node_down_silences_everything(self, clean, link):
        out = perturb_breakdown(clean, LinkDisturbance(node_down=True),
                                link.config)
        assert out.ask_snr_db == float("-inf")
        assert out.fsk_snr_db == float("-inf")

    def test_blockage_reduces_snr(self, clean, link):
        out = perturb_breakdown(
            clean, LinkDisturbance(beam1_extra_loss_db=25.0,
                                   beam0_extra_loss_db=6.25), link.config)
        assert out.otam_snr_db < clean.otam_snr_db

    def test_stuck_beam_kills_ask_not_fsk(self, clean, link):
        out = perturb_breakdown(clean, LinkDisturbance(stuck_beam=1),
                                link.config)
        assert out.ask_snr_db == float("-inf")
        assert out.fsk_snr_db > 10.0

    def test_interference_raises_measured_noise(self, clean, link):
        jam = clean.noise_dbm + 20.0
        out = perturb_breakdown(clean,
                                LinkDisturbance(interference_dbm=jam),
                                link.config)
        assert out.noise_dbm > clean.noise_dbm + 19.0
        assert out.otam_snr_db < clean.otam_snr_db

    def test_drift_detunes_fsk_only(self, clean, link):
        half = link.config.tone_separation_hz / 2.0
        out = perturb_breakdown(clean,
                                LinkDisturbance(vco_offset_hz=half),
                                link.config)
        assert out.fsk_snr_db < clean.fsk_snr_db
        assert out.ask_snr_db == pytest.approx(clean.ask_snr_db)

    def test_drift_beyond_separation_kills_fsk(self, clean, link):
        out = perturb_breakdown(
            clean,
            LinkDisturbance(vco_offset_hz=link.config.tone_separation_hz),
            link.config)
        assert out.fsk_snr_db == float("-inf")


class TestLinkSupervisor:
    def test_clean_link_never_acts(self, clean):
        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        for i in range(20):
            decision = supervisor.step(i * 0.1, clean)
            assert decision.transmitting
        assert supervisor.actions == []

    def test_stuck_beam_triggers_fsk_fallback(self, clean, link):
        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        stuck = perturb_breakdown(clean, LinkDisturbance(stuck_beam=1),
                                  link.config)
        decision = None
        for i in range(10):
            decision = supervisor.step(i * 0.1, stuck)
        assert decision.branch == "fsk"
        assert decision.frame_success > 0.99
        assert any(a.policy == "branch-fallback" for a in supervisor.actions)

    def test_dropout_and_reinit(self, clean):
        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        supervisor.step(0.0, clean, node_down=True)
        assert not supervisor.initialized
        assert any(a.policy == "link-lost" for a in supervisor.actions)
        # Power back, side channel up: one handshake step, then traffic.
        supervisor.step(0.1, clean)
        assert supervisor.initialized
        assert any(a.policy == "reinit-success" for a in supervisor.actions)
        decision = supervisor.step(0.2, clean)
        assert decision.transmitting

    def test_reinit_backoff_grows_when_side_channel_down(self, clean):
        supervisor = LinkSupervisor(rng=np.random.default_rng(0),
                                    backoff_jitter=0.0)
        supervisor.step(0.0, clean, node_down=True)
        t = 0.1
        while not supervisor.initialized and t < 30.0:
            supervisor.step(t, clean, side_channel_up=False)
            t += 0.1
        attempts = [a for a in supervisor.actions
                    if a.policy == "reinit-attempt"]
        backoffs = [a for a in supervisor.actions
                    if a.policy == "reinit-backoff"]
        assert len(attempts) >= 4
        assert len(backoffs) == len(attempts)
        # Jitter off: delays double (0.2, 0.4, 0.8 ...) up to the cap.
        gaps = [b.detail for b in backoffs[:3]]
        assert gaps == ["retry in 200 ms", "retry in 400 ms",
                        "retry in 800 ms"]

    def test_noise_jump_triggers_one_reallocation(self, clean, link):
        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        moves = []
        supervisor.step(0.0, clean, reallocate=lambda: moves.append(1) or True)
        jammed = perturb_breakdown(
            clean, LinkDisturbance(interference_dbm=clean.noise_dbm + 15.0),
            link.config)
        for i in range(1, 6):
            supervisor.step(i * 0.1, jammed,
                            reallocate=lambda: moves.append(1) or True)
        assert supervisor.channel_moves == 1
        assert len(moves) == 1


class TestChaosSimulation:
    def test_deterministic_from_master_seed(self, link):
        runs = []
        for _ in range(2):
            sim = ChaosSimulation(
                link, scenario_injector("kitchen-sink", master_seed=11),
                time_step_s=0.25)
            runs.append(sim.run(20.0, quiet_tail_s=3.0))
        a, b = runs
        assert np.array_equal(a.adaptive_success, b.adaptive_success)
        assert np.array_equal(a.static_success, b.static_success)
        assert a.schedule.events == b.schedule.events
        assert [x.policy for x in a.actions] == [x.policy for x in b.actions]

    def test_quiet_tail_guarantees_recovery_window(self, link):
        sim = ChaosSimulation(
            link, scenario_injector("kitchen-sink", master_seed=11),
            time_step_s=0.25)
        result = sim.run(20.0, quiet_tail_s=3.0)
        assert np.isfinite(result.post_fault_snr_db(settle_s=1.0))


class TestTimelineFaultInjection:
    def _simulator(self, injector):
        room = default_lab_room()
        ap = Point(room.width_m / 2.0, 0.15)
        node = Point(room.width_m / 2.0, 3.0)
        placement = Placement(node, angle_of(node, ap), ap, np.pi / 2)
        return TimelineSimulator(room, placement, time_step_s=0.5,
                                 fault_injector=injector)

    def test_faults_degrade_the_trace(self):
        quiet = self._simulator(None).run(10.0)
        faulted = self._simulator(FaultInjector(
            [PersistentBlockerProcess(start_s=2.0, duration_s=6.0,
                                      loss_db=30.0)],
            master_seed=0)).run(10.0)
        assert faulted.otam_snr_db.mean() < quiet.otam_snr_db.mean()
        # Outside the fault window the traces agree exactly.
        assert faulted.otam_snr_db[0] == pytest.approx(quiet.otam_snr_db[0])
        assert faulted.otam_snr_db[-1] == pytest.approx(quiet.otam_snr_db[-1])

    def test_accepts_premade_schedule(self):
        schedule = FaultSchedule(
            [FaultEvent(kind="dropout", start_s=0.0, duration_s=5.0)],
            duration_s=10.0)
        trace = self._simulator(schedule).run(10.0)
        assert np.all(np.isneginf(trace.otam_snr_db[:9]))
        assert np.isfinite(trace.otam_snr_db[-1])


class TestFdmRecoveryHooks:
    def test_reallocate_moves_off_blocked_spectrum(self):
        allocator = FdmAllocator()
        plan = allocator.allocate(1, 10e6)
        allocator.block_range(plan.low_hz - 1e6, plan.high_hz + 1e6)
        moved = allocator.reallocate(1)
        assert moved.bandwidth_hz == plan.bandwidth_hz
        assert moved.low_hz >= plan.high_hz + 1e6
        assert allocator.plan_for(1) == moved

    def test_failed_reallocation_restores_old_plan(self):
        allocator = FdmAllocator()
        plan = allocator.allocate(1, 10e6)
        allocator.block_range(allocator.band_low_hz, allocator.band_high_hz)
        with pytest.raises(SpectrumExhausted):
            allocator.reallocate(1)
        assert allocator.plan_for(1) == plan

    def test_allocate_skips_blocked_ranges(self):
        allocator = FdmAllocator()
        allocator.block_range(allocator.band_low_hz,
                              allocator.band_low_hz + 50e6)
        plan = allocator.allocate(1, 10e6)
        assert plan.low_hz >= allocator.band_low_hz + 50e6
        allocator.clear_blocks()
        assert allocator.blocked_ranges == ()

    def test_ap_mark_interference_and_reallocate(self):
        ap = MmxAccessPoint()
        reg = ap.register_node(1, 10e6)
        ap.register_node(2, 10e6)
        victims = ap.mark_interference(reg.channel.low_hz - 0.5e6,
                                      reg.channel.high_hz + 0.5e6)
        assert victims == [1]
        moved = ap.reallocate_node(1)
        assert moved.channel.low_hz > reg.channel.high_hz
        assert ap.registration(1).channel == moved.channel

    def test_ap_attach_health_monitor(self):
        ap = MmxAccessPoint()
        ap.register_node(1, 1e6)
        monitor = LinkHealthMonitor()
        ap.attach_health_monitor(1, monitor)
        config = ap.registration(1).config
        rng = np.random.default_rng(0)
        n = config.samples_per_bit * 64
        samples = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ap.demodulate(1, Waveform(samples, config.sample_rate_hz))
        assert monitor.num_samples == 1
        with pytest.raises(KeyError):
            ap.attach_health_monitor(9, monitor)
