"""Determinism gate: identical seeds produce byte-identical exports.

The whole point of the sim-time clock is that a telemetry export is a
*replayable artifact*: no wall-clock stamp, no host jitter, no dict
ordering wobble anywhere in the pipeline.  These tests pin that
property end to end — the same scenario with the same seed must render
exactly the same JSONL and CSV bytes every run, including when the seed
arrives through the ``REPRO_SEED`` environment variable instead of an
explicit argument.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import SCENARIOS
from repro.telemetry import Recorder, to_csv, to_jsonl

SCENARIO_NAMES = sorted(SCENARIOS)


def _chaos_export(scenario: str, seed: int, duration_s: float) -> str:
    from repro.experiments.chaos import run

    recorder = Recorder()
    run(scenario, seed=seed, duration_s=duration_s, telemetry=recorder)
    return to_jsonl(recorder)


class TestByteIdenticalExports:
    @given(scenario=st.sampled_from(SCENARIO_NAMES),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_chaos_jsonl_regenerates_bit_identically(self, scenario, seed):
        first = _chaos_export(scenario, seed, duration_s=4.0)
        second = _chaos_export(scenario, seed, duration_s=4.0)
        assert first == second

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_transport_exports_regenerate(self, seed):
        from repro.transport.arq import ReliableLink

        def export() -> tuple[str, str]:
            recorder = Recorder()
            link = ReliableLink(loss_probability=0.2, rtt_s=0.02,
                                rng=np.random.default_rng(seed),
                                telemetry=recorder)
            link.transfer([bytes([i % 251]) * 16 for i in range(24)])
            return to_jsonl(recorder), to_csv(recorder)

        assert export() == export()

    def test_different_seeds_differ(self):
        # The converse sanity check: a chaotic scenario's export is
        # actually seed-sensitive, so byte-equality above is meaningful.
        a = _chaos_export("kitchen-sink", 0, duration_s=6.0)
        b = _chaos_export("kitchen-sink", 1, duration_s=6.0)
        assert a != b


class TestReproSeedEnvironment:
    def test_repro_seed_pins_fallback_rng_exports(self, monkeypatch):
        """Two runs with the same ``REPRO_SEED`` and *no* explicit rng
        argument are byte-identical; the env var is the seed."""
        from repro.transport.arq import ReliableLink

        def export() -> str:
            recorder = Recorder()
            link = ReliableLink(loss_probability=0.2, rtt_s=0.02,
                                telemetry=recorder)
            link.transfer([b"x" * 16 for _ in range(16)])
            return to_jsonl(recorder)

        monkeypatch.setenv("REPRO_SEED", "424242")
        first = export()
        second = export()
        assert first == second

        monkeypatch.setenv("REPRO_SEED", "424243")
        assert export() != first
