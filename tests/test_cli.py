"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_accepts_names(self):
        args = build_parser().parse_args(["reproduce", "fig07", "table1"])
        assert args.names == ["fig07", "table1"]

    def test_link_defaults(self):
        args = build_parser().parse_args(["link"])
        assert args.distance == 3.0
        assert not args.blocked

    def test_network_options(self):
        args = build_parser().parse_args(["network", "--nodes", "5",
                                          "--seed", "9"])
        assert args.nodes == 5
        assert args.seed == 9

    def test_chaos_options(self):
        args = build_parser().parse_args(["chaos", "--scenario", "blockage",
                                          "--seed", "3", "--duration", "10"])
        assert args.scenario == "blockage"
        assert args.seed == 3
        assert args.duration == 10.0
        assert not args.ap_crash

    def test_chaos_ap_crash_flag(self):
        args = build_parser().parse_args(["chaos", "--ap-crash"])
        assert args.ap_crash


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_reproduce_single(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "mmX" in out and "Bluetooth" in out

    def test_reproduce_unknown_fails(self, capsys):
        assert main(["reproduce", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_link_clear(self, capsys):
        assert main(["link", "--distance", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "SNR with OTAM" in out

    def test_link_blocked_reports_inversion_state(self, capsys):
        assert main(["link", "--distance", "3.0", "--blocked"]) == 0
        assert "inverted" in capsys.readouterr().out

    def test_link_too_far_fails(self, capsys):
        assert main(["link", "--distance", "50"]) == 2

    def test_network(self, capsys):
        assert main(["network", "--nodes", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean" in out
        assert out.count("node ") == 3

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "sparse" in out

    def test_chaos_unknown_scenario_fails(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_chaos_ap_crash(self, capsys):
        assert main(["chaos", "--ap-crash", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "ap-crash failover" in out
        assert "frozen single-AP" in out
