"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_accepts_names(self):
        args = build_parser().parse_args(["reproduce", "fig07", "table1"])
        assert args.names == ["fig07", "table1"]

    def test_link_defaults(self):
        args = build_parser().parse_args(["link"])
        assert args.distance == 3.0
        assert not args.blocked

    def test_network_options(self):
        args = build_parser().parse_args(["network", "--nodes", "5",
                                          "--seed", "9"])
        assert args.nodes == 5
        assert args.seed == 9

    def test_chaos_options(self):
        args = build_parser().parse_args(["chaos", "--scenario", "blockage",
                                          "--seed", "3", "--duration", "10"])
        assert args.scenario == "blockage"
        assert args.seed == 3
        assert args.duration == 10.0
        assert not args.ap_crash

    def test_chaos_ap_crash_flag(self):
        args = build_parser().parse_args(["chaos", "--ap-crash"])
        assert args.ap_crash
        assert not args.as_json

    def test_chaos_json_flag(self):
        args = build_parser().parse_args(["chaos", "--json"])
        assert args.as_json

    def test_chaos_jobs_flag(self):
        args = build_parser().parse_args(["chaos", "--scenario", "all",
                                          "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["chaos"]).jobs == 1

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "fig11", "--trials", "12", "--seed", "5",
             "--jobs", "2", "--shards", "4", "--out", "c.jsonl",
             "--resume"])
        assert args.experiment == "fig11"
        assert args.trials == 12
        assert args.seed == 5
        assert args.jobs == 2
        assert args.shards == 4
        assert args.out == "c.jsonl"
        assert args.resume

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign", "fig13"])
        assert args.trials is None
        assert args.jobs == 1
        assert args.shards is None
        assert args.out is None
        assert not args.resume

    def test_campaign_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "fig99"])

    def test_campaign_supervision_options(self):
        args = build_parser().parse_args(
            ["campaign", "fig11", "--max-retries", "2",
             "--shard-timeout", "1.5", "--on-failure", "degrade"])
        assert args.max_retries == 2
        assert args.shard_timeout == 1.5
        assert args.on_failure == "degrade"

    def test_campaign_supervision_defaults_off(self):
        args = build_parser().parse_args(["campaign", "fig11"])
        assert args.max_retries is None
        assert args.shard_timeout is None
        assert args.on_failure is None

    def test_campaign_rejects_unknown_failure_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "fig11", "--on-failure", "explode"])

    def test_telemetry_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_telemetry_summarize_takes_path(self):
        args = build_parser().parse_args(
            ["telemetry", "summarize", "run.jsonl"])
        assert args.telemetry_command == "summarize"
        assert args.path == "run.jsonl"

    def test_telemetry_flame_takes_path(self):
        args = build_parser().parse_args(["telemetry", "flame", "x.jsonl"])
        assert args.telemetry_command == "flame"

    def test_fsck_options(self):
        args = build_parser().parse_args(
            ["fsck", "a.jsonl", "b.ckpt", "--repair", "--json"])
        assert args.paths == ["a.jsonl", "b.ckpt"]
        assert args.repair and args.as_json

    def test_fsck_requires_a_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fsck"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_reproduce_single(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "mmX" in out and "Bluetooth" in out

    def test_reproduce_unknown_fails(self, capsys):
        assert main(["reproduce", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_link_clear(self, capsys):
        assert main(["link", "--distance", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "SNR with OTAM" in out

    def test_link_blocked_reports_inversion_state(self, capsys):
        assert main(["link", "--distance", "3.0", "--blocked"]) == 0
        assert "inverted" in capsys.readouterr().out

    def test_link_too_far_fails(self, capsys):
        assert main(["link", "--distance", "50"]) == 2

    def test_network(self, capsys):
        assert main(["network", "--nodes", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean" in out
        assert out.count("node ") == 3

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "sparse" in out

    def test_chaos_unknown_scenario_fails(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_chaos_bad_jobs_fails(self, capsys):
        assert main(["chaos", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_campaign_fig11(self, capsys):
        assert main(["campaign", "fig11", "--trials", "6",
                     "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 11" in out

    def test_campaign_store_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "fig11.jsonl")
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", store]) == 0
        first = capsys.readouterr().out
        # Same store without --resume is refused...
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", store]) == 2
        assert "--resume" in capsys.readouterr().err
        # ...and with --resume replays the journaled shards.
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", store, "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_campaign_resume_against_other_campaign_fails(
            self, tmp_path, capsys):
        store = str(tmp_path / "fig11.jsonl")
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "fig11", "--trials", "7",
                     "--out", store, "--resume"]) == 2
        assert "different campaign" in capsys.readouterr().err

    def test_campaign_resume_needs_out(self, capsys):
        assert main(["campaign", "fig11", "--resume"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_campaign_fig10_rejects_trials(self, capsys):
        assert main(["campaign", "fig10", "--trials", "9"]) == 2
        assert "grid" in capsys.readouterr().err

    def test_campaign_chaos_rejects_out(self, tmp_path, capsys):
        out = str(tmp_path / "chaos.jsonl")
        assert main(["campaign", "chaos", "--out", out]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_campaign_bad_jobs_and_shards_fail(self, capsys):
        assert main(["campaign", "fig11", "--jobs", "0"]) == 2
        assert main(["campaign", "fig11", "--shards", "0"]) == 2

    def test_campaign_bad_supervision_knobs_fail(self, capsys):
        assert main(["campaign", "fig11", "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err
        assert main(["campaign", "fig11", "--shard-timeout", "0"]) == 2
        assert "--shard-timeout" in capsys.readouterr().err

    def test_campaign_supervised_run_matches_unsupervised(self, capsys):
        assert main(["campaign", "fig11", "--trials", "6",
                     "--shards", "3"]) == 0
        plain = capsys.readouterr().out
        assert main(["campaign", "fig11", "--trials", "6",
                     "--shards", "3", "--jobs", "2",
                     "--max-retries", "2",
                     "--on-failure", "degrade"]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        # no fault fired, so no supervision chatter either
        assert "supervised" not in captured.err

    def test_campaign_failure_diagnostic_is_one_line(
            self, tmp_path, capsys):
        store = str(tmp_path / "fig11.jsonl")
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "fig11", "--trials", "7",
                     "--out", store, "--resume",
                     "--max-retries", "1"]) == 2
        err = capsys.readouterr().err
        diagnostic = [line for line in err.splitlines()
                      if line.startswith("repro campaign:")]
        assert len(diagnostic) == 1
        assert "StoreError" in diagnostic[0]
        assert f"journal: {store}" in diagnostic[0]

    def test_chaos_ap_crash(self, capsys):
        assert main(["chaos", "--ap-crash", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "ap-crash failover" in out
        assert "frozen single-AP" in out

    def test_chaos_json_emits_telemetry_export(self, capsys):
        import json

        assert main(["chaos", "--scenario", "dropout",
                     "--duration", "5", "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "meta"
        assert records[0]["format"] == "repro-telemetry"
        assert any(r["record"] == "counter"
                   and r["name"] == "chaos.steps" for r in records)

    def test_chaos_json_is_deterministic(self, capsys):
        argv = ["chaos", "--scenario", "dropout",
                "--duration", "5", "--seed", "11", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_telemetry_summarize_roundtrip(self, tmp_path, capsys):
        export = tmp_path / "run.jsonl"
        assert main(["chaos", "--scenario", "kitchen-sink",
                     "--duration", "6", "--json"]) == 0
        export.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main(["telemetry", "summarize", str(export)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "chaos.steps" in out

    def test_telemetry_flame_emits_collapsed_stacks(self, tmp_path,
                                                    capsys):
        export = tmp_path / "run.jsonl"
        assert main(["chaos", "--scenario", "kitchen-sink",
                     "--duration", "6", "--json"]) == 0
        export.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main(["telemetry", "flame", str(export)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines, "expected at least the scenario span"
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("chaos.scenario")
            assert int(value) >= 0

    def test_telemetry_summarize_missing_file_fails(self, tmp_path,
                                                    capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["telemetry", "summarize", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_telemetry_summarize_garbage_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n", encoding="utf-8")
        assert main(["telemetry", "summarize", str(bad)]) == 2
        assert "not a telemetry JSONL" in capsys.readouterr().err

    def _damaged_journal(self, tmp_path, capsys):
        """A real fig11 campaign journal with one corrupted record."""
        store = tmp_path / "fig11.jsonl"
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", str(store)]) == 0
        capsys.readouterr()
        lines = store.read_text().splitlines()
        lines[1] = lines[1].replace('"record":"shard"',
                                    '"record":"sharf"')
        store.write_text("\n".join(lines) + "\n")
        return store

    def test_fsck_clean_journal_exits_zero(self, tmp_path, capsys):
        store = tmp_path / "fig11.jsonl"
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", str(store)]) == 0
        capsys.readouterr()
        assert main(["fsck", str(store)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and out.count("\n") == 1

    def test_fsck_detect_repair_verify_cycle(self, tmp_path, capsys):
        store = self._damaged_journal(tmp_path, capsys)

        assert main(["fsck", str(store)]) == 1
        first = capsys.readouterr().out
        assert "--repair" in first and first.count("\n") == 1

        assert main(["fsck", str(store), "--repair"]) == 1
        assert "quarantine" in capsys.readouterr().out

        assert main(["fsck", str(store)]) == 0
        # The repaired journal resumes the campaign cleanly.
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", str(store), "--resume"]) == 0

    def test_fsck_json_reports(self, tmp_path, capsys):
        import json

        store = self._damaged_journal(tmp_path, capsys)
        assert main(["fsck", str(store), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["kind"] == "journal"
        assert payload[0]["exit_code"] == 1
        assert payload[0]["issues"]

    def test_fsck_missing_file_is_fatal(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nope.jsonl")]) == 2
        assert "FATAL" in capsys.readouterr().out

    def test_fsck_worst_exit_code_wins(self, tmp_path, capsys):
        store = tmp_path / "fig11.jsonl"
        assert main(["campaign", "fig11", "--trials", "6",
                     "--out", str(store)]) == 0
        capsys.readouterr()
        assert main(["fsck", str(store),
                     str(tmp_path / "nope.jsonl")]) == 2
        assert len(capsys.readouterr().out.splitlines()) == 2


class TestAdmissionSaturate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["admission", "saturate"])
        assert args.admission_command == "saturate"
        assert args.nodes == 600
        assert args.load is None
        assert args.replicates == 4
        assert args.jobs == 1
        assert not args.as_json

    def test_runs_and_prints_the_curve(self, capsys):
        assert main(["admission", "saturate", "--nodes", "60",
                     "--replicates", "1", "--load", "0.5",
                     "--load", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "P(block)" in out
        assert "0.50" in out and "2.00" in out

    def test_json_output(self, capsys):
        import json

        assert main(["admission", "saturate", "--nodes", "50",
                     "--replicates", "1", "--load", "1.0",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["offered_load"] == 1.0
        assert set(rows[0]) >= {"blocking_probability", "fdm_share",
                                "sdm_share", "mean_occupancy"}

    def test_bad_flags_fail(self, capsys):
        assert main(["admission", "saturate", "--nodes", "0"]) == 2
        assert "--nodes" in capsys.readouterr().err
        assert main(["admission", "saturate", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["admission", "saturate", "--load", "-1"]) == 2
        assert "positive" in capsys.readouterr().err
        assert main(["admission", "saturate", "--resume"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_existing_store_needs_resume(self, tmp_path, capsys):
        store = tmp_path / "sat.jsonl"
        store.write_text("")
        assert main(["admission", "saturate", "--out", str(store)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_store_and_resume_roundtrip(self, tmp_path, capsys):
        store = tmp_path / "sat.jsonl"
        argv = ["admission", "saturate", "--nodes", "40",
                "--replicates", "1", "--load", "1.0", "--json",
                "--out", str(store)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # Resuming a completed campaign replays the journal: identical
        # curve, no recomputation surprises.
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestEnergyCommands:
    def test_parser_defaults(self):
        comp = build_parser().parse_args(["energy", "compare"])
        assert comp.energy_command == "compare"
        assert comp.bits == 400
        assert comp.replicates == 4
        assert comp.jobs == 1
        assert not comp.as_json
        surv = build_parser().parse_args(["energy", "outage"])
        assert surv.energy_command == "outage"
        assert surv.nodes == 6

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["energy"])

    def test_compare_prints_the_class_table(self, capsys):
        assert main(["energy", "compare", "--replicates", "1",
                     "--bits", "64"]) == 0
        out = capsys.readouterr().out
        assert "mmx-active" in out
        assert "mmx-backscatter" in out
        assert "mmx-harvesting" in out

    def test_compare_json_rows(self, capsys):
        import json

        assert main(["energy", "compare", "--replicates", "1",
                     "--bits", "64", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["node_class"] for r in rows] \
            == ["mmx-active", "mmx-backscatter", "mmx-harvesting"]
        assert set(rows[0]) >= {"cost_usd", "duty_cycle",
                                "delivery_ratio", "measured_ber"}

    def test_outage_json_summary(self, capsys):
        import json

        assert main(["energy", "outage", "--replicates", "1",
                     "--nodes", "2", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["silence_failovers"] == 0
        assert "dormant_holds" in summary

    def test_bad_flags_fail(self, capsys):
        assert main(["energy", "compare", "--replicates", "0"]) == 2
        assert "--replicates" in capsys.readouterr().err
        assert main(["energy", "compare", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["energy", "compare", "--bits", "0"]) == 2
        assert "--bits" in capsys.readouterr().err
        assert main(["energy", "outage", "--nodes", "0"]) == 2
        assert "--nodes" in capsys.readouterr().err
        assert main(["energy", "compare", "--resume"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_existing_store_needs_resume(self, tmp_path, capsys):
        store = tmp_path / "energy.jsonl"
        store.write_text("")
        assert main(["energy", "compare", "--out", str(store)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_store_and_resume_roundtrip(self, tmp_path, capsys):
        store = tmp_path / "compare.jsonl"
        argv = ["energy", "compare", "--replicates", "1", "--bits",
                "64", "--json", "--out", str(store)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first
