"""Smoke tests: every experiment module runs and renders.

The benchmarks assert the published shapes; these tests only guarantee
the experiment APIs stay runnable from plain pytest (small parameters),
that renders return non-empty text, and that results are deterministic
per seed.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    extensions,
    fig06_tma,
    fig07_vco,
    fig08_patterns,
    fig09_waveforms,
    fig10_snr_map,
    fig11_ber_cdf,
    fig12_range,
    fig13_multinode,
    table1,
)
from repro.experiments.report import ascii_heatmap, cdf_points, format_table


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3e-7]],
                            title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_ascii_heatmap_shape(self):
        grid = np.arange(12, dtype=float).reshape(3, 4)
        text = ascii_heatmap(grid, 0.0, 11.0)
        assert len(text.splitlines()) == 3
        assert all(len(row) == 4 for row in text.splitlines())

    def test_ascii_heatmap_nan_blank(self):
        grid = np.array([[np.nan, 5.0]])
        assert ascii_heatmap(grid, 0.0, 10.0)[0] == " "

    def test_heatmap_invalid_range(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2)), 1.0, 1.0)

    def test_cdf_points(self):
        x, p = cdf_points([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert p[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestExperimentSmoke:
    def test_fig06(self):
        result = fig06_tma.run()
        assert fig06_tma.render(result)

    def test_fig07(self):
        result = fig07_vco.run(num_points=11)
        assert "VCO" in fig07_vco.render(result)

    def test_fig08(self):
        result = fig08_patterns.run(num_points=181)
        assert "Beam 1" in fig08_patterns.render(result)

    def test_fig09(self):
        result = fig09_waveforms.run(num_placements=40)
        assert "ambiguous" in fig09_waveforms.render(result)

    def test_fig10(self):
        result = fig10_snr_map.run(grid_step_m=1.0)
        text = fig10_snr_map.render(result)
        assert "OTAM" in text
        assert result.snr_with_otam_db.shape == result.snr_without_otam_db.shape

    def test_fig11(self):
        result = fig11_ber_cdf.run(num_placements=10)
        assert result.ber_with_otam.size == 10
        assert fig11_ber_cdf.render(result)

    def test_fig12(self):
        result = fig12_range.run(max_distance_m=10.0, num_points=5,
                                 num_carriers=2)
        assert result.distances_m.size == 5
        assert fig12_range.render(result)

    def test_fig13(self):
        result = fig13_multinode.run(node_counts=(1, 3), trials_per_count=3)
        assert result.node_counts == (1, 3)
        assert fig13_multinode.render(result)

    def test_table1(self):
        assert "mmX" in table1.render(table1.run())

    def test_ablations(self):
        text = ablations.render(
            ablations.run_orthogonality(num_placements=30),
            ablations.run_modulation(num_placements=30),
            ablations.run_beam_search())
        assert "orthogonal" in text

    def test_extensions(self):
        mob = extensions.run_mobility(duration_s=5.0)
        assert extensions.render_mobility(mob)
        sched = extensions.run_scheduler(num_nodes=12, trials=3)
        assert extensions.render_scheduler(sched)
        band = extensions.run_60ghz()
        assert band.capacity_60ghz > band.capacity_24ghz
        assert extensions.render_60ghz(band)
        counts = extensions.run_motivation()
        assert counts["mmx"] > counts["wifi"]


class TestDeterminism:
    def test_fig11_deterministic(self):
        a = fig11_ber_cdf.run(seed=5, num_placements=8)
        b = fig11_ber_cdf.run(seed=5, num_placements=8)
        assert np.array_equal(a.ber_with_otam, b.ber_with_otam)

    def test_fig11_seed_sensitivity(self):
        a = fig11_ber_cdf.run(seed=5, num_placements=8)
        b = fig11_ber_cdf.run(seed=6, num_placements=8)
        assert not np.array_equal(a.ber_with_otam, b.ber_with_otam)

    def test_fig10_deterministic(self):
        a = fig10_snr_map.run(seed=2, grid_step_m=1.2)
        b = fig10_snr_map.run(seed=2, grid_step_m=1.2)
        assert np.array_equal(a.snr_with_otam_db, b.snr_with_otam_db,
                              equal_nan=True)

    def test_fig13_deterministic(self):
        a = fig13_multinode.run(seed=1, node_counts=(2,), trials_per_count=2)
        b = fig13_multinode.run(seed=1, node_counts=(2,), trials_per_count=2)
        assert np.array_equal(a.mean_sinr_db, b.mean_sinr_db)


class TestOracleAblation:
    def test_runs_and_renders(self):
        from repro.experiments import ablations
        result = ablations.run_oracle_comparison(num_placements=20)
        assert result.num_placements == 20
        assert "phased array" in ablations.render_oracle(result)

    def test_oracle_never_worse_on_outage(self):
        from repro.experiments import ablations
        result = ablations.run_oracle_comparison(num_placements=30)
        assert result.oracle_outage <= result.otam_outage
