"""Tests for interference accounting, MIMO baseline and the network sim."""

import numpy as np
import pytest

from repro.network.interference import InterferenceModel, sinr_db
from repro.network.mimo import HybridMimoAp
from repro.network.network import MultiNodeNetwork
from repro.network.init_protocol import InitializationProtocol, SideChannel
from repro.node.access_point import MmxAccessPoint
from repro.node.node import MmxNode
from repro.core.ask_fsk import AskFskConfig
from repro.sim.environment import default_lab_room


class TestSinr:
    def test_no_interference_is_snr(self):
        assert sinr_db(-60.0, -90.0, []) == pytest.approx(30.0)

    def test_strong_interference_dominates(self):
        value = sinr_db(-60.0, -120.0, [-70.0])
        assert value == pytest.approx(10.0, abs=0.1)

    def test_interferers_accumulate(self):
        one = sinr_db(-60.0, -120.0, [-80.0])
        three = sinr_db(-60.0, -120.0, [-80.0, -80.0, -80.0])
        assert three == pytest.approx(one - 10 * np.log10(3), abs=0.01)


class TestInterferenceModel:
    def test_coupling_ordering(self):
        model = InterferenceModel()
        assert (model.coupling_db("cochannel-sdm")
                < model.coupling_db("adjacent")
                <= model.coupling_db("far"))

    def test_tma_default_in_paper_band(self):
        assert 20.0 <= InterferenceModel().tma_image_suppression_db <= 30.0

    def test_interference_power(self):
        model = InterferenceModel()
        out = model.interference_dbm(-60.0, "adjacent")
        assert out == pytest.approx(-60.0 - model.adjacent_channel_rejection_db)

    def test_unknown_relationship(self):
        with pytest.raises(ValueError):
            InterferenceModel().coupling_db("cosmic")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InterferenceModel(adjacent_channel_rejection_db=70.0,
                              nonadjacent_rejection_db=60.0)


class TestHybridMimo:
    def test_power_and_cost_scale_with_chains(self):
        one = HybridMimoAp(num_chains=1)
        four = HybridMimoAp(num_chains=4)
        assert four.power_consumption_w > 3 * one.power_consumption_w
        assert four.cost_usd > 3 * one.cost_usd

    def test_mimo_is_the_expensive_option(self):
        # Section 7(b)'s argument: multiple mmWave chains are power
        # hungry versus the mmX AP front end (~0.6 W).
        from repro.hardware.chains import AccessPointHardware
        mimo = HybridMimoAp(num_chains=4)
        assert mimo.power_consumption_w > 5 * AccessPointHardware().total_power_w

    def test_separation_gain_positive_for_distinct_directions(self):
        mimo = HybridMimoAp(num_chains=2)
        gain = mimo.separation_gain_db(np.radians(0.0), np.radians(40.0))
        assert gain > 6.0

    def test_cochannel_capacity(self):
        assert HybridMimoAp(num_chains=3).max_cochannel_nodes == 3


class TestMultiNodeNetwork:
    def _network(self, seed=0) -> MultiNodeNetwork:
        rng = np.random.default_rng(seed)
        return MultiNodeNetwork(default_lab_room(), rng)

    def test_channel_assignment_fdm_first(self):
        net = self._network()
        channels = net.assign_channels(net.num_fdm_channels)
        assert len(set(channels)) == net.num_fdm_channels

    def test_channel_assignment_wraps_to_sdm(self):
        net = self._network()
        n = net.num_fdm_channels + 3
        channels = net.assign_channels(n)
        shared = [c for c in set(channels) if channels.count(c) > 1]
        assert len(shared) == 3

    def test_snapshot_structure(self):
        net = self._network()
        snap = net.evaluate(5)
        assert len(snap.nodes) == 5
        assert np.isfinite(snap.mean_sinr_db)
        assert snap.min_sinr_db <= snap.mean_sinr_db

    def test_single_node_no_interference(self):
        net = self._network()
        snap = net.evaluate(1)
        node = snap.nodes[0]
        assert node.sinr_db == pytest.approx(node.snr_db, abs=1e-6)
        assert node.interference_dbm == -np.inf

    def test_fdm_only_nodes_barely_interfere(self):
        net = self._network(seed=1)
        snap = net.evaluate(5)  # all on distinct channels
        for node in snap.nodes:
            assert node.sinr_db > node.snr_db - 2.0

    def test_sdm_sharing_costs_some_sinr(self):
        net = self._network(seed=2)
        small = [net.evaluate(5).mean_sinr_db for _ in range(10)]
        large = [net.evaluate(20).mean_sinr_db for _ in range(10)]
        assert np.mean(large) < np.mean(small)
        # Fig. 13 shape: degradation is mild (a few dB), not a collapse.
        assert np.mean(small) - np.mean(large) < 10.0

    def test_twenty_nodes_still_robust(self):
        # "even when 20 sensors transmit simultaneously, their average
        # SNR is higher than 29 dB" — allow reproduction tolerance.
        net = self._network(seed=3)
        means = [net.evaluate(20).mean_sinr_db for _ in range(10)]
        assert np.mean(means) > 25.0

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            self._network().evaluate(0)

    def test_placement_count_mismatch(self):
        net = self._network()
        with pytest.raises(ValueError):
            net.evaluate(3, placements=[])


class TestInitializationProtocol:
    def test_reliable_channel_one_attempt(self):
        ap = MmxAccessPoint()
        node = MmxNode(node_id=1, config=AskFskConfig())
        proto = InitializationProtocol(ap)
        record = proto.initialize(node, 1e6)
        assert record.attempts == 1
        assert node.is_initialized
        assert ap.registered_nodes == [1]

    def test_lossy_channel_retries(self):
        rng = np.random.default_rng(5)
        side = SideChannel(delivery_ratio=0.3, rng=rng)
        ap = MmxAccessPoint()
        proto = InitializationProtocol(ap, side, max_attempts=50)
        node = MmxNode(node_id=2, config=AskFskConfig())
        record = proto.initialize(node, 1e6)
        assert record.attempts >= 1
        assert node.is_initialized

    def test_dead_channel_rolls_back(self):
        class DeadChannel(SideChannel):
            def deliver(self):
                return False

        ap = MmxAccessPoint()
        proto = InitializationProtocol(ap, DeadChannel(), max_attempts=3)
        node = MmxNode(node_id=3, config=AskFskConfig())
        with pytest.raises(ConnectionError):
            proto.initialize(node, 1e6)
        # The failed node must not hold spectrum.
        assert ap.registered_nodes == []
        assert not node.is_initialized

    def test_initialize_all(self):
        ap = MmxAccessPoint()
        proto = InitializationProtocol(ap)
        nodes = [MmxNode(node_id=i, config=AskFskConfig()) for i in range(3)]
        records = proto.initialize_all([(n, 5e6) for n in nodes])
        assert len(records) == 3
        assert all(n.is_initialized for n in nodes)

    def test_invalid_delivery_ratio(self):
        with pytest.raises(ValueError):
            SideChannel(delivery_ratio=0.0)
