"""Integration tests: whole-system scenarios across module boundaries."""

import math

from repro.core.ask_fsk import AskFskConfig
from repro.core.link import OtamLink
from repro.core.packet import Packet, PacketCodec
from repro.network.init_protocol import InitializationProtocol
from repro.node.access_point import MmxAccessPoint
from repro.node.node import MmxNode
from repro.phy.waveform import Waveform, awgn_noise
from repro.sim.environment import Blocker, default_lab_room
from repro.sim.geometry import Point, Segment
from repro.sim.mobility import LinearCrossing, WalkingBlocker, los_blocker_between
from repro.sim.placement import Placement, PlacementSampler


CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


def _facing(distance=3.0):
    return Placement(Point(2.0, 0.15 + distance), -math.pi / 2,
                     Point(2.0, 0.15), math.pi / 2)


class TestSmartHomeScenario:
    """A camera streams packets to a home hub through the full stack."""

    def _setup(self):
        room = default_lab_room()
        ap = MmxAccessPoint()
        camera = MmxNode(node_id=1, config=CONFIG)
        proto = InitializationProtocol(ap)
        proto.initialize(camera, demanded_rate_bps=1e6)
        return room, ap, camera

    def _deliver(self, ap, camera, link, payload, rng):
        channel = link.channel_response()
        job, clean = camera.transmit(payload, channel)
        noise = awgn_noise(len(clean), 1e-9, rng)
        capture = Waveform(clean.samples * 1e3 + noise * 1e3,
                           clean.sample_rate_hz)
        return ap.try_receive_packet(camera.node_id, capture)

    def test_stream_delivered_clear_los(self, rng):
        room, ap, camera = self._setup()
        link = OtamLink(placement=_facing(3.0), room=room, config=CONFIG)
        for i in range(5):
            payload = f"frame-{i}".encode()
            packet = self._deliver(ap, camera, link, payload, rng)
            assert packet is not None
            assert packet.payload == payload

    def test_stream_survives_blockage(self, rng):
        room, ap, camera = self._setup()
        room.add_blocker(Blocker(Point(2.0, 1.5), penetration_loss_db=30.0))
        link = OtamLink(placement=_facing(3.0), room=room, config=CONFIG)
        packet = self._deliver(ap, camera, link, b"blocked frame", rng)
        assert packet is not None
        assert packet.payload == b"blocked frame"

    def test_sequence_numbers_progress(self, rng):
        room, ap, camera = self._setup()
        link = OtamLink(placement=_facing(2.0), room=room, config=CONFIG)
        seqs = []
        for i in range(3):
            packet = self._deliver(ap, camera, link, b"x", rng)
            seqs.append(packet.sequence)
        assert seqs == [0, 1, 2]


class TestDynamicEnvironment:
    """A person walks through the link while the node keeps sending."""

    def test_connectivity_through_walker(self, rng):
        room = default_lab_room()
        placement = _facing(4.0)
        crossing = LinearCrossing(
            Segment(Point(0.5, 2.0), Point(3.5, 2.0)), speed_mps=1.0)
        walker = WalkingBlocker(
            los_blocker_between(placement.node_position,
                                placement.ap_position), crossing)
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"mobile", sequence=0))
        delivered = blocked_states = 0
        steps = 24
        for _ in range(steps):
            blocker = walker.step(0.25)
            room.clear_blockers()
            room.add_blocker(blocker)
            link = OtamLink(placement=placement, room=room, config=CONFIG)
            blocked_states += blocker.occludes(
                Segment(placement.node_position, placement.ap_position))
            report = link.simulate_transmission(frame, rng=rng)
            try:
                packet = codec.decode(report.demod.bits)
                delivered += packet.payload == b"mobile"
            except Exception:
                pass
        room.clear_blockers()
        # The walker actually crossed the LoS at least once, and OTAM
        # kept a large majority of frames flowing regardless.
        assert blocked_states >= 1
        assert delivered >= steps * 0.8

    def test_polarity_flips_as_walker_crosses(self, rng):
        room = default_lab_room()
        placement = _facing(4.0)
        link_clear = OtamLink(placement=placement, room=room, config=CONFIG)
        clear = link_clear.channel_response()
        room.add_blocker(Blocker(Point(2.0, 2.0), penetration_loss_db=32.0))
        blocked = OtamLink(placement=placement, room=room,
                           config=CONFIG).channel_response()
        room.clear_blockers()
        assert not clear.inverted
        assert blocked.inverted


class TestMultiCameraNetwork:
    """Several cameras registered at one AP, each on its own channel."""

    def test_initialization_and_disjoint_channels(self):
        ap = MmxAccessPoint()
        proto = InitializationProtocol(ap)
        nodes = [MmxNode(node_id=i, config=CONFIG) for i in range(6)]
        proto.initialize_all([(n, 10e6) for n in nodes])
        plans = [ap.registration(n.node_id).channel for n in nodes]
        for i, a in enumerate(plans):
            for b in plans[i + 1:]:
                assert not a.overlaps(b)
        for node in nodes:
            assert node.is_initialized

    def test_all_cameras_deliver(self, rng):
        room = default_lab_room()
        ap = MmxAccessPoint()
        proto = InitializationProtocol(ap)
        sampler = PlacementSampler(room, rng)
        delivered = 0
        for i in range(4):
            node = MmxNode(node_id=i, config=CONFIG)
            proto.initialize(node, demanded_rate_bps=1e6)
            link = OtamLink(placement=sampler.sample(), room=room,
                            config=CONFIG)
            channel = link.channel_response()
            _, clean = node.transmit(f"cam{i}".encode(), channel)
            capture = Waveform(clean.samples * 1e3
                               + awgn_noise(len(clean), 1e-9, rng) * 1e3,
                               clean.sample_rate_hz)
            packet = ap.try_receive_packet(i, capture)
            delivered += packet is not None
        assert delivered >= 3


class TestFecUnderNoise:
    def test_fec_recovers_marginal_link(self, rng):
        """At marginal SNR, Hamming-protected frames survive more often."""
        room = default_lab_room()
        placement = _facing(5.5)
        plain = PacketCodec(use_fec=False)
        fec = PacketCodec(use_fec=True)
        link = OtamLink(placement=placement, room=room, config=CONFIG,
                        implementation_loss_db=47.0)  # force marginal SNR
        channel = link.channel_response()

        def attempt(codec):
            ok = 0
            for _ in range(15):
                frame = codec.encode(Packet(payload=b"fragile bits"))
                report = link.simulate_transmission(frame, channel=channel,
                                                    rng=rng)
                try:
                    codec.decode(report.demod.bits)
                    ok += 1
                except Exception:
                    pass
            return ok

        assert attempt(fec) >= attempt(plain)
