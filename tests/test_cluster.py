"""Tests for checkpointing, heartbeat detection, and multi-AP failover."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ApCheckpoint,
    CheckpointError,
    Cluster,
    FailoverSimulation,
    HeartbeatMonitor,
)
from repro.network.fdm import SpectrumExhausted
from repro.node.access_point import MmxAccessPoint


def _populated_ap(rates, blocks=(), tma=()):
    ap = MmxAccessPoint()
    for node_id, rate in enumerate(rates):
        ap.register_node(node_id, rate)
    for low, high in blocks:
        ap.allocator.block_range(low, high)
    for node_id, harmonic in tma:
        ap.assign_tma_slot(node_id, harmonic)
    return ap


class TestCheckpoint:
    def test_round_trip_exact(self):
        ap = _populated_ap([1e6, 2e6, 4e6],
                           blocks=[(24.2e9, 24.21e9)],
                           tma=[(1, 2)])
        snapshot = ApCheckpoint.capture(ap)
        restored = snapshot.restore()
        assert ApCheckpoint.capture(restored) == snapshot
        assert restored.registered_nodes == ap.registered_nodes
        assert restored.allocator.plans == ap.allocator.plans
        assert restored.tma_assignments == ap.tma_assignments

    @settings(max_examples=25, deadline=None)
    @given(rates=st.lists(
        st.floats(min_value=1e5, max_value=20e6,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=8))
    def test_serialization_round_trip_property(self, rates):
        """JSON round trip is lossless for any admissible population."""
        ap = MmxAccessPoint()
        admitted = 0
        for node_id, rate in enumerate(rates):
            try:
                ap.register_node(node_id, rate)
                admitted += 1
            except SpectrumExhausted:
                break
        snapshot = ApCheckpoint.capture(ap)
        again = ApCheckpoint.from_json(snapshot.to_json())
        assert again == snapshot
        restored = again.restore()
        assert len(restored.registered_nodes) == admitted
        assert ApCheckpoint.capture(restored) == snapshot

    def test_tampered_payload_rejected(self):
        snapshot = ApCheckpoint.capture(_populated_ap([1e6]))
        data = snapshot.to_dict()
        data["reallocation_failures"] = 99
        with pytest.raises(CheckpointError):
            ApCheckpoint.from_dict(data)

    def test_missing_integrity_rejected(self):
        data = ApCheckpoint.capture(_populated_ap([1e6])).to_dict()
        del data["integrity"]
        with pytest.raises(CheckpointError):
            ApCheckpoint.from_dict(data)

    def test_unknown_schema_rejected(self):
        snapshot = ApCheckpoint.capture(_populated_ap([1e6]))
        data = snapshot._state_dict()
        data["schema_version"] = 999
        from repro.cluster.checkpoint import _digest
        data["integrity"] = _digest(data)
        with pytest.raises(CheckpointError):
            ApCheckpoint.from_dict(data)

    def test_garbage_json_rejected(self):
        with pytest.raises(CheckpointError):
            ApCheckpoint.from_json("not json {")

    def test_file_round_trip(self, tmp_path):
        snapshot = ApCheckpoint.capture(_populated_ap([1e6, 3e6]))
        path = tmp_path / "ap.ckpt"
        snapshot.save(path)
        assert ApCheckpoint.load(path) == snapshot


class TestHeartbeat:
    def test_detection_after_threshold(self):
        monitor = HeartbeatMonitor(interval_s=0.5, miss_threshold=3)
        monitor.watch(0, 0.0)
        assert monitor.is_alive(0, 1.4)
        assert not monitor.is_alive(0, 1.5)
        assert monitor.detection_latency_s == pytest.approx(1.5)

    def test_newly_dead_reports_once(self):
        monitor = HeartbeatMonitor(interval_s=0.5, miss_threshold=2)
        monitor.watch(0, 0.0)
        monitor.watch(1, 0.0)
        monitor.beat(1, 0.9)
        assert monitor.newly_dead(1.2) == [0]
        assert monitor.newly_dead(1.3) == []          # not re-reported
        assert monitor.newly_dead(2.5) == [1]

    def test_beat_revives(self):
        monitor = HeartbeatMonitor(interval_s=0.5, miss_threshold=2)
        monitor.watch(0, 0.0)
        assert monitor.newly_dead(2.0) == [0]
        monitor.beat(0, 2.1)
        assert monitor.is_alive(0, 2.2)
        assert monitor.newly_dead(3.5) == [0]         # can die again

    def test_time_must_advance(self):
        monitor = HeartbeatMonitor()
        monitor.watch(0, 5.0)
        with pytest.raises(ValueError):
            monitor.beat(0, 4.0)

    def test_unwatched_ap_raises(self):
        with pytest.raises(KeyError):
            HeartbeatMonitor().is_alive(9, 0.0)


class TestCluster:
    def _cluster(self, num_aps=2, miss_threshold=2, interval_s=0.5):
        return Cluster(
            aps=[MmxAccessPoint() for _ in range(num_aps)],
            heartbeat=HeartbeatMonitor(interval_s=interval_s,
                                       miss_threshold=miss_threshold))

    def test_registration_follows_preference(self):
        cluster = self._cluster()
        assert cluster.register_node(0, 1e6, preference=[1, 0]) == 1
        assert cluster.register_node(1, 1e6, preference=[0, 1]) == 0
        assert cluster.is_served(0) and cluster.is_served(1)

    def test_crash_detect_failover(self):
        cluster = self._cluster()
        cluster.register_node(0, 1e6, preference=[0, 1])
        cluster.checkpoint_all()
        cluster.crash(0)
        # Stranded but undetected: the node is not served, not migrated.
        assert cluster.step(0.5) == {}
        assert not cluster.is_served(0)
        # Past the detection latency the death is declared and the node
        # re-associates with the survivor.
        migrations = cluster.step(2.0)
        assert migrations == {0: [0]}
        assert cluster.serving_ap(0) == 1
        assert cluster.is_served(0)
        assert cluster.failover_count == 1

    def test_failover_overflow_orphans(self):
        cluster = self._cluster()
        # Fill AP 1 completely so the failover target has no spectrum.
        node_id = 100
        while True:
            try:
                cluster.members[1].ap.register_node(node_id, 20e6)
            except SpectrumExhausted:
                break
            node_id += 1
        cluster.register_node(0, 20e6, preference=[0, 1])
        cluster.crash(0)
        cluster.step(5.0)
        assert cluster.orphaned == {0}
        assert cluster.serving_ap(0) is None
        assert cluster.stats()["orphaned_nodes"] == 1

    def test_recover_restores_checkpoint_and_reconciles(self):
        cluster = self._cluster()
        cluster.register_node(0, 1e6, preference=[0, 1])
        cluster.register_node(1, 2e6, preference=[0, 1])
        plans_before = cluster.members[0].ap.allocator.plans
        cluster.checkpoint_all()
        cluster.crash(0)
        cluster.step(5.0)                  # both nodes migrate to AP 1
        restored = cluster.recover(0, 6.0)
        # The restored AP reproduced its spectrum map, then released the
        # nodes that migrated while it was down.
        assert cluster.members[0].alive
        assert restored.registered_nodes == []
        assert cluster.serving_ap(0) == 1
        # A fresh crash of AP 1 now fails everyone back over to AP 0.
        cluster.crash(1)
        cluster.step(12.0)
        assert cluster.serving_ap(0) == 0
        assert cluster.members[0].ap.allocator.plans != plans_before \
            or cluster.members[0].ap.registered_nodes == [0, 1]

    def test_recover_without_checkpoint_reboots_empty(self):
        cluster = self._cluster(num_aps=1)
        cluster.register_node(0, 1e6)
        cluster.crash(0)
        cluster.step(5.0)                  # nowhere to go: orphaned
        assert cluster.orphaned == {0}
        restored = cluster.recover(0, 6.0)
        assert restored.registered_nodes == []
        assert cluster.orphaned == {0}     # state was never checkpointed

    def test_duplicate_node_rejected(self):
        cluster = self._cluster()
        cluster.register_node(0, 1e6)
        with pytest.raises(ValueError):
            cluster.register_node(0, 1e6)

    def _disk_cluster(self, tmp_path, num_aps=2):
        return Cluster(
            aps=[MmxAccessPoint() for _ in range(num_aps)],
            heartbeat=HeartbeatMonitor(interval_s=0.5,
                                       miss_threshold=2),
            checkpoint_dir=tmp_path)

    def test_checkpoint_dir_persists_every_capture(self, tmp_path):
        cluster = self._disk_cluster(tmp_path)
        cluster.register_node(0, 1e6, preference=[0, 1])
        cluster.checkpoint_all()
        for ap_id in (0, 1):
            loaded = ApCheckpoint.load(tmp_path / f"ap{ap_id}.ckpt")
            assert loaded == cluster.members[ap_id].checkpoint

    def test_recover_falls_back_to_disk_checkpoint(self, tmp_path):
        """Process restart: in-memory captures gone, disk survives."""
        first = self._disk_cluster(tmp_path)
        first.register_node(0, 1e6, preference=[0, 1])
        first.checkpoint_all()

        rebooted = self._disk_cluster(tmp_path)
        rebooted.crash(0)
        restored = rebooted.recover(0, 1.0)
        assert restored.registered_nodes == [0]
        assert rebooted.recovery_errors == []

    def test_recover_skips_and_reports_corrupt_checkpoint(
            self, tmp_path):
        """Satellite (b): a rotten checkpoint file must not take the
        failover path down with it — skip, report, reboot empty."""
        cluster = self._disk_cluster(tmp_path)
        cluster.register_node(0, 1e6, preference=[0, 1])
        cluster.checkpoint_all()
        path = tmp_path / "ap0.ckpt"
        path.write_text(path.read_text().replace('"plans"', '"plons"'))

        rebooted = self._disk_cluster(tmp_path)
        rebooted.crash(0)
        restored = rebooted.recover(0, 1.0)   # does not raise
        assert restored.registered_nodes == []
        assert rebooted.members[0].alive
        assert len(rebooted.recovery_errors) == 1
        ap_id, reason = rebooted.recovery_errors[0]
        assert ap_id == 0 and "integrity" in reason

    def test_corrupt_checkpoint_recovery_counts_telemetry(
            self, tmp_path):
        from repro.telemetry import Recorder

        recorder = Recorder()
        cluster = Cluster(
            aps=[MmxAccessPoint()],
            heartbeat=HeartbeatMonitor(interval_s=0.5,
                                       miss_threshold=2),
            telemetry=recorder, checkpoint_dir=tmp_path)
        cluster.checkpoint_all()
        (tmp_path / "ap0.ckpt").write_text("junk\n")
        cluster.members[0].checkpoint = None  # simulate restart
        cluster.crash(0)
        cluster.recover(0, 1.0)
        counters = {c.name: c.value
                    for c in recorder.metrics.counters()}
        assert counters.get("cluster.corrupt_checkpoints") == 1

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(aps=[])


class TestFailoverSimulation:
    def _sim(self):
        from repro.sim.environment import Room
        from repro.sim.geometry import Point

        room = Room.rectangular(width_m=20.0, length_m=10.0)
        return FailoverSimulation(
            room,
            ap_positions=[Point(2.0, 5.0), Point(18.0, 5.0)],
            node_positions=[Point(4.0, 3.0), Point(6.0, 7.0),
                            Point(14.0, 3.0), Point(16.0, 7.0)],
            demanded_rate_bps=1e6,
            heartbeat=HeartbeatMonitor(interval_s=0.5, miss_threshold=3))

    def _schedule(self, seed=7):
        from repro.faults import ApCrashProcess, FaultInjector

        injector = FaultInjector(
            [ApCrashProcess(start_s=8.0, duration_s=12.0, ap_index=0)],
            master_seed=seed)
        return injector.schedule(duration_s=30.0)

    def test_cluster_beats_frozen_baseline(self):
        result = self._sim().run(self._schedule(), dt_s=0.1)
        assert result.adaptive_delivery_ratio \
            > result.static_delivery_ratio
        assert result.failover_count == 2
        assert result.orphaned_nodes == 0

    def test_detection_window_costs_delivery(self):
        result = self._sim().run(self._schedule(), dt_s=0.1)
        # During the stranded window the cluster delivers strictly less
        # than before the crash.
        crash_idx = int(8.5 / 0.1)
        pre_crash = result.adaptive_success[:int(8.0 / 0.1)]
        assert result.adaptive_success[crash_idx] < pre_crash.mean()

    def test_repeat_runs_identical(self):
        sim = self._sim()
        a = sim.run(self._schedule(), dt_s=0.1)
        b = sim.run(self._schedule(), dt_s=0.1)
        assert np.array_equal(a.adaptive_success, b.adaptive_success)
        assert np.array_equal(a.static_success, b.static_success)

    def test_no_crash_schedule_is_a_tie_at_full_delivery(self):
        from repro.faults.injector import FaultSchedule

        result = self._sim().run(FaultSchedule([], duration_s=5.0),
                                 dt_s=0.5)
        assert result.failover_count == 0
        # Both policies serve everyone; only link quality separates them.
        assert result.adaptive_delivery_ratio > 0.9
        assert result.static_delivery_ratio > 0.9
