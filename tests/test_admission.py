"""Tests for :mod:`repro.admission` — book equivalence, SDM packing,
the admission ladder, and the saturation campaign.

The load-bearing claims:

* the interval-indexed :class:`SpectrumBook` places channels
  **byte-identically** to the seed first-fit scan (proven here against
  a verbatim reference implementation, under hypothesis-driven op
  sequences of allocates / releases / reallocates / blocks);
* occupancy accounting never drifts: the book's incremental ``free_hz``
  always equals the brute-force complement of the live plans + blocks;
* the SDM packer never admits a harmonic collision (the exact
  :func:`~repro.network.sdm_scheduler.count_harmonic_collisions`
  predicate over every admitted pair);
* the saturation campaign is byte-identical serial vs supervised
  parallel at a fixed master seed.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import (
    AdmissionController,
    SaturationConfig,
    SdmPacker,
    SpectrumBook,
    default_config,
    run_saturation,
)
from repro.network.fdm import ChannelPlan, FdmAllocator, SpectrumExhausted
from repro.network.sdm_scheduler import HARMONIC_COLLISION_RAD
from repro.sim.geometry import normalize_angle
from repro.telemetry import Recorder


class ReferenceFirstFit:
    """The seed ``FdmAllocator._place`` scan, verbatim.

    Kept as the ground truth the book must match bit-for-bit: sort the
    occupied intervals, walk a cursor from the band floor, stop at the
    first gap that fits ``width * (1 + guard)``.
    """

    def __init__(self, low: float, high: float, guard: float):
        self.low, self.high, self.guard = low, high, guard
        self.plans: dict[int, ChannelPlan] = {}
        self.blocked: list[tuple[float, float]] = []

    def place(self, width: float) -> float | None:
        pitch = width * (1.0 + self.guard)
        occupied = sorted(
            [(p.low_hz, p.high_hz) for p in self.plans.values()]
            + list(self.blocked))
        cursor = self.low
        for low, high in occupied:
            if cursor + pitch <= low:
                break
            cursor = max(cursor, high + width * self.guard)
        if cursor + width > self.high:
            return None
        return cursor


def _free_complement(low: float, high: float,
                     intervals: list[tuple[float, float]]) -> float:
    """Brute-force free measure of [low, high] minus the intervals."""
    clipped = sorted((max(low, a), min(high, b)) for a, b in intervals
                     if b > low and a < high)
    free = 0.0
    cursor = low
    for a, b in clipped:
        if a > cursor:
            free += a - cursor
        cursor = max(cursor, b)
    return free + max(0.0, high - cursor)


# One operation = (kind, payload); payloads are drawn wide enough to
# produce exhaustion, gap reuse, out-of-band blocks and ulp-hostile
# widths.
_OPS = st.lists(
    st.tuples(st.sampled_from(["alloc", "release", "realloc", "block",
                               "clear"]),
              st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False),
              st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=300)


class TestBookMatchesSeedFirstFit:
    """Hypothesis: the book is the seed scan, bit for bit."""

    @given(ops=_OPS,
           band=st.sampled_from([(0.0, 100.0), (24.0e9, 24.0e9 + 1000.0),
                                 (-50.0, -36.3), (7.3, 21.0)]),
           guard=st.sampled_from([0.0, 0.25, 1.0, 0.017]))
    @settings(max_examples=150, deadline=None)
    def test_equivalence_and_accounting(self, ops, band, guard):
        low, high = band
        span = high - low
        alloc = FdmAllocator(band_low_hz=low, band_high_hz=high,
                             bandwidth_per_bps=1.0, guard_fraction=guard,
                             min_channel_hz=1e-9)
        ref = ReferenceFirstFit(low, high, guard)
        live: list[int] = []
        next_id = 0
        for kind, u, v in ops:
            if kind == "alloc":
                # Floored relative to the span: widths below the float
                # ulp of the band coordinates make the seed scan itself
                # degenerate (zero-width plans), outside the contract.
                width = span * (1e-6 + u / 3.0)
                expected = ref.place(width)
                try:
                    plan = alloc.allocate(next_id, width)
                    got = plan.low_hz
                except SpectrumExhausted:
                    got = None
                if expected is None:
                    assert got is None
                else:
                    probe = ChannelPlan(node_id=0, bandwidth_hz=width,
                                        center_hz=expected + width / 2.0)
                    assert got == probe.low_hz
                    ref.plans[next_id] = alloc.plan_for(next_id)
                    live.append(next_id)
                next_id += 1
            elif kind == "release" and live:
                victim = live.pop(int(u * len(live)) % len(live))
                alloc.release(victim)
                del ref.plans[victim]
            elif kind == "realloc" and live:
                victim = live[int(u * len(live)) % len(live)]
                width = ref.plans[victim].bandwidth_hz
                del ref.plans[victim]
                expected = ref.place(width)
                try:
                    got = alloc.reallocate(victim).low_hz
                except SpectrumExhausted:
                    got = None
                if expected is None:
                    assert got is None  # old plan restored in place
                else:
                    probe = ChannelPlan(node_id=0, bandwidth_hz=width,
                                        center_hz=expected + width / 2.0)
                    assert got == probe.low_hz
                ref.plans[victim] = alloc.plan_for(victim)
            elif kind == "block":
                a = low - span * 0.3 + u * span * 1.6
                b = a + span * (1e-6 + v * 0.4)
                alloc.block_range(a, b)
                ref.blocked.append((float(a), float(b)))
            elif kind == "clear":
                alloc.clear_blocks()
                ref.blocked = []
            # Occupancy accounting must never drift from brute force.
            occupied = ([(p.low_hz, p.high_hz)
                         for p in ref.plans.values()] + ref.blocked)
            assert alloc.free_bandwidth_hz == pytest.approx(
                _free_complement(low, high, occupied), abs=1e-6)
        assert sorted(p.node_id for p in alloc.plans) == sorted(ref.plans)


class TestSpectrumBook:
    def test_place_commit_release_roundtrip(self):
        book = SpectrumBook(0.0, 100.0)
        at = book.place(10.0, 0.0)
        assert at == 0.0
        book.commit(1, 0.0, 10.0)
        assert book.place(10.0, 0.0) == 10.0
        book.release(1, 0.0, 10.0)
        assert book.place(10.0, 0.0) == 0.0
        assert book.free_hz == pytest.approx(100.0)

    def test_too_wide_returns_none(self):
        book = SpectrumBook(0.0, 100.0)
        assert book.place(100.5, 0.0) is None

    def test_blocks_merge_and_clear(self):
        book = SpectrumBook(0.0, 100.0)
        book.block(10.0, 30.0)
        book.block(20.0, 40.0)  # overlapping: merges
        assert book.free_hz == pytest.approx(70.0)
        assert book.place(50.0, 0.0) == 40.0
        book.clear_blocks()
        assert book.free_hz == pytest.approx(100.0)
        assert book.place(50.0, 0.0) == 0.0

    def test_overlapping_plan_ids(self):
        book = SpectrumBook(0.0, 100.0)
        book.commit(1, 0.0, 10.0)
        book.commit(2, 20.0, 30.0)
        assert book.overlapping_plan_ids(5.0, 25.0) == [1, 2]
        assert book.overlapping_plan_ids(10.0, 20.0) == []

    def test_largest_gap_tracks_fragmentation(self):
        book = SpectrumBook(0.0, 100.0)
        book.commit(1, 40.0, 50.0)
        assert book.largest_gap_hz == pytest.approx(50.0)
        assert book.free_hz == pytest.approx(90.0)


class TestSdmPacker:
    @given(bearings=st.lists(
        st.floats(min_value=-math.pi, max_value=math.pi,
                  allow_nan=False), min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_never_admits_a_harmonic_collision(self, bearings):
        packer = SdmPacker(num_channels=4)
        admitted = []
        for node_id, bearing in enumerate(bearings):
            assignment = packer.admit(node_id, bearing)
            if assignment is not None:
                admitted.append(assignment)
        # The exact count_harmonic_collisions predicate over every
        # admitted co-channel pair: zero collisions, always.
        for i, a in enumerate(admitted):
            for b in admitted[i + 1:]:
                if a.channel_index != b.channel_index:
                    continue
                gap = abs(normalize_angle(a.bearing_rad - b.bearing_rad))
                assert gap >= HARMONIC_COLLISION_RAD

    def test_deterministic(self):
        bearings = [0.1 * i for i in range(40)]
        runs = []
        for _ in range(2):
            packer = SdmPacker(num_channels=3)
            runs.append([packer.admit(i, b) for i, b in
                         enumerate(bearings)])
        assert runs[0] == runs[1]

    def test_release_frees_the_slot(self):
        packer = SdmPacker(num_channels=1)
        first = packer.admit(0, 0.0)
        assert first is not None
        assert packer.admit(1, 0.0) is None  # same bearing collides
        packer.release(0)
        again = packer.admit(1, 0.0)
        assert again is not None
        assert again.channel_index == first.channel_index

    def test_harmonic_indices_unique_per_channel(self):
        packer = SdmPacker(num_channels=1)
        taken = set()
        for i in range(8):
            assignment = packer.admit(i, i * math.radians(25.0))
            assert assignment is not None
            assert assignment.harmonic_index not in taken
            taken.add(assignment.harmonic_index)


class TestAdmissionLadder:
    def _tiny(self, **kwargs) -> AdmissionController:
        """A controller over a 100 Hz band (1 Hz per bps, no floor)."""
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        return AdmissionController(allocator=alloc, **kwargs)

    def test_fdm_first(self):
        ctrl = self._tiny()
        decision = ctrl.admit(0, 10.0, bearing_rad=0.0)
        assert decision.state == "fdm" and decision.admitted
        assert decision.sdm is None
        assert ctrl.counts() == {"fdm": 1, "sdm": 0, "total": 1}

    def test_sdm_escalation_when_band_full(self):
        ctrl = self._tiny(sdm_channels=4)
        ctrl.admit(0, 100.0)  # the whole band
        decision = ctrl.admit(1, 10.0, bearing_rad=1.0)
        assert decision.state == "sdm" and decision.admitted
        assert decision.sdm is not None
        assert decision.plan is not None  # the shared slice
        assert ctrl.counts()["sdm"] == 1

    def test_blocked_without_bearing(self):
        ctrl = self._tiny()
        ctrl.admit(0, 100.0)
        decision = ctrl.admit(1, 10.0)  # no bearing: no SDM rung
        assert decision.state == "blocked" and not decision.admitted
        assert 1 not in ctrl

    def test_release_returns_spectrum(self):
        ctrl = self._tiny()
        ctrl.admit(0, 100.0)
        ctrl.release(0)
        assert len(ctrl) == 0
        assert ctrl.admit(1, 100.0).state == "fdm"

    def test_release_sdm_node(self):
        ctrl = self._tiny(sdm_channels=2)
        ctrl.admit(0, 100.0)
        assert ctrl.admit(1, 10.0, bearing_rad=0.5).state == "sdm"
        ctrl.release(1)
        assert 1 not in ctrl and 0 in ctrl

    def test_occupancy_and_fragmentation(self):
        ctrl = self._tiny()
        assert ctrl.occupancy == pytest.approx(0.0)
        ctrl.admit(0, 50.0)
        assert ctrl.occupancy == pytest.approx(0.5)
        assert 0.0 <= ctrl.fragmentation <= 1.0

    def test_telemetry_counters(self):
        tel = Recorder()
        ctrl = self._tiny(telemetry=tel)
        ctrl.admit(0, 100.0, bearing_rad=0.0)   # fdm
        ctrl.admit(1, 10.0, bearing_rad=1.0)    # sdm spill
        ctrl.admit(2, 10.0)                     # blocked (no bearing)
        ctrl.release(0)
        counters = {c.name: c.value for c in tel.metrics.counters()}
        assert counters["admission.admitted_fdm"] == 1
        assert counters["admission.admitted_sdm"] == 1
        assert counters["admission.blocked"] == 1
        assert counters["admission.released"] == 1


class TestBatchedReadmission:
    def _tiny(self, **kwargs) -> AdmissionController:
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        return AdmissionController(allocator=alloc, **kwargs)

    def test_single_pass_moves_all_victims(self):
        ctrl = self._tiny()
        for i in range(4):
            ctrl.admit(i, 10.0)  # [0,10) [10,20) [20,30) [30,40)
        report = ctrl.mark_interference(0.0, 25.0)
        assert report.victims == (0, 1, 2)
        assert set(report.moved) == {0, 1, 2}
        assert not report.spilled_to_sdm and not report.evicted
        # Everyone landed clear of the blocked range, nobody overlaps.
        plans = [ctrl.decision_for(i).plan for i in range(4)]
        for plan in plans:
            assert plan.low_hz >= 25.0 or plan.high_hz <= 0.0
        for i, a in enumerate(plans):
            for b in plans[i + 1:]:
                assert not a.overlaps(b)

    def test_batched_pass_beats_per_node_loops(self):
        # Two 30 Hz victims + 40 Hz blocked: re-admitting one at a time
        # against a 60 Hz residue works only because the batch frees
        # BOTH victims before placing either — exactly the failure mode
        # per-node loops hit when the band is tight.
        ctrl = self._tiny()
        ctrl.admit(0, 30.0)
        ctrl.admit(1, 30.0)
        report = ctrl.mark_interference(0.0, 40.0)
        assert set(report.moved) == {0, 1}
        for i in range(2):
            assert ctrl.decision_for(i).plan.low_hz >= 40.0

    def test_spill_to_sdm_then_evict(self):
        ctrl = self._tiny(sdm_channels=2)
        ctrl.admit(0, 60.0, bearing_rad=0.0)
        ctrl.admit(1, 30.0)  # no bearing: cannot spill, must evict
        report = ctrl.mark_interference(0.0, 100.0)
        assert report.victims == (0, 1)
        assert report.spilled_to_sdm == (0,)
        assert report.evicted == (1,)
        assert ctrl.decision_for(0).state == "sdm"
        assert 1 not in ctrl

    def test_clear_interference_restores_fdm_room(self):
        ctrl = self._tiny()
        ctrl.admit(0, 10.0)
        ctrl.mark_interference(50.0, 100.0)
        assert ctrl.admit(1, 60.0).state == "blocked"
        ctrl.clear_interference()
        assert ctrl.admit(2, 60.0).state == "fdm"

    def test_interference_telemetry(self):
        tel = Recorder()
        ctrl = self._tiny(sdm_channels=2, telemetry=tel)
        ctrl.admit(0, 60.0, bearing_rad=0.0)
        ctrl.admit(1, 30.0)
        ctrl.mark_interference(0.0, 100.0)
        counters = {c.name: c.value for c in tel.metrics.counters()}
        assert counters["admission.sdm_spill"] == 1
        assert counters["admission.evicted"] == 1


class TestSaturationCampaign:
    def test_serial_vs_supervised_byte_identical(self):
        from repro.engine import SerialExecutor, SupervisedPool

        config = default_config(loads=(0.5, 3.0), replicates=2,
                                arrivals=80)
        serial = run_saturation(config, master_seed=7,
                                executor=SerialExecutor(), num_shards=1)
        parallel = run_saturation(config, master_seed=7,
                                  executor=SupervisedPool(jobs=2),
                                  num_shards=4)
        assert serial.curve() == parallel.curve()
        assert serial.churn_ops == parallel.churn_ops

    def test_blocking_grows_with_load(self):
        config = SaturationConfig(loads=(0.25, 8.0), replicates=2,
                                  arrivals=150)
        result = run_saturation(config, master_seed=0)
        assert result.blocking_probability[0] <= \
            result.blocking_probability[1]
        # Saturation pushes arrivals off FDM and onto spatial reuse.
        assert result.sdm_share[1] > result.sdm_share[0]
        assert result.churn_ops >= config.num_trials * config.arrivals

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SaturationConfig(loads=())
        with pytest.raises(ValueError):
            SaturationConfig(loads=(0.0,))
        with pytest.raises(ValueError):
            SaturationConfig(replicates=0)
        with pytest.raises(ValueError):
            SaturationConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            SaturationConfig(rate_classes=((1e6, -1.0),))

    def test_render_mentions_every_load(self):
        from repro.admission import render

        config = default_config(loads=(0.5, 1.5), replicates=1,
                                arrivals=40)
        text = render(run_saturation(config))
        assert "0.50" in text and "1.50" in text
        assert "P(block)" in text


class TestAccessPointIntegration:
    def _ap(self, sdm_channels: int = 4):
        from repro.node.access_point import MmxAccessPoint

        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        ctrl = AdmissionController(allocator=alloc,
                                   sdm_channels=sdm_channels)
        return MmxAccessPoint(admission=ctrl), ctrl

    def test_registration_walks_the_ladder(self):
        ap, ctrl = self._ap()
        reg = ap.register_node(0, 100.0)
        assert reg.channel == ctrl.decision_for(0).plan
        # Band is full; bearing-carrying arrival lands on SDM + TMA.
        sdm_reg = ap.register_node(1, 10.0, bearing_rad=1.0)
        assert ctrl.decision_for(1).state == "sdm"
        assert ap.tma_assignments[1] == ctrl.decision_for(1) \
            .sdm.harmonic_index
        assert sdm_reg.channel == ctrl.decision_for(1).plan

    def test_blocked_ladder_raises_spectrum_exhausted(self):
        # Cluster failover catches SpectrumExhausted to walk its AP
        # preference order; the ladder must keep that contract.
        ap, _ = self._ap()
        ap.register_node(0, 100.0)
        with pytest.raises(SpectrumExhausted):
            ap.register_node(1, 10.0)  # no bearing, no SDM rung

    def test_deregister_routes_through_controller(self):
        ap, ctrl = self._ap()
        ap.register_node(0, 50.0)
        ap.deregister_node(0)
        assert 0 not in ctrl
        assert ap.registered_nodes == []

    def test_mark_interference_updates_registrations(self):
        ap, ctrl = self._ap()
        ap.register_node(0, 30.0)
        ap.register_node(1, 30.0)
        victims = ap.mark_interference(0.0, 40.0)
        assert victims == [0, 1]
        for node_id in (0, 1):
            assert ap.registration(node_id).channel == \
                ctrl.decision_for(node_id).plan
            assert ap.registration(node_id).channel.low_hz >= 40.0

    def test_eviction_drops_the_registration(self):
        ap, _ = self._ap(sdm_channels=2)
        ap.register_node(0, 60.0, bearing_rad=0.0)
        ap.register_node(1, 30.0)  # no bearing: evicted under sweep
        victims = ap.mark_interference(0.0, 100.0)
        assert victims == [0, 1]
        assert ap.registered_nodes == [0]
        assert 1 not in ap.tma_assignments
