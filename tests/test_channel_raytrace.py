"""Tests for the image-method ray tracer."""

import math

import numpy as np
import pytest

from repro.channel.raytrace import trace_paths
from repro.sim.environment import Blocker, Room, Wall, default_lab_room
from repro.sim.geometry import Point, Segment


@pytest.fixture
def square() -> Room:
    return Room.rectangular(4.0, 4.0, reflection_loss_db=7.0)


class TestLosPath:
    def test_present_in_open_room(self, square):
        paths = trace_paths(Point(1, 1), Point(3, 3), square, max_bounces=0)
        assert len(paths) == 1
        assert paths[0].is_los
        assert paths[0].length_m == pytest.approx(math.sqrt(8.0))

    def test_bearings_are_opposite(self, square):
        paths = trace_paths(Point(1, 1), Point(3, 1), square, max_bounces=0)
        los = paths[0]
        assert los.departure_bearing_rad == pytest.approx(0.0)
        assert abs(los.arrival_bearing_rad) == pytest.approx(math.pi)

    def test_interior_wall_blocks_los(self, square):
        square.add_wall(Wall(Segment(Point(2, 0.5), Point(2, 3.5))))
        paths = trace_paths(Point(1, 2), Point(3, 2), square, max_bounces=0)
        assert paths == []

    def test_non_occluding_wall_does_not_block(self, square):
        square.add_wall(Wall(Segment(Point(2, 0.5), Point(2, 3.5)),
                             occludes=False))
        paths = trace_paths(Point(1, 2), Point(3, 2), square, max_bounces=0)
        assert len(paths) == 1

    def test_blocker_adds_loss_not_removal(self, square):
        square.add_blocker(Blocker(Point(2, 2), penetration_loss_db=27.5))
        paths = trace_paths(Point(1, 2), Point(3, 2), square, max_bounces=0)
        assert len(paths) == 1
        assert paths[0].excess_loss_db == pytest.approx(27.5)


class TestFirstOrderReflections:
    def test_four_walls_give_reflections(self, square):
        paths = trace_paths(Point(1, 2), Point(3, 2), square, max_bounces=1)
        reflections = [p for p in paths if p.num_bounces == 1]
        assert len(reflections) == 4

    def test_reflection_geometry_symmetric_case(self, square):
        # tx and rx symmetric about x=2; bounce off the south wall (y=0)
        # must land at (2, 0) with equal leg lengths.
        paths = trace_paths(Point(1, 1), Point(3, 1), square, max_bounces=1)
        south = [p for p in paths
                 if p.num_bounces == 1 and p.vertices[1].y == pytest.approx(0.0)]
        assert len(south) == 1
        bounce = south[0].vertices[1]
        assert bounce.x == pytest.approx(2.0)
        assert south[0].length_m == pytest.approx(2 * math.hypot(1, 1))

    def test_reflection_obeys_specular_law(self, square):
        paths = trace_paths(Point(0.5, 1.0), Point(3.5, 2.0), square,
                            max_bounces=1)
        for p in paths:
            if p.num_bounces != 1:
                continue
            bounce = p.vertices[1]
            # Unfolded length equals distance to the image — already
            # guaranteed by construction; verify length consistency.
            legs = (math.hypot(bounce.x - 0.5, bounce.y - 1.0)
                    + math.hypot(3.5 - bounce.x, 2.0 - bounce.y))
            assert p.length_m == pytest.approx(legs)

    def test_reflection_loss_charged(self, square):
        paths = trace_paths(Point(1, 2), Point(3, 2), square, max_bounces=1)
        for p in paths:
            if p.num_bounces == 1:
                assert p.excess_loss_db == pytest.approx(7.0)

    def test_paths_sorted_strongest_first(self, square):
        paths = trace_paths(Point(1, 2), Point(3, 2), square, max_bounces=1)
        assert paths[0].is_los


class TestSecondOrderReflections:
    def test_second_order_present(self, square):
        paths = trace_paths(Point(1, 1.5), Point(3, 2.5), square,
                            max_bounces=2, max_excess_loss_db=100.0)
        double = [p for p in paths if p.num_bounces == 2]
        assert len(double) >= 2
        for p in double:
            assert p.excess_loss_db >= 14.0  # two bounces at 7 dB

    def test_pruning_by_excess_loss(self, square):
        generous = trace_paths(Point(1, 1.5), Point(3, 2.5), square,
                               max_bounces=2, max_excess_loss_db=100.0)
        strict = trace_paths(Point(1, 1.5), Point(3, 2.5), square,
                             max_bounces=2, max_excess_loss_db=10.0)
        assert len(strict) < len(generous)

    def test_invalid_bounces(self, square):
        with pytest.raises(ValueError):
            trace_paths(Point(1, 1), Point(2, 2), square, max_bounces=-1)


class TestEmergentNlosBand:
    def test_nlos_excess_lands_in_paper_band(self):
        """End-to-end NLoS vs LoS gap should fall in the 10-20 dB band.

        Section 6.1: NLoS paths typically see 10-20 dB more attenuation
        than LoS.  Our per-bounce material loss is ~7 dB; the extra
        spreading loss of the longer path plus the bounce must compose
        to roughly the paper's band for typical placements.
        """
        room = default_lab_room(furniture=False)
        rng = np.random.default_rng(3)
        gaps = []
        for _ in range(60):
            tx = room.random_interior_point(rng, 0.5)
            rx = room.random_interior_point(rng, 0.5)
            if (tx - rx).norm() < 1.5:
                continue
            paths = trace_paths(tx, rx, room, max_bounces=1)
            los = [p for p in paths if p.is_los]
            refl = [p for p in paths if p.num_bounces == 1]
            if not los or not refl:
                continue
            best = min(refl, key=lambda p: p.excess_loss_db
                       + 20 * math.log10(p.length_m))
            gap = (best.excess_loss_db + 20 * math.log10(best.length_m)
                   - 20 * math.log10(los[0].length_m))
            gaps.append(gap)
        median_gap = float(np.median(gaps))
        assert 8.0 <= median_gap <= 20.0
