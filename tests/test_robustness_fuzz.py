"""Robustness/fuzz tests: hostile inputs must fail loudly, never wrongly.

A networking library meets malformed frames, truncated captures and
garbage bits constantly.  These tests check the failure *containment*
contracts: the packet codec either returns the exact payload or raises
``PacketError`` (never silently corrupt data), the demodulator never
crashes on arbitrary sample streams, and the geometry/trace code
survives degenerate rooms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.packet import Packet, PacketCodec, PacketError
from repro.channel.raytrace import trace_paths
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)
from repro.faults.processes import (
    InterfererProcess,
    NodeDropoutProcess,
    PersistentBlockerProcess,
    StuckBeamProcess,
    TransientBlockerProcess,
    VcoDriftProcess,
)
from repro.network.tma import TimeModulatedArray
from repro.phy.waveform import Waveform
from repro.resilience import ChaosSimulation, LinkHealthMonitor
from repro.sim.environment import Blocker, Room, Wall
from repro.sim.geometry import Point, Segment

CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


class TestPacketCodecContainment:
    """CRC must catch corruption: correct payload or PacketError."""

    @given(st.binary(min_size=1, max_size=64),
           st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=8),
           st.booleans())
    @settings(max_examples=60)
    def test_corruption_never_yields_wrong_payload(self, payload,
                                                   flip_seeds, use_fec):
        codec = PacketCodec(use_fec=use_fec)
        frame = codec.encode(Packet(payload=payload, sequence=1))
        corrupted = frame.copy()
        for seed in flip_seeds:
            corrupted[seed % corrupted.size] ^= 1
        try:
            decoded = codec.decode(corrupted)
        except PacketError:
            return  # loud failure is the desired outcome
        # If it decodes, it must decode *correctly* (FEC repaired it, or
        # the flips cancelled).  A wrong payload with a passing CRC would
        # need a 2^-16 collision AND consistent framing; the Hamming path
        # additionally corrects <=1 flip per codeword.
        assert decoded.payload == payload

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
    @settings(max_examples=60)
    def test_random_bits_never_crash_decoder(self, bits):
        codec = PacketCodec()
        try:
            packet = codec.decode(np.asarray(bits, dtype=np.uint8))
        except PacketError:
            return
        assert isinstance(packet.payload, bytes)

    def test_truncations_all_fail_loudly(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"truncate me", sequence=0))
        for cut in range(codec.preamble.size + 1, frame.size - 1, 7):
            with pytest.raises(PacketError):
                codec.decode(frame[:cut])


class TestDemodulatorContainment:
    """Arbitrary captures produce a result object, never an exception."""

    @given(st.integers(min_value=0, max_value=257),
           st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=30)
    def test_noise_capture_survives(self, n, scale):
        rng = np.random.default_rng(n)
        samples = scale * (rng.standard_normal(n)
                           + 1j * rng.standard_normal(n))
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(samples, CONFIG.sample_rate_hz))
        assert result.branch in ("ask", "fsk", "none")
        assert result.bits.size <= max(n // CONFIG.samples_per_bit, 0)

    def test_all_zero_capture(self):
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(np.zeros(800, dtype=complex), CONFIG.sample_rate_hz))
        assert result.bits.size == 100
        assert not result.preamble_found

    def test_constant_dc_capture(self):
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(np.full(800, 0.5 + 0.0j), CONFIG.sample_rate_hz))
        assert result.branch in ("ask", "fsk")

    def test_inf_free_output_for_huge_values(self):
        samples = np.full(800, 1e12 + 1e12j)
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(samples, CONFIG.sample_rate_hz))
        assert result.bits.size == 100


class TestGeometryContainment:
    def test_degenerate_room_single_wall(self):
        room = Room(walls=[Wall(Segment(Point(0, 0), Point(4, 0)))],
                    width_m=4.0, length_m=4.0)
        paths = trace_paths(Point(1, 1), Point(3, 1), room, max_bounces=2)
        assert len(paths) >= 1  # LoS always there

    def test_node_on_top_of_blocker(self):
        room = Room.rectangular(4.0, 4.0)
        room.add_blocker(Blocker(Point(1.0, 1.0), radius_m=0.3))
        paths = trace_paths(Point(1.0, 1.0), Point(3.0, 3.0), room)
        # The blocker covers the transmitter: every path pays its loss,
        # but tracing still succeeds.
        assert paths
        assert all(p.excess_loss_db > 0 for p in paths)

    def test_colocated_endpoints(self):
        room = Room.rectangular(4.0, 4.0)
        paths = trace_paths(Point(2.0, 2.0), Point(2.0, 2.0), room)
        assert isinstance(paths, list)

    def test_endpoint_on_wall(self):
        room = Room.rectangular(4.0, 4.0)
        paths = trace_paths(Point(0.0, 2.0), Point(2.0, 2.0), room)
        assert isinstance(paths, list)


@st.composite
def fault_events(draw):
    """One arbitrary-but-valid fault event."""
    kind = draw(st.sampled_from(
        ("blockage", "vco_drift", "stuck_beam", "dropout",
         "side_channel_outage", "interference")))
    start = draw(st.floats(min_value=0.0, max_value=25.0))
    duration = draw(st.floats(min_value=0.05, max_value=12.0))
    if kind == "stuck_beam":
        severity = float(draw(st.sampled_from((0.0, 1.0))))
    elif kind == "vco_drift":
        severity = draw(st.floats(min_value=1.0, max_value=3e6))
    elif kind == "interference":
        severity = draw(st.floats(min_value=-95.0, max_value=-40.0))
    elif kind == "blockage":
        severity = draw(st.floats(min_value=0.0, max_value=45.0))
    else:
        severity = 1.0
    channel = (draw(st.integers(min_value=0, max_value=3))
               if kind == "interference" else None)
    return FaultEvent(kind=kind, start_s=start, duration_s=duration,
                      severity=severity, channel_index=channel)


# Processes whose recovery never waits on the side channel: with the
# control link up, an adaptive re-init succeeds as fast as the static
# tight-loop retry, so the supervisor can only gain.  (A side-channel
# outage can leave the adaptive policy sleeping in backoff for a moment
# after the static loop already reconnected — excluded here, covered
# with fixed seeds in benchmarks/test_chaos_recovery.py.)
@st.composite
def side_channel_safe_processes(draw):
    processes = []
    if draw(st.booleans()):
        processes.append(TransientBlockerProcess(
            rate_per_minute=draw(st.floats(min_value=2.0, max_value=20.0))))
    if draw(st.booleans()):
        processes.append(PersistentBlockerProcess(
            start_s=draw(st.floats(min_value=0.0, max_value=5.0)),
            duration_s=draw(st.floats(min_value=0.5, max_value=6.0)),
            loss_db=draw(st.floats(min_value=10.0, max_value=40.0))))
    if draw(st.booleans()):
        processes.append(VcoDriftProcess(
            start_s=draw(st.floats(min_value=0.0, max_value=5.0)),
            duration_s=draw(st.floats(min_value=0.5, max_value=6.0)),
            peak_offset_hz=draw(st.floats(min_value=1e4, max_value=2e6))))
    if draw(st.booleans()):
        processes.append(StuckBeamProcess(
            start_s=draw(st.floats(min_value=0.0, max_value=5.0)),
            duration_s=draw(st.floats(min_value=0.5, max_value=6.0)),
            beam=draw(st.sampled_from((0, 1)))))
    if draw(st.booleans()):
        processes.append(NodeDropoutProcess(
            rate_per_minute=draw(st.floats(min_value=1.0, max_value=10.0))))
    if draw(st.booleans()):
        processes.append(InterfererProcess(
            start_s=draw(st.floats(min_value=0.0, max_value=5.0)),
            duration_s=draw(st.floats(min_value=0.5, max_value=6.0)),
            power_dbm=draw(st.floats(min_value=-80.0, max_value=-50.0)),
            channel_index=0))
    if not processes:
        processes.append(PersistentBlockerProcess(start_s=1.0,
                                                  duration_s=3.0))
    return processes


_CHAOS_LINK = []


def _chaos_link():
    """One ray-traced link, shared across examples (tracing is slow)."""
    if not _CHAOS_LINK:
        from repro.experiments.chaos import _facing_link
        _CHAOS_LINK.append(_facing_link(4.0))
    return _CHAOS_LINK[0]


class TestFaultScheduleProperties:
    """The injector and disturbance composition never misbehave."""

    @given(st.lists(fault_events(), min_size=0, max_size=10),
           st.floats(min_value=-1.0, max_value=40.0),
           st.one_of(st.none(), st.integers(min_value=0, max_value=3)))
    @settings(max_examples=60)
    def test_composition_never_crashes(self, events, t, channel):
        schedule = FaultSchedule(events, duration_s=40.0)
        d = schedule.disturbance_at(t, channel)
        assert d.beam1_extra_loss_db >= 0.0
        assert d.beam0_extra_loss_db >= 0.0
        assert d.beam0_extra_loss_db <= d.beam1_extra_loss_db + 1e-9
        assert d.stuck_beam in (None, 0, 1)
        # Composition is a pure function of (time, channel).
        assert d == schedule.disturbance_at(t, channel)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.floats(min_value=1.0, max_value=30.0))
    @settings(max_examples=25)
    def test_injector_deterministic_from_master_seed(self, seed, duration):
        processes = [TransientBlockerProcess(), NodeDropoutProcess(
            rate_per_minute=4.0)]
        a = FaultInjector(processes, master_seed=seed).schedule(duration)
        b = FaultInjector(processes, master_seed=seed).schedule(duration)
        assert a.events == b.events

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15)
    def test_appending_a_process_preserves_earlier_streams(self, seed):
        base = [TransientBlockerProcess()]
        extended = base + [InterfererProcess()]
        a = FaultInjector(base, master_seed=seed).schedule(20.0)
        b = FaultInjector(extended, master_seed=seed).schedule(20.0)
        blockages = [e for e in b.events if e.kind == "blockage"]
        assert tuple(blockages) == a.events

    @given(st.lists(fault_events(), min_size=0, max_size=10),
           st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_availability_and_mttr_within_bounds(self, events, step):
        schedule = FaultSchedule(events, duration_s=30.0)
        monitor = LinkHealthMonitor()
        clean_snr = 25.0
        for t in np.arange(0.0, 30.0, step):
            d = schedule.disturbance_at(float(t), 0)
            snr = (float("-inf") if d.node_down
                   else clean_snr - d.beam1_extra_loss_db)
            monitor.observe(float(t), snr)
        report = monitor.report()
        assert 0.0 <= report.availability <= 1.0
        assert 0.0 <= report.degraded_fraction <= 1.0
        assert report.mttr_s >= 0.0
        assert report.outage_count >= 0

    @given(st.lists(fault_events(), min_size=0, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_recovery_actions_idempotent(self, events):
        """Re-observing an already-handled state fires no new actions."""
        from repro.core.link import perturb_breakdown
        from repro.resilience import LinkSupervisor

        link = _chaos_link()
        clean = link.snr_breakdown()
        schedule = FaultSchedule(events, duration_s=30.0)
        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        t = 0.0
        for _ in range(40):
            d = schedule.disturbance_at(t, 0)
            b = perturb_breakdown(clean, d, link.config)
            supervisor.step(t, b, node_down=d.node_down,
                            side_channel_up=d.side_channel_up)
            t += 0.25
        # Hold the link clean and let it settle: after the recovery
        # ladder has fully stepped back up, further clean observations
        # must be action-free (no flapping).
        for _ in range(200):
            supervisor.step(t, clean, node_down=False, side_channel_up=True)
            t += 0.25
        settled = len(supervisor.actions)
        for _ in range(50):
            decision = supervisor.step(t, clean, node_down=False,
                                       side_channel_up=True)
            assert decision.actions == ()
            t += 0.25
        assert len(supervisor.actions) == settled

    @given(side_channel_safe_processes(),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_adaptive_never_worse_than_static(self, processes, seed):
        """Same fault schedule, same seed: the recovery ladder can only
        help (the static configuration is always in its search space)."""
        injector = FaultInjector(processes, master_seed=seed)
        sim = ChaosSimulation(_chaos_link(), injector, time_step_s=0.25)
        result = sim.run(10.0)
        assert (result.adaptive_delivery_ratio
                >= result.static_delivery_ratio - 1e-9)


class TestTmaLinearity:
    @given(st.floats(min_value=-1.2, max_value=1.2),
           st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=20)
    def test_process_is_linear_in_amplitude(self, theta, scale):
        tma = TimeModulatedArray(4, 24.125e9, 50e6, samples_per_period=16)
        fs = 50e6 * 16
        x = np.ones(64, dtype=complex)
        y1 = tma.process(x, fs, theta)
        y2 = tma.process(scale * x, fs, theta)
        assert np.allclose(y2, scale * y1)

    @given(st.floats(min_value=-1.2, max_value=1.2))
    @settings(max_examples=20)
    def test_superposition(self, theta):
        tma = TimeModulatedArray(4, 24.125e9, 50e6, samples_per_period=16)
        fs = 50e6 * 16
        a = np.exp(1j * np.linspace(0, 3, 64))
        b = np.exp(-1j * np.linspace(0, 5, 64))
        combined = tma.process(a + b, fs, theta)
        separate = tma.process(a, fs, theta) + tma.process(b, fs, theta)
        assert np.allclose(combined, separate)
