"""Robustness/fuzz tests: hostile inputs must fail loudly, never wrongly.

A networking library meets malformed frames, truncated captures and
garbage bits constantly.  These tests check the failure *containment*
contracts: the packet codec either returns the exact payload or raises
``PacketError`` (never silently corrupt data), the demodulator never
crashes on arbitrary sample streams, and the geometry/trace code
survives degenerate rooms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.packet import Packet, PacketCodec, PacketError
from repro.channel.raytrace import trace_paths
from repro.network.tma import TimeModulatedArray
from repro.phy.waveform import Waveform
from repro.sim.environment import Blocker, Room, Wall
from repro.sim.geometry import Point, Segment

CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


class TestPacketCodecContainment:
    """CRC must catch corruption: correct payload or PacketError."""

    @given(st.binary(min_size=1, max_size=64),
           st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=8),
           st.booleans())
    @settings(max_examples=60)
    def test_corruption_never_yields_wrong_payload(self, payload,
                                                   flip_seeds, use_fec):
        codec = PacketCodec(use_fec=use_fec)
        frame = codec.encode(Packet(payload=payload, sequence=1))
        corrupted = frame.copy()
        for seed in flip_seeds:
            corrupted[seed % corrupted.size] ^= 1
        try:
            decoded = codec.decode(corrupted)
        except PacketError:
            return  # loud failure is the desired outcome
        # If it decodes, it must decode *correctly* (FEC repaired it, or
        # the flips cancelled).  A wrong payload with a passing CRC would
        # need a 2^-16 collision AND consistent framing; the Hamming path
        # additionally corrects <=1 flip per codeword.
        assert decoded.payload == payload

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
    @settings(max_examples=60)
    def test_random_bits_never_crash_decoder(self, bits):
        codec = PacketCodec()
        try:
            packet = codec.decode(np.asarray(bits, dtype=np.uint8))
        except PacketError:
            return
        assert isinstance(packet.payload, bytes)

    def test_truncations_all_fail_loudly(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"truncate me", sequence=0))
        for cut in range(codec.preamble.size + 1, frame.size - 1, 7):
            with pytest.raises(PacketError):
                codec.decode(frame[:cut])


class TestDemodulatorContainment:
    """Arbitrary captures produce a result object, never an exception."""

    @given(st.integers(min_value=0, max_value=257),
           st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=30)
    def test_noise_capture_survives(self, n, scale):
        rng = np.random.default_rng(n)
        samples = scale * (rng.standard_normal(n)
                           + 1j * rng.standard_normal(n))
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(samples, CONFIG.sample_rate_hz))
        assert result.branch in ("ask", "fsk", "none")
        assert result.bits.size <= max(n // CONFIG.samples_per_bit, 0)

    def test_all_zero_capture(self):
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(np.zeros(800, dtype=complex), CONFIG.sample_rate_hz))
        assert result.bits.size == 100
        assert not result.preamble_found

    def test_constant_dc_capture(self):
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(np.full(800, 0.5 + 0.0j), CONFIG.sample_rate_hz))
        assert result.branch in ("ask", "fsk")

    def test_inf_free_output_for_huge_values(self):
        samples = np.full(800, 1e12 + 1e12j)
        result = JointDemodulator(CONFIG).demodulate(
            Waveform(samples, CONFIG.sample_rate_hz))
        assert result.bits.size == 100


class TestGeometryContainment:
    def test_degenerate_room_single_wall(self):
        room = Room(walls=[Wall(Segment(Point(0, 0), Point(4, 0)))],
                    width_m=4.0, length_m=4.0)
        paths = trace_paths(Point(1, 1), Point(3, 1), room, max_bounces=2)
        assert len(paths) >= 1  # LoS always there

    def test_node_on_top_of_blocker(self):
        room = Room.rectangular(4.0, 4.0)
        room.add_blocker(Blocker(Point(1.0, 1.0), radius_m=0.3))
        paths = trace_paths(Point(1.0, 1.0), Point(3.0, 3.0), room)
        # The blocker covers the transmitter: every path pays its loss,
        # but tracing still succeeds.
        assert paths
        assert all(p.excess_loss_db > 0 for p in paths)

    def test_colocated_endpoints(self):
        room = Room.rectangular(4.0, 4.0)
        paths = trace_paths(Point(2.0, 2.0), Point(2.0, 2.0), room)
        assert isinstance(paths, list)

    def test_endpoint_on_wall(self):
        room = Room.rectangular(4.0, 4.0)
        paths = trace_paths(Point(0.0, 2.0), Point(2.0, 2.0), room)
        assert isinstance(paths, list)


class TestTmaLinearity:
    @given(st.floats(min_value=-1.2, max_value=1.2),
           st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=20)
    def test_process_is_linear_in_amplitude(self, theta, scale):
        tma = TimeModulatedArray(4, 24.125e9, 50e6, samples_per_period=16)
        fs = 50e6 * 16
        x = np.ones(64, dtype=complex)
        y1 = tma.process(x, fs, theta)
        y2 = tma.process(scale * x, fs, theta)
        assert np.allclose(y2, scale * y1)

    @given(st.floats(min_value=-1.2, max_value=1.2))
    @settings(max_examples=20)
    def test_superposition(self, theta):
        tma = TimeModulatedArray(4, 24.125e9, 50e6, samples_per_period=16)
        fs = 50e6 * 16
        a = np.exp(1j * np.linspace(0, 3, 64))
        b = np.exp(-1j * np.linspace(0, 5, 64))
        combined = tma.process(a + b, fs, theta)
        separate = tma.process(a, fs, theta) + tma.process(b, fs, theta)
        assert np.allclose(combined, separate)
