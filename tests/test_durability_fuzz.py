"""Hypothesis fuzz: arbitrary journal damage never yields a wrong merge.

Satellite of the durability PR: flip or truncate bytes anywhere in a
campaign journal — v1 (shard records only) or v2 — and the system must
*salvage or quarantine*, never silently merge damaged data:

* the scanner classifies every line without raising;
* every shard the store still returns is byte-identical to the clean
  run's shard (hash verification makes a wrong-but-plausible record
  unrepresentable under single-site damage);
* ``repro fsck --repair`` leaves a journal that scans clean, and a
  campaign resumed from it reproduces the uncorrupted results exactly;
* an unusable header fails loudly (``StoreError`` / fsck FATAL), never
  partially.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import fsck_path, scan_journal_text
from repro.engine import CampaignPlan, run_campaign
from repro.engine.store import ResultStore, StoreError

MASTER_SEED = 23
NUM_TRIALS = 6
NUM_SHARDS = 3


def trial(seed: int, index: int) -> dict:
    return {"v": index * 7}


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Clean v1/v2 journal bytes plus the clean per-shard truth."""
    root = tmp_path_factory.mktemp("fuzz-corpus")
    path = root / "clean.jsonl"
    store = ResultStore(path)
    clean = run_campaign(trial, NUM_TRIALS, master_seed=MASTER_SEED,
                         num_shards=NUM_SHARDS, store=store)
    v2 = path.read_bytes()
    # A v1 journal is the same layout with the old header version and
    # shard records only (which this journal already is).
    v1 = v2.replace(b'"version":2', b'"version":1', 1)
    plan = CampaignPlan.build(master_seed=MASTER_SEED,
                              num_trials=NUM_TRIALS,
                              num_shards=NUM_SHARDS)
    truth = ResultStore(path).load_or_create(plan)
    return {"v1": v1, "v2": v2, "plan": plan, "truth": truth,
            "clean_results": clean.results,
            "dir": tmp_path_factory.mktemp("fuzz-work")}


def damage(data: bytes, kind: str, position: int, bit: int) -> bytes:
    """One deterministic corruption of the journal bytes."""
    position %= len(data)
    if kind == "truncate":
        return data[:position]
    mutated = bytearray(data)
    mutated[position] ^= 1 << bit
    return bytes(mutated)


def assert_no_wrong_merge(path, corpus) -> None:
    """Whatever loads must equal the clean truth, shard for shard."""
    store = ResultStore(path)
    try:
        loaded = store.load_or_create(corpus["plan"])
    except StoreError:
        return  # loud rejection is always allowed
    for shard_id, result in loaded.items():
        assert result.trials == corpus["truth"][shard_id].trials, \
            f"shard {shard_id} silently diverged"


class TestJournalFuzz:
    @given(version=st.sampled_from(["v1", "v2"]),
           kind=st.sampled_from(["flip", "truncate"]),
           position=st.integers(min_value=0, max_value=10_000),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=120, deadline=None)
    def test_salvage_or_quarantine_never_wrong(
            self, corpus, version, kind, position, bit):
        mutated = damage(corpus[version], kind, position, bit)
        if not mutated:
            return  # an empty file is "no journal", not damage

        # 1. The scanner classifies arbitrary damage without raising.
        try:
            text = mutated.decode("utf-8")
        except UnicodeDecodeError:
            text = None
        if text is not None:
            scan = scan_journal_text(text)
            assert (len(scan.records) + len(scan.corrupt)
                    + (1 if scan.torn_tail else 0)
                    <= mutated.count(b"\n") + 1)

        path = corpus["dir"] / f"{version}.jsonl"
        path.write_bytes(mutated)

        # 2. Whatever the store still resumes is the clean truth.
        assert_no_wrong_merge(path, corpus)

        # 3. Repair converges: afterwards the journal is clean or the
        #    file was declared unusable — and a resumed campaign
        #    reproduces the uncorrupted results byte for byte.
        report = fsck_path(path, repair=True)
        if report.fatal is not None:
            return
        assert fsck_path(path).exit_code == 0, \
            "repair did not converge to a clean journal"
        assert_no_wrong_merge(path, corpus)
        try:
            resumed = run_campaign(trial, NUM_TRIALS,
                                   master_seed=MASTER_SEED,
                                   num_shards=NUM_SHARDS,
                                   store=ResultStore(path))
        except StoreError:
            # Damage landed in the (unhashed) header — e.g. inside the
            # fingerprint — so the journal reads as a *different*
            # campaign and resume refuses loudly.  Allowed: loud, never
            # wrong.
            return
        assert resumed.results == corpus["clean_results"]

    @given(position=st.integers(min_value=0, max_value=10_000),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_repair_is_idempotent(self, corpus, position, bit):
        mutated = damage(corpus["v2"], "flip", position, bit)
        path = corpus["dir"] / "idem.jsonl"
        path.write_bytes(mutated)
        first = fsck_path(path, repair=True)
        if first.fatal is not None:
            return
        after_once = path.read_bytes()
        second = fsck_path(path, repair=True)
        assert second.exit_code == 0
        assert path.read_bytes() == after_once
