"""Tests for the reliable transport: RTO, framing, ARQ, breaker, MAC."""

import numpy as np
import pytest

from repro.transport import (
    AdaptiveRetransmission,
    CircuitBreaker,
    CircuitOpenError,
    FrameError,
    MAX_SEQ,
    MAX_WINDOW,
    ReliableLink,
    RtoEstimator,
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
    TransportFrame,
    seq_distance,
)


class TestRtoEstimator:
    def test_first_sample_anchors_rfc6298(self):
        est = RtoEstimator()
        rto = est.observe(0.1)
        # SRTT = R, RTTVAR = R/2, RTO = SRTT + 4*RTTVAR = 3R.
        assert est.srtt_s == pytest.approx(0.1)
        assert est.rttvar_s == pytest.approx(0.05)
        assert rto == pytest.approx(0.3)

    def test_steady_samples_shrink_variance(self):
        est = RtoEstimator(min_rto_s=1e-4)
        for _ in range(200):
            est.observe(0.05)
        # With zero jitter the variance decays toward 0 and the RTO
        # converges down onto the RTT itself (clamped at min).
        assert est.rttvar_s < 1e-3
        assert est.rto_s < 0.06

    def test_timeout_doubles_and_clamps(self):
        est = RtoEstimator(initial_rto_s=0.2, max_rto_s=1.0)
        assert est.on_timeout() == pytest.approx(0.4)
        assert est.on_timeout() == pytest.approx(0.8)
        assert est.on_timeout() == pytest.approx(1.0)
        assert est.timeouts == 3

    def test_reset_keeps_rto_forgets_history(self):
        est = RtoEstimator()
        est.observe(0.1)
        rto_before = est.rto_s
        est.reset()
        assert est.srtt_s is None
        assert est.rttvar_s is None
        assert est.rto_s == rto_before

    def test_validation(self):
        with pytest.raises(ValueError):
            RtoEstimator(initial_rto_s=0.0)
        with pytest.raises(ValueError):
            RtoEstimator(min_rto_s=2.0, max_rto_s=1.0)
        with pytest.raises(ValueError):
            RtoEstimator().observe(-0.1)


class TestFraming:
    def test_data_round_trip(self):
        frame = TransportFrame.data_frame(42, b"hello mmx")
        decoded = TransportFrame.decode(frame.encode())
        assert decoded == frame

    def test_ack_round_trip_with_sack(self):
        frame = TransportFrame.ack_frame(100, sack_bitmap=0b101)
        decoded = TransportFrame.decode(frame.encode())
        assert decoded == frame
        assert decoded.sacked_sequences() == (101, 103)

    def test_sack_wraps_sequence_space(self):
        frame = TransportFrame.ack_frame(MAX_SEQ - 1, sack_bitmap=0b1)
        assert frame.sacked_sequences() == (0,)

    def test_corruption_detected(self):
        blob = bytearray(TransportFrame.data_frame(7, b"payload").encode())
        blob[10] ^= 0xFF
        with pytest.raises(FrameError):
            TransportFrame.decode(bytes(blob))

    def test_truncation_detected(self):
        blob = TransportFrame.data_frame(7, b"payload").encode()
        with pytest.raises(FrameError):
            TransportFrame.decode(blob[:-3])

    def test_invalid_frames_rejected(self):
        with pytest.raises(ValueError):
            TransportFrame(kind="nack", sequence=0)
        with pytest.raises(ValueError):
            TransportFrame(kind="data", sequence=MAX_SEQ)
        with pytest.raises(ValueError):
            TransportFrame(kind="data", sequence=0, sack_bitmap=1)
        with pytest.raises(ValueError):
            TransportFrame(kind="ack", sequence=0, payload=b"x")

    def test_seq_distance_wraps(self):
        assert seq_distance(5, 3) == 2
        assert seq_distance(1, MAX_SEQ - 1) == 2
        assert seq_distance(0, 0) == 0


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        for t in range(2):
            breaker.record_failure(float(t))
            assert breaker.state == "closed"
        breaker.record_failure(2.0)
        assert breaker.state == "open"
        assert not breaker.allow(2.5)
        assert breaker.seconds_until_retry(2.5) == pytest.approx(0.5)

    def test_half_open_probe_and_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)          # probe admitted
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.allow(1.2)
        breaker.record_failure(1.2)        # probe failed: reopen at once
        assert breaker.state == "open"
        assert not breaker.allow(1.5)
        assert breaker.stats()["trips"] == 2

    def test_success_clears_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success()
        breaker.record_failure(0.2)
        assert breaker.state == "closed"


class TestSelectiveRepeat:
    def test_lossless_in_order(self):
        payloads = [bytes([i]) * 10 for i in range(40)]
        stats = ReliableLink(loss_probability=0.0,
                             rng=np.random.default_rng(0)
                             ).transfer(payloads)
        assert stats.delivered == 40
        assert stats.in_order
        assert stats.retransmissions == 0

    def test_lossy_link_still_delivers_everything(self):
        payloads = [bytes([i % 256]) * 32 for i in range(60)]
        stats = ReliableLink(loss_probability=0.3,
                             rng=np.random.default_rng(1)
                             ).transfer(payloads)
        assert stats.delivery_ratio == 1.0
        assert stats.in_order
        assert stats.retransmissions > 0

    def test_receiver_reorders(self):
        rx = SelectiveRepeatReceiver(window=8)
        f0 = TransportFrame.data_frame(0, b"a")
        f1 = TransportFrame.data_frame(1, b"b")
        f2 = TransportFrame.data_frame(2, b"c")
        ack = rx.on_data(f2)           # out of order: buffered
        assert ack.sequence == (0 - 1) % MAX_SEQ
        assert 2 in ack.sacked_sequences()
        rx.on_data(f0)
        ack = rx.on_data(f1)           # gap filled: cumulative jumps
        assert ack.sequence == 2
        assert rx.take_delivered() == [b"a", b"b", b"c"]

    def test_duplicate_counted_not_redelivered(self):
        rx = SelectiveRepeatReceiver(window=8)
        frame = TransportFrame.data_frame(0, b"x")
        rx.on_data(frame)
        rx.on_data(frame)
        assert rx.duplicates == 1
        assert rx.take_delivered() == [b"x"]

    def test_sender_gives_up_after_cap(self):
        sender = SelectiveRepeatSender(
            window=4, max_transmissions=3,
            rto=RtoEstimator(initial_rto_s=0.1, min_rto_s=0.01))
        sender.offer(b"doomed")
        now = 0.0
        for _ in range(20):
            sender.poll(now)
            now += 5.0                 # every deadline long passed
            if sender.done:
                break
        assert sender.gave_up == [0]
        assert sender.done

    def test_window_never_exceeded(self):
        sender = SelectiveRepeatSender(window=4)
        for i in range(100):
            sender.offer(bytes([i]))
        sent = sender.poll(0.0)
        assert len(sent) == 4
        assert sender.in_flight == 4

    def test_window_bounds(self):
        with pytest.raises(ValueError):
            SelectiveRepeatSender(window=MAX_WINDOW + 1)
        with pytest.raises(ValueError):
            SelectiveRepeatReceiver(window=0)


class TestAdaptiveUplink:
    def test_policy_costs(self):
        policy = AdaptiveRetransmission(
            estimator=RtoEstimator(initial_rto_s=0.02, min_rto_s=1e-4))
        ok = policy.attempt_cost_s(0.001, success=True, first_attempt=True)
        assert ok == pytest.approx(0.001)
        assert policy.estimator.samples == 1
        fail = policy.attempt_cost_s(0.001, success=False,
                                     first_attempt=False)
        # Failure pays airtime plus the current RTO, then backs off.
        assert fail > 0.001
        assert policy.estimator.timeouts == 1

    def test_karn_rule_respected(self):
        policy = AdaptiveRetransmission()
        policy.attempt_cost_s(0.001, success=True, first_attempt=False)
        assert policy.estimator.samples == 0

    def test_adaptive_uplink_runs_and_converges(self):
        from repro.network.mac import UplinkSimulator

        sim = UplinkSimulator(
            link_rate_bps=10e6, frame_bits=8192,
            frame_success_probability=0.9,
            rng=np.random.default_rng(3),
            transport=AdaptiveRetransmission())
        stats = sim.run(duration_s=2.0, packet_interval_s=0.01)
        assert stats.delivery_ratio > 0.8
        # The estimator learned the link's service time.
        assert sim.transport.estimator.samples > 0
        assert sim.transport.estimator.srtt_s == pytest.approx(
            sim.frame_airtime_s, rel=0.01)

    def test_seed_default_path_unchanged(self):
        from repro.network.mac import UplinkSimulator

        fixed = UplinkSimulator(
            link_rate_bps=10e6, frame_bits=8192,
            frame_success_probability=1.0,
            rng=np.random.default_rng(0))
        stats = fixed.run(duration_s=1.0, packet_interval_s=0.01)
        assert stats.delivery_ratio == 1.0
        assert stats.retransmissions == 0


class TestBreakerInInitProtocol:
    def _protocol(self, delivery_ratio, breaker, seed=0):
        from repro.network.init_protocol import (InitializationProtocol,
                                                 SideChannel)
        from repro.node.access_point import MmxAccessPoint

        channel = SideChannel(delivery_ratio=delivery_ratio,
                              rng=np.random.default_rng(seed))
        return InitializationProtocol(MmxAccessPoint(),
                                      side_channel=channel,
                                      breaker=breaker)

    def test_dead_channel_trips_then_fails_fast(self):
        from repro.node.node import MmxNode

        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
        proto = self._protocol(delivery_ratio=1e-9, breaker=breaker)
        with pytest.raises(CircuitOpenError):
            proto.initialize(MmxNode(node_id=0), 1e6)
        assert breaker.state == "open"
        # Second node fails fast: rejected before any channel allocation.
        with pytest.raises(CircuitOpenError):
            proto.initialize(MmxNode(node_id=1), 1e6)
        assert breaker.stats()["rejected_calls"] == 1
        assert proto.access_point.registered_nodes == []

    def test_healthy_channel_unaffected(self):
        from repro.node.node import MmxNode

        breaker = CircuitBreaker(failure_threshold=3)
        proto = self._protocol(delivery_ratio=1.0, breaker=breaker)
        record = proto.initialize(MmxNode(node_id=0), 1e6)
        assert record.attempts == 1
        assert breaker.state == "closed"
