"""Tests for rooms, walls and blockers."""

import numpy as np
import pytest

from repro.constants import EVAL_ROOM_LENGTH_M, EVAL_ROOM_WIDTH_M
from repro.sim.environment import Blocker, Room, Wall, default_lab_room
from repro.sim.geometry import Point, Segment


class TestWall:
    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            Wall(Segment(Point(0, 0), Point(1, 0)), reflection_loss_db=-1.0)

    def test_occludes_default_true(self):
        wall = Wall(Segment(Point(0, 0), Point(1, 0)))
        assert wall.occludes


class TestBlocker:
    def test_occlusion(self):
        person = Blocker(Point(1.0, 1.0), radius_m=0.25)
        assert person.occludes(Segment(Point(0, 1), Point(2, 1)))
        assert not person.occludes(Segment(Point(0, 2), Point(2, 2)))

    def test_moved_to_preserves_loss(self):
        person = Blocker(Point(0, 0), penetration_loss_db=30.0)
        moved = person.moved_to(Point(1, 1))
        assert moved.penetration_loss_db == 30.0
        assert (moved.position.x, moved.position.y) == (1.0, 1.0)

    def test_default_loss_in_blocked_band(self):
        # Composed 20-35 dB band of section 6.1.
        assert 20.0 <= Blocker(Point(0, 0)).penetration_loss_db <= 35.0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Blocker(Point(0, 0), radius_m=0.0)


class TestRoom:
    def test_rectangular_has_four_walls(self):
        room = Room.rectangular(4.0, 6.0)
        assert len(room.walls) == 4
        names = {w.name for w in room.walls}
        assert names == {"north", "south", "east", "west"}

    def test_contains(self):
        room = Room.rectangular(4.0, 6.0)
        assert room.contains(Point(2, 3))
        assert not room.contains(Point(5, 3))
        assert not room.contains(Point(2, 3), margin=10.0)

    def test_blockage_loss_accumulates(self):
        room = Room.rectangular(4.0, 6.0)
        leg = Segment(Point(0.5, 3), Point(3.5, 3))
        room.add_blocker(Blocker(Point(1.5, 3), penetration_loss_db=25.0))
        room.add_blocker(Blocker(Point(2.5, 3), penetration_loss_db=30.0))
        assert room.blockage_loss_db(leg) == pytest.approx(55.0)

    def test_clear_blockers(self):
        room = Room.rectangular()
        room.add_blocker(Blocker(Point(2, 3)))
        room.clear_blockers()
        assert room.blockers == []

    def test_random_interior_point_respects_margin(self, rng):
        room = Room.rectangular(4.0, 6.0)
        for _ in range(50):
            p = room.random_interior_point(rng, margin=0.5)
            assert room.contains(p, margin=0.5 - 1e-9)

    def test_margin_too_large(self, rng):
        room = Room.rectangular(1.0, 1.0)
        with pytest.raises(ValueError):
            room.random_interior_point(rng, margin=0.6)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Room.rectangular(0.0, 6.0)


class TestDefaultLabRoom:
    def test_dimensions_match_paper(self):
        room = default_lab_room()
        assert room.width_m == EVAL_ROOM_WIDTH_M
        assert room.length_m == EVAL_ROOM_LENGTH_M

    def test_furniture_present_by_default(self):
        room = default_lab_room()
        assert len(room.walls) > 4

    def test_furniture_does_not_occlude(self):
        room = default_lab_room()
        for wall in room.walls[4:]:
            assert not wall.occludes

    def test_bare_room_option(self):
        assert len(default_lab_room(furniture=False).walls) == 4

    def test_rng_draws_material_loss(self):
        room = default_lab_room(rng=np.random.default_rng(0))
        assert 5.0 <= room.walls[0].reflection_loss_db <= 10.0

    def test_explicit_loss_respected(self):
        room = default_lab_room(reflection_loss_db=9.0)
        assert room.walls[0].reflection_loss_db == 9.0
