"""repro.energy: node classes, backscatter, battery invariants, dormancy.

The two module-level invariants of ``repro.energy.battery`` (energy is
never negative; harvest/consume conservation holds at every step) are
property-tested with hypothesis here, alongside the differential test
pinning the backscatter receive path against the closed-form ASK bound
at high SNR, and the end-to-end dormancy semantics: a sleeping fleet
must never look like a dead AP.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    NODE_ACTIVE,
    NODE_DORMANT,
    NODE_SILENT,
    Cluster,
    NodeLivenessTracker,
)
from repro.core.link import bistatic_breakdown
from repro.energy import (
    ACTIVE_CLASS,
    BACKSCATTER_CLASS,
    ENERGY_STATES,
    HARVESTING_CLASS,
    BackscatterLink,
    CarrierScheduler,
    DutyCycleScheduler,
    EnergyStateMachine,
    EnergyStore,
    HarvestModel,
    NodeClassSpec,
    node_class,
    rectified_power_w,
    register_node_class,
    registered_classes,
)
from repro.hardware.chains import NodeHardware
from repro.hardware.power import PowerStateProfile, active_node_profile
from repro.node import MmxAccessPoint
from repro.phy.ber import ber_ask_table
from repro.phy.preamble import default_preamble_bits


def _burst(rng, payload_bits):
    """A realistic burst: the known preamble, then random payload."""
    return np.concatenate([
        default_preamble_bits(),
        rng.integers(0, 2, size=payload_bits, dtype=np.uint8)])


class TestNodeClassRegistry:
    def test_builtins_registered_in_order(self):
        names = registered_classes()
        assert names[:3] == (ACTIVE_CLASS, BACKSCATTER_CLASS,
                             HARVESTING_CLASS)

    def test_active_class_is_the_paper_prototype_unchanged(self):
        """Table 1's cells must be reproduced, not re-specified."""
        hw = NodeHardware()
        spec = node_class(ACTIVE_CLASS)
        assert spec.cost_usd == hw.total_cost_usd
        assert spec.active_power_w == pytest.approx(hw.total_power_w)
        assert spec.bitrate_bps == hw.max_bitrate_bps
        assert spec.energy_per_bit_j == pytest.approx(
            hw.total_power_w / hw.max_bitrate_bps)
        assert spec.duty_model == "always-on"
        assert spec.generates_carrier
        assert not spec.needs_illumination

    def test_backscatter_class_capabilities(self):
        spec = node_class(BACKSCATTER_CLASS)
        assert spec.is_passive
        assert spec.needs_illumination
        assert spec.modulation == "backscatter-ask"
        assert spec.active_power_w < 1e-3  # microwatts, not watts

    def test_capability_coherence_enforced(self):
        with pytest.raises(ValueError, match="AP carrier"):
            NodeClassSpec(name="bad-tag", power_source="passive",
                          carrier_source="self",
                          modulation="backscatter-ask",
                          duty_model="illuminated", cost_usd=1.0,
                          power=PowerStateProfile(1e-6, 1e-6, 1e-6, 1e-6),
                          bitrate_bps=1e6, tx_power_dbm=0.0, range_m=1.0)
        with pytest.raises(ValueError, match="unknown duty model"):
            NodeClassSpec(name="bad-duty", power_source="mains",
                          carrier_source="self", modulation="ask-fsk",
                          duty_model="sometimes", cost_usd=1.0,
                          power=PowerStateProfile(1.0, 0.5, 0.2, 0.1),
                          bitrate_bps=1e6, tx_power_dbm=0.0, range_m=1.0)

    def test_silent_redefinition_refused(self):
        spec = node_class(ACTIVE_CLASS)
        with pytest.raises(ValueError, match="already registered"):
            register_node_class(spec)
        # Explicit replacement with the identical spec is a no-op.
        register_node_class(spec, replace=True)
        assert node_class(ACTIVE_CLASS) is spec

    def test_unknown_class_names_the_registry(self):
        with pytest.raises(KeyError, match="mmx-active"):
            node_class("mmx-nonexistent")


class TestActiveNodeProfile:
    def test_aggregate_figures_preserved(self):
        """The per-state split must not move the Table-1 aggregate."""
        hw = NodeHardware()
        profile = active_node_profile(hw)
        assert profile.tx_w == pytest.approx(hw.total_power_w)
        assert profile.tx_w >= profile.rx_w >= profile.idle_w \
            >= profile.sleep_w

    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="tx >= rx"):
            PowerStateProfile(tx_w=0.1, rx_w=0.5, idle_w=0.01,
                              sleep_w=0.001)

    def test_mean_power_is_duty_weighted(self):
        p = PowerStateProfile(tx_w=1.0, rx_w=0.5, idle_w=0.2, sleep_w=0.1)
        mean = p.mean_power_w({"tx": 0.25, "sleep": 0.75})
        assert mean == pytest.approx(0.25 * 1.0 + 0.75 * 0.1)
        with pytest.raises(ValueError, match="sum to 1"):
            p.mean_power_w({"tx": 0.5})


class TestBistaticBudget:
    def test_levels_fall_with_distance(self):
        near = bistatic_breakdown(downlink_m=0.5)
        far = bistatic_breakdown(downlink_m=2.0)
        # Two trips: each doubling of distance costs ~12 dB round trip.
        assert near.on_level_dbm - far.on_level_dbm == pytest.approx(
            4 * 20 * np.log10(2.0), abs=0.1)
        assert near.ask_snr_db > far.ask_snr_db

    def test_reflection_contrast_orders_levels(self):
        bd = bistatic_breakdown(downlink_m=1.0)
        assert bd.on_level_dbm > bd.off_level_dbm
        assert bd.ask_contrast_db > 0.0
        assert bd.carrier_at_tag_dbm > bd.on_level_dbm

    def test_perfect_absorber_off_state(self):
        bd = bistatic_breakdown(downlink_m=1.0, gamma_off=0.0)
        assert bd.off_level_dbm == float("-inf")

    def test_gamma_ordering_validated(self):
        with pytest.raises(ValueError):
            bistatic_breakdown(downlink_m=1.0, gamma_on=0.1,
                               gamma_off=0.8)

    def test_ber_rides_the_ask_table(self):
        bd = bistatic_breakdown(downlink_m=1.5)
        assert bd.ber() == pytest.approx(
            float(ber_ask_table(bd.ask_snr_db)))


class TestBackscatterLink:
    def test_high_snr_ber_pins_the_closed_form(self, rng):
        """Differential test: measured BER vs the analytic ASK bound.

        At short range the closed form predicts an astronomically
        clean link; the sample-level envelope/Goertzel path must agree
        (zero errors over thousands of bits — a single error would
        already be >10 orders above the bound).
        """
        link = BackscatterLink(downlink_m=0.5)
        assert link.breakdown().ber() < 1e-12
        report = link.simulate_transmission(_burst(rng, 4000), rng=rng)
        assert report.ber == 0.0

    def test_decodes_through_the_ask_branch(self, rng):
        """Both bits ride one tone, so only the ASK branch can decide."""
        link = BackscatterLink(downlink_m=0.5)
        report = link.simulate_transmission(_burst(rng, 256), rng=rng)
        assert report.demod.branch == "ask"

    def test_excess_loss_degrades_the_link(self, rng):
        link = BackscatterLink(downlink_m=1.0)
        clean = link.breakdown()
        taxed = link.breakdown(excess_loss_db=15.0)
        assert taxed.ask_snr_db < clean.ask_snr_db
        report = link.simulate_transmission(_burst(rng, 400), rng=rng,
                                            excess_loss_db=60.0)
        assert report.ber > 0.1

    def test_rejects_non_backscatter_class(self):
        with pytest.raises(ValueError, match="not a backscatter"):
            BackscatterLink(spec=node_class(ACTIVE_CLASS))


class TestHarvestModel:
    def test_rectifier_never_exceeds_incident(self):
        for incident in (0.0, 1e-6, 8e-5, 5e-4, 1e-2):
            out = rectified_power_w(incident, saturation_w=1e-3,
                                    steepness_per_w=3e4, midpoint_w=8e-5)
            assert 0.0 <= out <= incident

    def test_rectifier_is_monotone_and_saturates(self):
        levels = [rectified_power_w(p, saturation_w=1e-3,
                                    steepness_per_w=3e4, midpoint_w=8e-5)
                  for p in np.linspace(0.0, 5e-3, 50)]
        assert all(b >= a - 1e-18 for a, b in zip(levels, levels[1:]))
        assert levels[-1] <= 1e-3

    def test_dark_rectenna_harvests_nothing(self):
        assert rectified_power_w(0.0, saturation_w=1e-3,
                                 steepness_per_w=3e4,
                                 midpoint_w=8e-5) == 0.0

    def test_series_is_seed_deterministic(self):
        model = HarvestModel()
        a = model.harvest_series(1.0, 64, np.random.default_rng(3))
        b = model.harvest_series(1.0, 64, np.random.default_rng(3))
        assert np.array_equal(a, b)
        c = model.harvest_series(1.0, 64, np.random.default_rng(4))
        assert not np.array_equal(a, c)

    def test_harvest_falls_with_range(self):
        model = HarvestModel(shadowing_sigma_db=0.0)
        assert model.harvested_power_w(0.5) > model.harvested_power_w(2.0)


class TestEnergyStore:
    @given(st.lists(st.tuples(st.floats(0.0, 2.0), st.floats(0.0, 2.0)),
                    min_size=1, max_size=64))
    @settings(max_examples=60)
    def test_never_negative_and_conserving(self, flows):
        store = EnergyStore(capacity_j=1.0, initial_j=0.25)
        for deposit, withdraw in flows:
            store.deposit(deposit)
            store.withdraw(withdraw)
            assert 0.0 <= store.level_j <= store.capacity_j
            assert abs(store.conservation_error_j) < 1e-9

    def test_overdraft_impossible(self):
        store = EnergyStore(capacity_j=1.0, initial_j=0.1)
        assert store.withdraw(5.0) == pytest.approx(0.1)
        assert store.level_j == 0.0

    def test_spill_accounted(self):
        store = EnergyStore(capacity_j=1.0, initial_j=0.9)
        stored = store.deposit(0.5)
        assert stored == pytest.approx(0.1)
        assert store.spilled_j == pytest.approx(0.4)
        assert abs(store.conservation_error_j) < 1e-12

    def test_negative_flows_rejected(self):
        store = EnergyStore(capacity_j=1.0)
        with pytest.raises(ValueError):
            store.deposit(-0.1)
        with pytest.raises(ValueError):
            store.withdraw(-0.1)


def _machine(initial_j=0.0, wake_j=0.4, reserve_j=0.05,
             frame_energy_j=0.02, capacity_j=1.0):
    store = EnergyStore(capacity_j=capacity_j, initial_j=initial_j)
    profile = PowerStateProfile(tx_w=0.2, rx_w=0.05, idle_w=0.02,
                                sleep_w=0.001)
    return EnergyStateMachine(store, profile, wake_threshold_j=wake_j,
                              reserve_j=reserve_j,
                              frame_energy_j=frame_energy_j,
                              frames_per_step=4)


class TestEnergyStateMachine:
    @given(st.lists(st.tuples(st.floats(0.0, 0.5), st.integers(0, 6)),
                    min_size=1, max_size=80))
    @settings(max_examples=60)
    def test_energy_invariants_hold_every_step(self, trace):
        machine = _machine()
        for harvest_w, pending in trace:
            outcome = machine.step(1.0, harvest_w, pending)
            assert machine.store.level_j >= 0.0
            assert abs(machine.store.conservation_error_j) < 1e-9
            assert outcome.state in ENERGY_STATES
            assert outcome.level_j == pytest.approx(
                machine.store.level_j)

    def test_trajectory_is_seed_deterministic(self):
        def run(seed):
            rng = np.random.default_rng(seed)
            series = HarvestModel().harvest_series(1.0, 50, rng)
            machine = _machine()
            return [machine.step(1.0, float(w), 2) for w in series]

        a, b, c = run(11), run(11), run(12)
        assert a == b
        assert a != c

    def test_walks_the_duty_cycle(self):
        machine = _machine()
        assert machine.state == "charge"
        assert machine.dormant
        # Charge until the wake threshold, then boot, then transmit.
        seen = [machine.step(1.0, 0.1, pending_frames=3).state
                for _ in range(8)]
        assert seen[0] == "charge"
        assert "wake" in seen
        assert "transmit" in seen
        assert seen.index("wake") < seen.index("transmit")

    def test_brownout_drops_back_to_charge(self):
        machine = _machine(initial_j=0.45)
        states = [machine.step(1.0, 0.0, pending_frames=10).state
                  for _ in range(12)]
        assert "transmit" in states
        assert machine.state == "charge"
        assert machine.store.level_j >= 0.0

    def test_duty_cycle_counts_transmit_steps(self):
        machine = _machine(initial_j=1.0)
        for _ in range(4):
            machine.step(1.0, 0.0, pending_frames=1)
        assert machine.duty_cycle() == pytest.approx(
            machine.state_steps["transmit"] / 4)

    def test_hysteresis_rails_validated(self):
        store = EnergyStore(capacity_j=1.0)
        profile = PowerStateProfile(tx_w=0.2, rx_w=0.05, idle_w=0.02,
                                    sleep_w=0.001)
        with pytest.raises(ValueError):
            EnergyStateMachine(store, profile, wake_threshold_j=0.1,
                               reserve_j=0.2)
        with pytest.raises(ValueError):
            EnergyStateMachine(store, profile, wake_threshold_j=2.0)


class TestDutyCycleScheduler:
    def test_dormant_defers_instead_of_dropping(self):
        scheduler = DutyCycleScheduler(_machine(),
                                       frame_success_probability=1.0)
        rng = np.random.default_rng(0)
        scheduler.offer(5)
        for _ in range(3):  # zero harvest: stays dormant
            scheduler.step(1.0, 0.0, rng)
        stats = scheduler.stats()
        assert stats.dormant_steps == 3
        assert stats.pending == 5
        assert stats.dropped == 0
        assert stats.delivered == 0

    def test_energized_node_delivers_everything(self):
        scheduler = DutyCycleScheduler(_machine(initial_j=1.0),
                                       frame_success_probability=1.0)
        rng = np.random.default_rng(0)
        scheduler.offer(4)
        for _ in range(6):
            scheduler.step(1.0, 0.2, rng)
        stats = scheduler.stats()
        assert stats.delivered == 4
        assert stats.delivery_ratio == 1.0

    def test_retry_budget_then_drop(self):
        scheduler = DutyCycleScheduler(_machine(initial_j=1.0),
                                       frame_success_probability=0.0,
                                       max_retries=2)
        rng = np.random.default_rng(0)
        scheduler.offer(1)
        for _ in range(10):
            scheduler.step(1.0, 0.2, rng)
        stats = scheduler.stats()
        assert stats.retries == 2
        assert stats.dropped == 1
        assert stats.delivered == 0


class TestCarrierScheduler:
    def test_reserve_release_roundtrip(self):
        carrier = CarrierScheduler(airtime_capacity=0.5)
        assert carrier.reserve(1, 0.2)
        assert carrier.reserve(2, 0.3)
        assert not carrier.reserve(3, 0.01)  # budget exhausted
        assert 3 not in carrier
        carrier.release(1)
        assert carrier.free_airtime == pytest.approx(0.2)
        assert carrier.reserve(3, 0.2)

    def test_double_grant_and_unknown_release_raise(self):
        carrier = CarrierScheduler()
        carrier.reserve(1, 0.1)
        with pytest.raises(ValueError, match="already holds"):
            carrier.reserve(1, 0.1)
        with pytest.raises(KeyError):
            carrier.release(99)

    def test_long_churn_does_not_leak_airtime(self):
        carrier = CarrierScheduler(airtime_capacity=1.0)
        for i in range(2000):
            assert carrier.reserve(i, 0.1)
            carrier.release(i)
        assert carrier.granted_airtime == 0.0
        assert carrier.free_airtime == 1.0


class TestBackscatterAdmission:
    def test_tag_consumes_carrier_airtime_not_just_spectrum(self):
        from repro.admission import AdmissionController
        from repro.network.fdm import FdmAllocator

        carrier = CarrierScheduler(airtime_capacity=0.5)
        controller = AdmissionController(
            allocator=FdmAllocator(), carrier=carrier)
        before = controller.allocator.allocated_bandwidth_hz
        assert controller.admit(1, 1e6,
                                illumination_duty=0.4).admitted
        assert carrier.granted_airtime == pytest.approx(0.4)
        # Plenty of spectrum left, but the illumination budget blocks —
        # and the freshly won channel must be unwound.
        decision = controller.admit(2, 1e6, illumination_duty=0.4)
        assert decision.state == "blocked"
        assert 2 not in carrier
        controller.release(1)
        assert carrier.granted_airtime == 0.0
        assert controller.allocator.allocated_bandwidth_hz == before

    def test_illumination_needs_a_scheduler(self):
        from repro.admission import AdmissionController

        with pytest.raises(ValueError, match="CarrierScheduler"):
            AdmissionController().admit(1, 1e6, illumination_duty=0.2)

    def test_ap_standalone_tag_registration_unwinds_on_airtime_miss(self):
        from repro.network.fdm import SpectrumExhausted

        ap = MmxAccessPoint(carrier=CarrierScheduler(airtime_capacity=0.3))
        ap.register_backscatter_node(1, illumination_duty=0.3)
        free_hz = ap.allocator.free_bandwidth_hz
        with pytest.raises(SpectrumExhausted):
            ap.register_backscatter_node(2, illumination_duty=0.1)
        assert ap.allocator.free_bandwidth_hz == free_hz
        ap.deregister_node(1)
        assert ap.carrier.granted_airtime == 0.0


class TestDormantSupervision:
    def _clean_breakdown(self):
        from repro.experiments.chaos import _facing_link

        return _facing_link(3.0).snr_breakdown()

    def test_dormant_holds_the_ladder(self):
        from repro.resilience import DORMANT, LinkSupervisor

        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        clean = self._clean_breakdown()
        supervisor.step(0.0, clean)
        d1 = supervisor.step(1.0, clean, dormant=True)
        d2 = supervisor.step(2.0, clean, dormant=True)
        assert d1.state == DORMANT
        assert d2.state == DORMANT
        holds = [a for a in supervisor.actions
                 if a.policy == "dormant-hold"]
        assert len(holds) == 1  # logged once per sleep, not per step
        woke = supervisor.step(3.0, clean)
        assert woke.state != DORMANT
        assert any(a.policy == "dormant-wake"
                   for a in supervisor.actions)

    def test_node_down_wins_over_dormant(self):
        from repro.resilience import DORMANT, LinkSupervisor

        supervisor = LinkSupervisor(rng=np.random.default_rng(0))
        decision = supervisor.step(0.0, self._clean_breakdown(),
                                   node_down=True, dormant=True)
        assert decision.state != DORMANT


class TestNodeLivenessTracker:
    def test_reason_codes(self):
        tracker = NodeLivenessTracker(interval_s=1.0, miss_threshold=3)
        tracker.watch(7, now_s=0.0)
        assert tracker.classify(7, now_s=1.0) == NODE_ACTIVE
        assert tracker.classify(7, now_s=10.0) == NODE_SILENT
        tracker.mark_dormant(7)
        assert tracker.classify(7, now_s=10.0) == NODE_DORMANT
        tracker.heard(7, now_s=11.0)
        assert tracker.classify(7, now_s=11.5) == NODE_ACTIVE

    def test_sleeping_fleet_does_not_trigger_failover(self):
        """Satellite regression: dormant ≠ dead at the cluster layer.

        Every node on AP 0 goes energy-dormant.  Their silence must be
        *explained* silence — zero failovers, zero migrations, the AP
        stays primary no matter how long the fleet sleeps.
        """
        liveness = NodeLivenessTracker(interval_s=0.5, miss_threshold=3)
        cluster = Cluster([MmxAccessPoint(), MmxAccessPoint()],
                          liveness=liveness, silence_failover=True)
        for node_id in range(4):
            cluster.register_node(node_id, 1e6, preference=[0, 1],
                                  now_s=0.0)
        for node_id in range(4):
            cluster.node_dormant(node_id)
        for step in range(1, 200):
            cluster.step(step * 0.5)
        assert cluster.silence_failovers == 0
        assert cluster.stats()["silence_failovers"] == 0
        assert 0 in cluster.alive_ap_ids()

    def test_unexplained_silence_does_trigger_failover(self):
        """The converse gate: truly silent fleets still fail over."""
        liveness = NodeLivenessTracker(interval_s=0.5, miss_threshold=3)
        cluster = Cluster([MmxAccessPoint(), MmxAccessPoint()],
                          liveness=liveness, silence_failover=True)
        for node_id in range(4):
            cluster.register_node(node_id, 1e6, preference=[0, 1],
                                  now_s=0.0)
        migrated = {}
        # Run exactly through the detection window (interval × misses
        # = 1.5 s): the still-silent survivors would take down the
        # standby AP too on later steps, by design.
        for step in range(1, 4):
            migrated.update(cluster.step(step * 0.5))
        assert cluster.silence_failovers == 1
        assert 0 not in cluster.alive_ap_ids()
        assert len(migrated.get(0, [])) == 4

    def test_silence_failover_requires_liveness(self):
        with pytest.raises(ValueError, match="liveness"):
            Cluster([MmxAccessPoint()], silence_failover=True)


class TestEnergyCampaigns:
    def test_compare_is_deterministic_and_extends_table1(self):
        from repro.energy import compare

        cfg = compare.default_config(replicates=2, num_bits=128)
        a = compare.run_compare(cfg, master_seed=5)
        b = compare.run_compare(cfg, master_seed=5)
        assert a.rows() == b.rows()
        rows = {r["node_class"]: r for r in a.rows()}
        active = rows["mmx-active"]
        tag = rows["mmx-backscatter"]
        assert tag["cost_usd"] < active["cost_usd"] / 10
        assert tag["active_power_w"] < active["active_power_w"] / 1e3
        assert active["duty_cycle"] == 1.0
        assert 0.0 < tag["duty_cycle"] < 1.0

    def test_outage_recovers_without_false_positives(self):
        from repro.energy import outage

        cfg = outage.OutageConfig(nodes=3, replicates=1,
                                  duration_s=60.0, outage_start_s=15.0,
                                  outage_duration_s=15.0)
        result = outage.run_outage(cfg, master_seed=5)
        summary = result.summary()
        assert summary["silence_failovers"] == 0
        assert summary["orphaned_nodes"] == 0
        assert summary["dormant_holds"] >= 1
        assert summary["dormant_wakes"] >= 1
