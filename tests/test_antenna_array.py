"""Tests for repro.antenna.array: array factors and ULAs."""

import numpy as np
import pytest

from repro.antenna.array import UniformLinearArray, array_factor
from repro.antenna.element import IsotropicElement
from repro.units import wavelength

FREQ = 24.125e9


class TestArrayFactor:
    def test_broadside_sum(self):
        # In-phase elements add coherently at broadside.
        af = array_factor(0.0, [1.0, 1.0, 1.0, 1.0], 0.005, FREQ)
        assert abs(af) == pytest.approx(4.0)

    def test_antiphase_null_at_broadside(self):
        af = array_factor(0.0, [1.0, -1.0], 0.005, FREQ)
        assert abs(af) < 1e-12

    def test_two_element_null_position(self):
        # d = lambda: null where sin(theta) = 1/2, i.e. 30 degrees.
        lam = float(wavelength(FREQ))
        af = array_factor(np.radians(30.0), [1.0, 1.0], lam, FREQ)
        assert abs(af) < 1e-9

    def test_two_element_antiphase_peak_at_30(self):
        lam = float(wavelength(FREQ))
        af = array_factor(np.radians(30.0), [1.0, -1.0], lam, FREQ)
        assert abs(af) == pytest.approx(2.0, abs=1e-9)

    def test_vectorised_shape(self):
        theta = np.linspace(-1, 1, 11)
        out = array_factor(theta, [1, 1], 0.005, FREQ)
        assert out.shape == (11,)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            array_factor(0.0, [], 0.005, FREQ)

    def test_bad_spacing_rejected(self):
        with pytest.raises(ValueError):
            array_factor(0.0, [1, 1], 0.0, FREQ)


class TestUniformLinearArray:
    def _ula(self, weights=None, n=2):
        lam = float(wavelength(FREQ))
        return UniformLinearArray(IsotropicElement(), n, lam, FREQ,
                                  weights=weights)

    def test_normalised_peak_is_one(self):
        ula = self._ula()
        grid = np.linspace(-np.pi, np.pi, 3601)
        assert float(np.max(ula.field(grid))) == pytest.approx(1.0, abs=1e-6)

    def test_power_db_zero_at_peak(self):
        ula = self._ula()
        grid = np.linspace(-np.pi, np.pi, 3601)
        assert float(np.max(ula.power_db(grid))) == pytest.approx(0.0, abs=1e-4)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            self._ula(weights=[1.0, 1.0, 1.0])

    def test_steering_moves_peak(self):
        lam = float(wavelength(FREQ))
        ula = UniformLinearArray(IsotropicElement(), 8, lam / 2, FREQ)
        steered = ula.steered(np.radians(25.0))
        grid = np.linspace(-np.pi / 2, np.pi / 2, 1801)
        peak = np.degrees(grid[int(np.argmax(steered.field(grid)))])
        assert peak == pytest.approx(25.0, abs=1.5)

    def test_more_elements_narrower_beam(self):
        lam = float(wavelength(FREQ))
        small = UniformLinearArray(IsotropicElement(), 4, lam / 2, FREQ)
        large = UniformLinearArray(IsotropicElement(), 16, lam / 2, FREQ)
        theta = np.radians(10.0)
        assert float(large.power_db(theta)) < float(small.power_db(theta))

    def test_invalid_element_count(self):
        with pytest.raises(ValueError):
            UniformLinearArray(IsotropicElement(), 0, 0.005, FREQ)
