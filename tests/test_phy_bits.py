"""Tests for repro.phy.bits."""

import numpy as np
import pytest

from repro.phy import bits as B


class TestAsBitArray:
    def test_accepts_list(self):
        out = B.as_bit_array([1, 0, 1])
        assert out.dtype == np.uint8
        assert list(out) == [1, 0, 1]

    def test_accepts_string(self):
        assert list(B.as_bit_array("1011")) == [1, 0, 1, 1]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            B.as_bit_array([0, 1, 2])

    def test_empty(self):
        assert B.as_bit_array([]).size == 0


class TestBytesBits:
    def test_roundtrip(self):
        data = b"mmX over the air"
        assert B.bits_to_bytes(B.bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert list(B.bytes_to_bits(b"\x80")) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_empty_bytes(self):
        assert B.bytes_to_bits(b"").size == 0

    def test_bits_to_bytes_requires_multiple_of_8(self):
        with pytest.raises(ValueError):
            B.bits_to_bytes([1, 0, 1])


class TestErrors:
    def test_no_errors(self):
        assert B.bit_errors([1, 0, 1], [1, 0, 1]) == 0

    def test_counts_errors(self):
        assert B.bit_errors([1, 0, 1, 1], [0, 0, 1, 0]) == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            B.bit_errors([1, 0], [1])

    def test_ber(self):
        assert B.bit_error_rate([1, 1, 1, 1], [1, 1, 0, 0]) == pytest.approx(0.5)

    def test_ber_empty_is_zero(self):
        assert B.bit_error_rate([], []) == 0.0


class TestRandomBits:
    def test_length(self, rng):
        assert B.random_bits(100, rng).size == 100

    def test_binary(self, rng):
        out = B.random_bits(1000, rng)
        assert set(np.unique(out)) <= {0, 1}

    def test_roughly_balanced(self, rng):
        out = B.random_bits(10_000, rng)
        assert 0.45 < out.mean() < 0.55

    def test_deterministic_per_seed(self):
        a = B.random_bits(64, np.random.default_rng(7))
        b = B.random_bits(64, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            B.random_bits(-1)


class TestPackUnpack:
    def test_roundtrip(self):
        for value in (0, 1, 5, 255, 65535):
            width = max(value.bit_length(), 1)
            assert B.unpack_uint(B.pack_uint(value, width)) == value

    def test_msb_first(self):
        assert list(B.pack_uint(1, 4)) == [0, 0, 0, 1]
        assert list(B.pack_uint(8, 4)) == [1, 0, 0, 0]

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            B.pack_uint(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            B.pack_uint(-1, 4)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            B.pack_uint(0, 0)
