"""Tests for the end-to-end OTAM link."""

import math

import numpy as np
import pytest

from repro.core.link import OtamLink
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits
from repro.sim.environment import Blocker
from repro.sim.geometry import Point
from repro.sim.placement import Placement, PlacementSampler


def facing_placement(distance: float = 3.0) -> Placement:
    ap = Point(2.0, 0.15)
    node = Point(2.0, 0.15 + distance)
    return Placement(node_position=node,
                     node_orientation_rad=-math.pi / 2,
                     ap_position=ap,
                     ap_orientation_rad=math.pi / 2)


class TestSnrBreakdown:
    def test_facing_clear_is_strong(self, room):
        link = OtamLink(placement=facing_placement(2.0), room=room)
        bd = link.snr_breakdown()
        assert bd.otam_snr_db > 20.0
        assert not bd.inverted
        assert bd.beam1_level_dbm > bd.beam0_level_dbm

    def test_snr_decreases_with_distance(self, room):
        near = OtamLink(placement=facing_placement(1.5), room=room)
        far = OtamLink(placement=facing_placement(5.0), room=room)
        assert (near.snr_breakdown().otam_snr_db
                > far.snr_breakdown().otam_snr_db)

    def test_blockage_flips_and_degrades(self, room):
        placement = facing_placement(4.0)
        clear = OtamLink(placement=placement, room=room).snr_breakdown()
        room.add_blocker(Blocker(Point(2.0, 2.0), penetration_loss_db=30.0))
        blocked = OtamLink(placement=placement, room=room).snr_breakdown()
        room.clear_blockers()
        assert blocked.no_otam_snr_db < clear.no_otam_snr_db - 10.0
        assert blocked.inverted
        # OTAM survives on the NLoS path: degrades far less than OOK.
        assert (clear.otam_snr_db - blocked.otam_snr_db
                < clear.no_otam_snr_db - blocked.no_otam_snr_db)

    def test_bandwidth_scales_noise(self, room):
        link = OtamLink(placement=facing_placement(3.0), room=room)
        wide = link.snr_breakdown(bandwidth_hz=25e6)
        narrow = link.snr_breakdown(bandwidth_hz=2.5e6)
        assert narrow.otam_snr_db == pytest.approx(wide.otam_snr_db + 10.0,
                                                   abs=0.1)

    def test_implementation_loss_applies(self, room):
        placement = facing_placement(3.0)
        nominal = OtamLink(placement=placement, room=room)
        lossy = OtamLink(placement=placement, room=room,
                         implementation_loss_db=20.0)
        delta = (nominal.snr_breakdown().otam_snr_db
                 - lossy.snr_breakdown().otam_snr_db)
        assert delta == pytest.approx(10.0, abs=0.1)

    def test_ber_predictions_ordered(self, room):
        link = OtamLink(placement=facing_placement(3.0), room=room)
        bd = link.snr_breakdown()
        assert 0.0 <= bd.ber_with_otam() <= 0.5
        assert 0.0 <= bd.ber_without_otam() <= 0.5


class TestSampleLevel:
    def _bits(self, rng, n=128):
        return np.concatenate([default_preamble_bits(), random_bits(n, rng)])

    def test_clean_transmission_zero_ber(self, room, rng):
        link = OtamLink(placement=facing_placement(2.0), room=room)
        report = link.simulate_transmission(self._bits(rng), rng=rng)
        assert report.ber == 0.0
        assert report.num_bits == 128 + 26

    def test_without_otam_also_works_when_facing(self, room, rng):
        link = OtamLink(placement=facing_placement(2.0), room=room)
        report = link.simulate_transmission(self._bits(rng), rng=rng,
                                            use_otam=False)
        assert report.ber == 0.0

    def test_analytic_and_sample_level_agree_on_branch(self, room, rng):
        placement = facing_placement(2.5)
        link = OtamLink(placement=placement, room=room)
        bd = link.snr_breakdown()
        report = link.simulate_transmission(self._bits(rng), rng=rng)
        if bd.ask_snr_db > bd.fsk_snr_db + 6.0:
            assert report.demod.branch == "ask"

    def test_blocked_placement_still_decodes_with_otam(self, room, rng):
        placement = facing_placement(3.0)
        room.add_blocker(Blocker(Point(2.0, 1.5), penetration_loss_db=30.0))
        link = OtamLink(placement=placement, room=room)
        report = link.simulate_transmission(self._bits(rng), rng=rng)
        room.clear_blockers()
        assert report.ber < 0.05

    def test_deterministic_given_seed(self, room):
        placement = facing_placement(3.0)
        link = OtamLink(placement=placement, room=room)
        bits = self._bits(np.random.default_rng(0))
        r1 = link.simulate_transmission(bits, rng=np.random.default_rng(42))
        r2 = link.simulate_transmission(bits, rng=np.random.default_rng(42))
        assert r1.ber == r2.ber

    def test_random_placements_mostly_decode(self, room, rng):
        sampler = PlacementSampler(room, rng)
        failures = 0
        for _ in range(10):
            link = OtamLink(placement=sampler.sample(), room=room)
            report = link.simulate_transmission(self._bits(rng, 64), rng=rng)
            failures += report.ber > 0.01
        assert failures <= 2
