"""Tests for the Time-Modulated Array (paper Eq. 1-4, Fig. 6)."""

import numpy as np
import pytest

from repro.network.tma import TimeModulatedArray, sequential_switching_schedule

FREQ = 24.125e9


@pytest.fixture
def tma() -> TimeModulatedArray:
    return TimeModulatedArray(num_elements=8, frequency_hz=FREQ,
                              switching_rate_hz=50e6)


class TestSchedule:
    def test_one_element_at_a_time(self):
        schedule = sequential_switching_schedule(4, 64)
        # Exactly one element on in every time slot.
        assert np.all(schedule.sum(axis=0) == 1.0)

    def test_equal_duty_cycles(self):
        schedule = sequential_switching_schedule(8, 64)
        assert np.all(schedule.sum(axis=1) == 8)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            sequential_switching_schedule(8, 4)


class TestFourierCoefficients:
    def test_dc_coefficient_is_duty_cycle(self, tma):
        a0 = tma.fourier_coefficients([0])[0]
        assert np.allclose(np.abs(a0), 1.0 / 8.0, atol=1e-12)

    def test_parseval(self, tma):
        # Power of the switching waveform = sum over one DFT period of
        # harmonics (the sampled schedule's coefficients repeat with
        # period samples_per_period).
        k = tma.samples_per_period
        m = np.arange(-k // 2, k // 2)
        coeffs = tma.fourier_coefficients(m)
        power_per_element = np.sum(np.abs(coeffs) ** 2, axis=0)
        # Each w_n is on 1/8 of the time with amplitude 1 -> power 1/8.
        assert np.allclose(power_per_element, 1.0 / 8.0, atol=1e-6)

    def test_progressive_phase_across_elements(self, tma):
        # Harmonic m's coefficients carry a linear phase in n — that is
        # what forms the steered harmonic beams.
        coeffs = tma.fourier_coefficients([1])[0]
        phases = np.unwrap(np.angle(coeffs))
        steps = np.diff(phases)
        assert np.allclose(steps, steps[0], atol=1e-6)


class TestHarmonicBeams:
    def test_broadside_maps_to_dc(self, tma):
        assert tma.dominant_harmonic(0.0) == 0

    def test_directions_map_to_distinct_harmonics(self, tma):
        # Directions aligned with the harmonic beam grid (sin(theta) =
        # 2m/N for half-lambda spacing).
        thetas = [np.arcsin(2 * m / 8) for m in (0, 1, 2)]
        harmonics = [tma.dominant_harmonic(t) for t in thetas]
        assert len(set(harmonics)) == 3

    def test_on_grid_image_suppression_sinc_limit(self, tma):
        # The plain sequential schedule's first image is limited by the
        # sinc envelope: |sinc(pi m/N) / sinc(pi (m-N)/N)|^2 ~ 9.5 dB
        # for m = 2, N = 8.  (He et al. [25] reach the paper's 20-30 dB
        # with optimised switching sequences; the network model uses
        # that cited band for coupling.)
        theta = np.arcsin(2 * 2 / 8)
        assert tma.image_suppression_db(theta) > 8.0

    def test_harmonic_powers_shape(self, tma):
        powers = tma.harmonic_powers_db(0.3, max_harmonic=8)
        assert powers.shape == (17,)

    def test_negative_angle_mirrors_harmonic(self, tma):
        theta = np.arcsin(2 * 1 / 8)
        assert tma.dominant_harmonic(theta) == -tma.dominant_harmonic(-theta)


class TestTimeDomain:
    def test_process_output_has_harmonic_images(self, tma):
        fs = tma.switching_rate_hz * tma.samples_per_period
        n = tma.samples_per_period * 32
        x = np.ones(n, dtype=complex)
        theta = np.arcsin(2 * 2 / 8)
        y = tma.process(x, fs, theta)
        spectrum = np.abs(np.fft.fft(y)) / n
        freqs = np.fft.fftfreq(n, 1 / fs)
        peak_freq = freqs[int(np.argmax(spectrum))]
        expected = tma.dominant_harmonic(theta) * tma.switching_rate_hz
        assert peak_freq == pytest.approx(expected, abs=tma.switching_rate_hz / 2)

    def test_separate_two_cochannel_signals(self, tma):
        fs = tma.switching_rate_hz * tma.samples_per_period
        n = tma.samples_per_period * 64
        thetas = [0.0, float(np.arcsin(0.5))]
        signals = np.ones((2, n), dtype=complex)
        out = tma.separate(signals, fs, thetas)
        spectrum = np.abs(np.fft.fft(out)) / n
        freqs = np.fft.fftfreq(n, 1 / fs)
        # Energy present at both expected harmonics.
        for theta in thetas:
            target = tma.dominant_harmonic(theta) * tma.switching_rate_hz
            bin_idx = int(np.argmin(np.abs(freqs - target)))
            assert spectrum[bin_idx] > 0.05

    def test_sample_rate_too_low(self, tma):
        with pytest.raises(ValueError):
            tma.process(np.ones(64, dtype=complex), 1e6, 0.0)

    def test_mismatched_arrivals(self, tma):
        with pytest.raises(ValueError):
            tma.separate(np.ones((2, 64), dtype=complex), 1e9, [0.0])


class TestValidation:
    def test_needs_two_elements(self):
        with pytest.raises(ValueError):
            TimeModulatedArray(1, FREQ, 50e6)

    def test_needs_positive_rate(self):
        with pytest.raises(ValueError):
            TimeModulatedArray(8, FREQ, 0.0)

    def test_default_half_wavelength_spacing(self, tma):
        lam = 299792458.0 / FREQ
        assert tma.spacing_m == pytest.approx(lam / 2)
