"""Tests for the mmX packet codec."""

import numpy as np
import pytest

from repro.core.packet import MAX_PAYLOAD_BYTES, Packet, PacketCodec, PacketError


class TestPacket:
    def test_payload_too_large(self):
        with pytest.raises(ValueError):
            Packet(payload=b"x" * (MAX_PAYLOAD_BYTES + 1))

    def test_sequence_bounds(self):
        Packet(payload=b"", sequence=255)
        with pytest.raises(ValueError):
            Packet(payload=b"", sequence=256)
        with pytest.raises(ValueError):
            Packet(payload=b"", sequence=-1)


class TestRoundtrip:
    @pytest.mark.parametrize("payload", [b"", b"a", b"hello mmX",
                                         bytes(range(256))])
    def test_clean_roundtrip(self, payload):
        codec = PacketCodec()
        packet = Packet(payload=payload, sequence=7)
        decoded = codec.decode(codec.encode(packet))
        assert decoded.payload == payload
        assert decoded.sequence == 7

    def test_fec_roundtrip(self):
        codec = PacketCodec(use_fec=True)
        packet = Packet(payload=b"forward error correction", sequence=1)
        assert codec.decode(codec.encode(packet)).payload == packet.payload

    def test_fec_corrects_sparse_errors(self, rng):
        codec = PacketCodec(use_fec=True)
        packet = Packet(payload=b"robust bits", sequence=2)
        frame = codec.encode(packet)
        corrupted = frame.copy()
        # One flip per 7-bit codeword, in the body only.
        start = codec.preamble.size
        for i in range(start, corrupted.size - 7, 7):
            corrupted[i] ^= 1
        assert codec.decode(corrupted).payload == packet.payload

    def test_uncoded_flip_fails_crc(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"fragile", sequence=3))
        frame[codec.preamble.size + 30] ^= 1
        with pytest.raises(PacketError):
            codec.decode(frame)


class TestFraming:
    def test_frame_starts_with_preamble(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"x"))
        assert np.array_equal(frame[: codec.preamble.size], codec.preamble)

    def test_frame_length_formula(self):
        codec = PacketCodec()
        for size in (0, 1, 10, 100):
            frame = codec.encode(Packet(payload=b"z" * size))
            assert frame.size == codec.frame_length_bits(size)

    def test_frame_length_formula_with_fec(self):
        codec = PacketCodec(use_fec=True)
        for size in (0, 3, 64):
            frame = codec.encode(Packet(payload=b"z" * size))
            assert frame.size == codec.frame_length_bits(size)

    def test_bad_preamble_rejected(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"y"))
        frame[:5] ^= 1  # 5 of 26 preamble bits flipped
        with pytest.raises(PacketError):
            codec.decode(frame)

    def test_truncated_header(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"hello"))
        with pytest.raises(PacketError):
            codec.decode(frame[: codec.preamble.size + 10])

    def test_truncated_payload(self):
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"hello world"))
        with pytest.raises(PacketError):
            codec.decode(frame[:-20])

    def test_length_field_lies(self):
        # Corrupt the length field upward: decode must fail cleanly,
        # not read out of bounds.
        codec = PacketCodec()
        frame = codec.encode(Packet(payload=b"abc"))
        frame[codec.preamble.size] ^= 1  # MSB of the 16-bit length
        with pytest.raises(PacketError):
            codec.decode(frame)
