"""Tests for mobility models, placement sampling and the MC runner."""

import math

import pytest

from repro.sim.environment import Room
from repro.sim.geometry import Point, Segment
from repro.sim.mobility import (
    LinearCrossing,
    RandomWaypoint,
    WalkingBlocker,
    los_blocker_between,
)
from repro.sim.runner import MonteCarloRunner


class TestRandomWaypoint:
    def test_stays_inside_room(self, rng):
        room = Room.rectangular(4.0, 6.0)
        walker = RandomWaypoint(room, rng)
        for _ in range(200):
            p = walker.step(0.5)
            assert room.contains(p, margin=0.29)

    def test_moves_at_bounded_speed(self, rng):
        room = Room.rectangular(4.0, 6.0)
        walker = RandomWaypoint(room, rng, speed_range_mps=(1.0, 1.0))
        prev = walker.position
        p = walker.step(0.1)
        moved = math.hypot(p.x - prev.x, p.y - prev.y)
        assert moved <= 0.1 + 1e-9

    def test_invalid_speed_range(self, rng):
        with pytest.raises(ValueError):
            RandomWaypoint(Room.rectangular(), rng, speed_range_mps=(2.0, 1.0))

    def test_negative_step_rejected(self, rng):
        walker = RandomWaypoint(Room.rectangular(), rng)
        with pytest.raises(ValueError):
            walker.step(-1.0)


class TestLinearCrossing:
    def test_oscillates_along_path(self):
        crossing = LinearCrossing(Segment(Point(0, 0), Point(2, 0)),
                                  speed_mps=1.0)
        points = [crossing.step(0.5) for _ in range(8)]
        xs = [p.x for p in points]
        assert max(xs) <= 2.0 + 1e-9
        assert min(xs) >= 0.0 - 1e-9
        # There and back: position after a full cycle returns.
        crossing2 = LinearCrossing(Segment(Point(0, 0), Point(2, 0)), 1.0)
        end = None
        for _ in range(8):  # 4 s at 1 m/s over a 2 m path = full cycle
            end = crossing2.step(0.5)
        assert end.x == pytest.approx(0.0, abs=1e-9)

    def test_repeatedly_blocks_crossing_link(self):
        # A walker crossing a link should alternately occlude it.
        crossing = LinearCrossing(Segment(Point(1, 0), Point(1, 2)), 1.0)
        blocker = los_blocker_between(Point(0, 1), Point(2, 1))
        walking = WalkingBlocker(blocker, crossing)
        link = Segment(Point(0, 1), Point(2, 1))
        states = []
        for _ in range(20):
            b = walking.step(0.1)
            states.append(b.occludes(link))
        assert any(states)
        assert not all(states)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            LinearCrossing(Segment(Point(0, 0), Point(1, 0)), 0.0)


class TestLosBlocker:
    def test_blocks_the_los(self):
        node, ap = Point(1, 5), Point(2, 0.15)
        person = los_blocker_between(node, ap, fraction=0.5)
        assert person.occludes(Segment(node, ap))

    def test_fraction_positions(self):
        node, ap = Point(0, 0), Point(4, 0)
        near_node = los_blocker_between(node, ap, fraction=0.1)
        near_ap = los_blocker_between(node, ap, fraction=0.9)
        assert near_node.position.x < near_ap.position.x

    def test_loss_in_composed_band(self, rng):
        person = los_blocker_between(Point(0, 0), Point(4, 0), rng=rng)
        assert 20.0 <= person.penetration_loss_db <= 35.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            los_blocker_between(Point(0, 0), Point(1, 0), fraction=0.0)


class TestPlacementSampler:
    def test_orientation_within_protocol_range(self, sampler):
        for _ in range(100):
            placement = sampler.sample()
            offset = math.degrees(placement.offset_from_ap_rad)
            assert -60.0 - 1e-6 <= offset <= 60.0 + 1e-6

    def test_node_inside_room(self, sampler, room):
        for _ in range(50):
            assert room.contains(sampler.sample().node_position)

    def test_ap_on_room_side(self, sampler, room):
        placement = sampler.sample()
        assert placement.ap_position.y < 0.5
        assert placement.ap_position.x == pytest.approx(room.width_m / 2)

    def test_min_distance_enforced(self, sampler):
        for _ in range(100):
            assert sampler.sample().distance_m >= 0.5

    def test_at_distance_facing(self, sampler):
        placement = sampler.at_distance(3.0, facing=True)
        assert placement.distance_m == pytest.approx(3.0)
        assert placement.offset_from_ap_rad == pytest.approx(0.0, abs=1e-9)

    def test_at_distance_not_facing_is_30deg(self, sampler):
        placement = sampler.at_distance(3.0, facing=False)
        assert abs(math.degrees(placement.offset_from_ap_rad)) == (
            pytest.approx(30.0))

    def test_sample_many(self, sampler):
        assert len(sampler.sample_many(7)) == 7

    def test_invalid_distance(self, sampler):
        with pytest.raises(ValueError):
            sampler.at_distance(0.0)


class TestMonteCarloRunner:
    def test_deterministic_across_runs(self):
        def trial(rng, index):
            return {"value": float(rng.uniform())}

        a = MonteCarloRunner(master_seed=7).run(trial, 10)
        b = MonteCarloRunner(master_seed=7).run(trial, 10)
        assert [r["value"] for r in a] == [r["value"] for r in b]

    def test_trials_independent(self):
        def trial(rng, index):
            return {"value": float(rng.uniform())}

        results = MonteCarloRunner(0).run(trial, 20)
        values = [r["value"] for r in results]
        assert len(set(values)) == 20

    def test_summary_statistics(self):
        def trial(rng, index):
            return {"x": float(index)}

        results = MonteCarloRunner(0).run(trial, 11)
        stats = MonteCarloRunner.summary(results, "x")
        assert stats["mean"] == pytest.approx(5.0)
        assert stats["median"] == pytest.approx(5.0)
        assert stats["min"] == 0.0
        assert stats["max"] == 10.0

    def test_collect(self):
        def trial(rng, index):
            return {"x": index * 2}

        results = MonteCarloRunner(0).run(trial, 3)
        assert list(MonteCarloRunner.collect(results, "x")) == [0, 2, 4]

    def test_non_dict_trial_rejected(self):
        with pytest.raises(TypeError):
            MonteCarloRunner(0).run(lambda rng, i: 42, 1)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner.summary([], "x")
