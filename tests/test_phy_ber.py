"""Tests for repro.phy.ber: closed-form error-rate theory."""

import numpy as np
import pytest

from repro.phy import ber


class TestQFunction:
    def test_q_of_zero_is_half(self):
        assert ber.qfunc(0.0) == pytest.approx(0.5)

    def test_q_is_decreasing(self):
        x = np.linspace(-3, 5, 50)
        q = ber.qfunc(x)
        assert np.all(np.diff(q) < 0)

    def test_known_value(self):
        # Q(1.6449) ~ 0.05
        assert ber.qfunc(1.6449) == pytest.approx(0.05, abs=1e-4)

    def test_inverse_roundtrip(self):
        for p in (0.4, 0.1, 1e-3, 1e-9):
            assert ber.qfunc(ber.qfunc_inv(p)) == pytest.approx(p, rel=1e-9)


class TestBerCurves:
    def test_all_decrease_with_snr(self):
        snr = np.linspace(-5, 25, 40)
        for fn in (ber.ber_ook_coherent, ber.ber_ook_noncoherent,
                   ber.ber_fsk_noncoherent, ber.ber_fsk_coherent,
                   ber.ber_bpsk):
            values = fn(snr)
            assert np.all(np.diff(values) < 0), fn.__name__

    def test_bpsk_best_then_fsk_then_ook(self):
        # At equal average SNR: BPSK < coherent FSK < coherent OOK.
        snr = 10.0
        assert ber.ber_bpsk(snr) < ber.ber_fsk_coherent(snr)
        assert ber.ber_fsk_coherent(snr) < ber.ber_ook_coherent(snr)

    def test_noncoherent_never_beats_coherent_ook(self):
        snr = np.linspace(-10, 30, 60)
        assert np.all(ber.ber_ook_noncoherent(snr) >= ber.ber_ook_coherent(snr) - 1e-15)

    def test_low_snr_limit_half(self):
        assert float(ber.ber_ook_coherent(-40.0)) == pytest.approx(0.5, abs=0.01)
        assert float(ber.ber_fsk_noncoherent(-40.0)) == pytest.approx(0.5, abs=0.01)

    def test_high_snr_vanishes(self):
        assert float(ber.ber_ook_coherent(30.0)) < 1e-100
        assert float(ber.ber_fsk_noncoherent(30.0)) < 1e-100

    def test_paper_operating_point(self):
        # Section 9.4: SNR >= 15 dB gives BER below 1e-8 under the
        # paper's ASK BER table convention.
        assert float(ber.ber_ask_table(15.0)) < 1e-8

    def test_paper_table_decreases(self):
        snr = np.linspace(-5, 25, 40)
        assert np.all(np.diff(ber.ber_ask_table(snr)) < 0)

    def test_paper_table_more_optimistic_than_textbook(self):
        assert ber.ber_ask_table(12.0) < ber.ber_ook_coherent(12.0)


class TestAskCoherent:
    def test_matches_ook_at_full_separation(self):
        snr = np.linspace(0, 20, 10)
        assert np.allclose(ber.ber_ask_coherent(snr),
                           ber.ber_ook_coherent(snr))

    def test_derating_raises_ber(self):
        assert (ber.ber_ask_coherent(10.0, separation_fraction=0.5)
                > ber.ber_ask_coherent(10.0, separation_fraction=1.0))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ber.ber_ask_coherent(10.0, separation_fraction=0.0)
        with pytest.raises(ValueError):
            ber.ber_ask_coherent(10.0, separation_fraction=1.5)


class TestSnrForTargetBer:
    def test_roundtrip_ook(self):
        snr = ber.snr_db_for_target_ber(1e-6, "ook")
        assert float(ber.ber_ook_coherent(snr)) == pytest.approx(1e-6, rel=1e-6)

    def test_roundtrip_fsk(self):
        snr = ber.snr_db_for_target_ber(1e-6, "fsk")
        assert float(ber.ber_fsk_noncoherent(snr)) == pytest.approx(1e-6, rel=1e-6)

    def test_roundtrip_bpsk(self):
        snr = ber.snr_db_for_target_ber(1e-6, "bpsk")
        assert float(ber.ber_bpsk(snr)) == pytest.approx(1e-6, rel=1e-6)

    def test_tighter_target_needs_more_snr(self):
        assert (ber.snr_db_for_target_ber(1e-9, "ook")
                > ber.snr_db_for_target_ber(1e-3, "ook"))

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            ber.snr_db_for_target_ber(0.6)

    def test_unknown_modulation(self):
        with pytest.raises(ValueError):
            ber.snr_db_for_target_ber(1e-3, "qam4096")
