"""Tests for repro.phy.waveform."""

import numpy as np
import pytest

from repro.phy import waveform as W


class TestWaveform:
    def test_duration(self):
        w = W.Waveform(np.zeros(800, dtype=complex), 8e6)
        assert w.duration_s == pytest.approx(1e-4)

    def test_power_of_unit_tone(self):
        w = W.carrier(1e5, 1e-3, 8e6)
        assert w.power() == pytest.approx(1.0)

    def test_power_empty_is_zero(self):
        assert W.Waveform(np.zeros(0, dtype=complex), 1e6).power() == 0.0

    def test_scaled(self):
        w = W.carrier(0.0, 1e-4, 8e6).scaled(2.0)
        assert w.power() == pytest.approx(4.0)

    def test_concat_rate_mismatch(self):
        a = W.carrier(0.0, 1e-4, 8e6)
        b = W.carrier(0.0, 1e-4, 4e6)
        with pytest.raises(ValueError):
            a.concatenated(b)

    def test_concat_lengths_add(self):
        a = W.carrier(0.0, 1e-4, 8e6)
        assert len(a.concatenated(a)) == 2 * len(a)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            W.Waveform(np.zeros(4, dtype=complex), 0.0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            W.Waveform(np.zeros((2, 4), dtype=complex), 1e6)


class TestCarrier:
    def test_frequency_is_correct(self):
        f, fs = 1e6, 16e6
        w = W.carrier(f, 1e-3, fs)
        spectrum = np.fft.fft(w.samples)
        freqs = np.fft.fftfreq(len(w), 1 / fs)
        peak = freqs[np.argmax(np.abs(spectrum))]
        assert peak == pytest.approx(f, abs=fs / len(w))

    def test_phase_offset(self):
        w = W.carrier(0.0, 1e-4, 8e6, phase_rad=np.pi / 2)
        assert w.samples[0] == pytest.approx(1j)


class TestOok:
    def test_envelope_follows_bits(self):
        w = W.ook_waveform([1, 0, 1], 1e6, 8e6)
        env = np.abs(w.samples).reshape(3, 8).mean(axis=1)
        assert env == pytest.approx([1.0, 0.0, 1.0])

    def test_custom_levels(self):
        w = W.ook_waveform([1, 0], 1e6, 8e6, high=2.0, low=0.5)
        env = np.abs(w.samples).reshape(2, 8).mean(axis=1)
        assert env == pytest.approx([2.0, 0.5])

    def test_non_integer_sps_rejected(self):
        with pytest.raises(ValueError):
            W.ook_waveform([1, 0], 3e6, 8e6)

    def test_too_low_rate_rejected(self):
        with pytest.raises(ValueError):
            W.ook_waveform([1], 8e6, 8e6)


class TestTwoLevel:
    def test_amplitudes_keyed_by_bits(self):
        w = W.two_level_waveform([1, 0, 1, 1], 1e6, 8e6,
                                 amp_one=1.0, amp_zero=0.25)
        env = np.abs(w.samples).reshape(4, 8).mean(axis=1)
        assert env == pytest.approx([1.0, 0.25, 1.0, 1.0])

    def test_complex_amplitudes_allowed(self):
        w = W.two_level_waveform([1, 0], 1e6, 8e6,
                                 amp_one=1j, amp_zero=0.5 * np.exp(1j))
        env = np.abs(w.samples).reshape(2, 8).mean(axis=1)
        assert env == pytest.approx([1.0, 0.5])

    def test_phase_continuity(self):
        # Phase must not jump at bit boundaries (free-running VCO).
        w = W.two_level_waveform([1, 0, 1], 1e6, 16e6,
                                 amp_one=1.0, amp_zero=1.0,
                                 freq_one_hz=5e5, freq_zero_hz=-5e5)
        phase = np.unwrap(np.angle(w.samples))
        steps = np.abs(np.diff(phase))
        assert steps.max() < 0.5  # max per-sample advance ~2*pi*f/fs

    def test_fsk_tones_present(self):
        fs = 16e6
        w = W.two_level_waveform([1] * 16, 1e6, fs, 1.0, 1.0,
                                 freq_one_hz=5e5, freq_zero_hz=-5e5)
        spectrum = np.abs(np.fft.fft(w.samples))
        freqs = np.fft.fftfreq(len(w), 1 / fs)
        assert freqs[np.argmax(spectrum)] == pytest.approx(5e5, abs=1e5)


class TestAwgn:
    def test_noise_power(self, rng):
        noise = W.awgn_noise(200_000, 0.25, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.25, rel=0.02)

    def test_add_awgn_sets_snr(self, rng):
        clean = W.carrier(1e5, 1e-2, 8e6)
        noisy = W.add_awgn(clean, snr_db=10.0, rng=rng)
        noise = noisy.samples - clean.samples
        measured = 10 * np.log10(clean.power() / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(10.0, abs=0.3)

    def test_reference_power_override(self, rng):
        clean = W.carrier(0.0, 1e-3, 8e6, amplitude=0.5)
        noisy = W.add_awgn(clean, snr_db=0.0, rng=rng, reference_power=1.0)
        noise_power = np.mean(np.abs(noisy.samples - clean.samples) ** 2)
        assert noise_power == pytest.approx(1.0, rel=0.1)

    def test_zero_power_rejected(self, rng):
        silent = W.Waveform(np.zeros(16, dtype=complex), 8e6)
        with pytest.raises(ValueError):
            W.add_awgn(silent, 10.0, rng)

    def test_negative_noise_power_rejected(self):
        with pytest.raises(ValueError):
            W.awgn_noise(10, -1.0)
