"""repro.engine: plans, shards, executors, the store, and campaigns.

The load-bearing guarantees under test:

* the engine's seed derivation is the runner's, so campaign trials see
  the exact RNG streams a serial sweep would;
* results and merged telemetry exports are byte-identical across shard
  counts and executors;
* a killed campaign resumes from its journal executing only the
  unfinished shards, and a journal that does not match the campaign
  (different plan, interior corruption) is rejected instead of mixed in.
"""

from __future__ import annotations

import functools
import gc
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    Campaign,
    CampaignPlan,
    EngineError,
    ProcessPool,
    ResultStore,
    SerialExecutor,
    StoreError,
    default_job_count,
    run_campaign,
    run_shard,
)
from repro.sim.runner import MonteCarloRunner
from repro.telemetry import Recorder
from repro.telemetry.export import to_jsonl


def uniform_trial(rng, index):
    """Module-level so ProcessPool workers can unpickle it."""
    return {"x": float(rng.uniform()), "index": index}


def failing_trial(rng, index):
    if index == 3:
        raise RuntimeError("trial 3 exploded")
    return {"x": float(rng.uniform())}


def non_dict_trial(rng, index):
    return 42


def marker_trial(rng, index, marker_dir):
    """Touches a per-trial marker file; trial 0 explodes immediately,
    every other trial lingers long enough for cancellation to land.
    Module-level (used via ``functools.partial``) so workers can
    unpickle it."""
    Path(marker_dir, f"trial-{index}.started").touch()
    if index == 0:
        raise RuntimeError("trial 0 exploded")
    time.sleep(0.2)
    return {"x": 1.0}


class TestCampaignPlan:
    def test_seeds_match_runner_derivation(self):
        plan = CampaignPlan.build(master_seed=7, num_trials=10,
                                  num_shards=3)
        runner_seeds = MonteCarloRunner(7).child_seeds(10)
        plan_seeds = [t.seed for shard in plan.shards
                      for t in shard.trials]
        assert plan_seeds == runner_seeds

    def test_partition_is_contiguous_and_balanced(self):
        plan = CampaignPlan.build(num_trials=10, num_shards=3)
        sizes = [len(s.trials) for s in plan.shards]
        assert sizes == [4, 3, 3]
        indices = [i for s in plan.shards for i in s.indices]
        assert indices == list(range(10))

    def test_shards_clamped_to_trial_count(self):
        plan = CampaignPlan.build(num_trials=2, num_shards=8)
        assert plan.num_shards == 2
        assert all(len(s.trials) == 1 for s in plan.shards)

    def test_zero_trials_means_zero_shards(self):
        plan = CampaignPlan.build(num_trials=0, num_shards=4)
        assert plan.shards == ()

    def test_shard_count_never_changes_seeds(self):
        seeds_1 = [t.seed for s in CampaignPlan.build(5, 20, 1).shards
                   for t in s.trials]
        seeds_7 = [t.seed for s in CampaignPlan.build(5, 20, 7).shards
                   for t in s.trials]
        assert seeds_1 == seeds_7

    def test_fingerprint_binds_the_whole_plan(self):
        base = CampaignPlan.build(0, 10, 2).fingerprint()
        assert CampaignPlan.build(0, 10, 2).fingerprint() == base
        assert CampaignPlan.build(1, 10, 2).fingerprint() != base
        assert CampaignPlan.build(0, 11, 2).fingerprint() != base
        assert CampaignPlan.build(0, 10, 3).fingerprint() != base

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            CampaignPlan.build(num_trials=-1)
        with pytest.raises(ValueError):
            CampaignPlan.build(num_shards=0)


class TestRunShard:
    def test_values_and_specs_round_trip(self):
        plan = CampaignPlan.build(master_seed=3, num_trials=4,
                                  num_shards=2)
        result = run_shard(uniform_trial, plan.shards[1], 4)
        assert result.shard_id == 1
        assert [index for index, _, _ in result.trials] == [2, 3]
        assert result.telemetry is None

    def test_non_dict_values_rejected(self):
        plan = CampaignPlan.build(num_trials=1, num_shards=1)
        with pytest.raises(TypeError):
            run_shard(non_dict_trial, plan.shards[0], 1)

    def test_telemetry_snapshot_captured_on_request(self):
        plan = CampaignPlan.build(num_trials=3, num_shards=1)
        result = run_shard(uniform_trial, plan.shards[0], 3,
                           record_telemetry=True)
        assert result.telemetry is not None
        names = [s["name"] for s in result.telemetry.spans]
        assert names == ["sim.trial"] * 3


class TestCampaignDeterminism:
    def test_matches_plain_runner_exactly(self):
        serial = MonteCarloRunner(11).run(uniform_trial, 12)
        for shards in (1, 4, 12):
            outcome = run_campaign(uniform_trial, 12, master_seed=11,
                                   num_shards=shards)
            assert [r.values for r in outcome.results] \
                == [r.values for r in serial]
            assert [r.seed for r in outcome.results] \
                == [r.seed for r in serial]

    def test_process_pool_matches_serial(self):
        reference = run_campaign(uniform_trial, 10, master_seed=2,
                                 num_shards=4)
        pooled = run_campaign(uniform_trial, 10, master_seed=2,
                              num_shards=4, executor=ProcessPool(jobs=2))
        assert [r.values for r in pooled.results] \
            == [r.values for r in reference.results]

    def test_merged_telemetry_export_is_byte_identical(self):
        tel_serial = Recorder()
        MonteCarloRunner(5, telemetry=tel_serial).run(uniform_trial, 8)
        tel_campaign = Recorder()
        run_campaign(uniform_trial, 8, master_seed=5, num_shards=4,
                     telemetry=tel_campaign)
        assert to_jsonl(tel_campaign) == to_jsonl(tel_serial)

    def test_collect_and_summary(self):
        outcome = run_campaign(uniform_trial, 6, master_seed=1,
                               num_shards=2)
        xs = outcome.collect("x")
        assert xs.shape == (6,)
        assert outcome.summary("x")["mean"] == pytest.approx(xs.mean())
        assert outcome.num_trials == 6

    def test_progress_fires_after_each_shard(self):
        seen = []
        Campaign(uniform_trial, 6, num_shards=3).run(
            progress=lambda shard: seen.append(shard.shard_id))
        assert seen == [0, 1, 2]

    def test_trial_failure_propagates(self):
        with pytest.raises(RuntimeError, match="trial 3"):
            run_campaign(failing_trial, 6, num_shards=2)


class _DyingExecutor:
    """Runs shards serially but dies after ``survive`` of them."""

    def __init__(self, survive: int) -> None:
        self.survive = survive

    def run_shards(self, trial_fn, shards, of_total,
                   record_telemetry=False):
        inner = SerialExecutor().run_shards(
            trial_fn, shards, of_total,
            record_telemetry=record_telemetry)
        for count, result in enumerate(inner):
            if count == self.survive:
                raise KeyboardInterrupt("killed mid-campaign")
            yield result


class TestResultStore:
    def test_resume_runs_only_unfinished_shards(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(uniform_trial, 8, master_seed=9, num_shards=4,
                         executor=_DyingExecutor(survive=2),
                         store=store_path)
        journal = store_path.read_text().splitlines()
        assert len(journal) == 3  # header + the two surviving shards

        executed = []
        resumed = Campaign(uniform_trial, 8, master_seed=9,
                           num_shards=4, store=store_path).run(
            progress=lambda shard: executed.append(shard.shard_id))
        assert executed == [2, 3]
        assert resumed.resumed_shards == (0, 1)
        assert resumed.executed_shards == (2, 3)

        clean = run_campaign(uniform_trial, 8, master_seed=9,
                             num_shards=4)
        assert [r.values for r in resumed.results] \
            == [r.values for r in clean.results]

    def test_finished_store_reruns_nothing(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        run_campaign(uniform_trial, 6, num_shards=3, store=store_path)
        again = run_campaign(uniform_trial, 6, num_shards=3,
                             store=store_path)
        assert again.executed_shards == ()
        assert again.resumed_shards == (0, 1, 2)

    def test_torn_final_line_is_dropped(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        run_campaign(uniform_trial, 6, num_shards=3, store=store_path)
        torn = store_path.read_text()[:-20]
        store_path.write_text(torn)
        outcome = run_campaign(uniform_trial, 6, num_shards=3,
                               store=store_path)
        assert outcome.resumed_shards == (0, 1)
        assert outcome.executed_shards == (2,)

    def test_interior_corruption_quarantined_and_rerun(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        run_campaign(uniform_trial, 6, num_shards=3, store=store_path)
        lines = store_path.read_text().splitlines()
        lines[1] = lines[1].replace('"record":"shard"',
                                    '"record":"sharf"')
        store_path.write_text("\n".join(lines) + "\n")
        store = ResultStore(store_path)
        outcome = run_campaign(uniform_trial, 6, num_shards=3,
                               store=store)
        # The damaged record was quarantined (reported, never merged)
        # and its shard re-ran; the others resumed untouched.
        assert store.quarantined_lines == (2,)
        assert outcome.resumed_shards == (1, 2)
        assert outcome.executed_shards == (0,)
        clean = run_campaign(uniform_trial, 6, num_shards=3)
        assert [r.values for r in outcome.results] \
            == [r.values for r in clean.results]

    def test_corrupt_header_rejected(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        run_campaign(uniform_trial, 6, num_shards=3, store=store_path)
        text = store_path.read_text()
        store_path.write_text("garbage" + text)
        with pytest.raises(StoreError, match="not JSON"):
            run_campaign(uniform_trial, 6, num_shards=3,
                         store=store_path)

    def test_different_campaign_rejected(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        run_campaign(uniform_trial, 6, master_seed=0, num_shards=3,
                     store=store_path)
        with pytest.raises(StoreError, match="different campaign"):
            run_campaign(uniform_trial, 6, master_seed=1, num_shards=3,
                         store=store_path)
        with pytest.raises(StoreError, match="different campaign"):
            run_campaign(uniform_trial, 7, master_seed=0, num_shards=3,
                         store=store_path)

    def test_non_json_values_rejected_at_journal_time(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"

        with pytest.raises(StoreError, match="JSON-serialisable"):
            run_campaign(lambda rng, i: {"x": object()}, 2,
                         num_shards=1, store=store_path)

    def test_header_is_canonical_json_with_fingerprint(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        plan = CampaignPlan.build(master_seed=4, num_trials=6,
                                  num_shards=2)
        ResultStore(store_path).create(plan)
        header = json.loads(store_path.read_text().splitlines()[0])
        assert header["record"] == "campaign"
        assert header["fingerprint"] == plan.fingerprint()
        assert header["master_seed"] == 4

    def test_telemetry_round_trips_through_the_journal(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        tel_direct = Recorder()
        run_campaign(uniform_trial, 6, master_seed=3, num_shards=3,
                     telemetry=tel_direct)

        with pytest.raises(KeyboardInterrupt):
            run_campaign(uniform_trial, 6, master_seed=3, num_shards=3,
                         executor=_DyingExecutor(survive=2),
                         store=store_path, telemetry=Recorder())
        tel_resumed = Recorder()
        run_campaign(uniform_trial, 6, master_seed=3, num_shards=3,
                     store=store_path, telemetry=tel_resumed)
        assert to_jsonl(tel_resumed) == to_jsonl(tel_direct)

    def test_traced_resume_refuses_untraced_journal(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(uniform_trial, 6, num_shards=3,
                         executor=_DyingExecutor(survive=1),
                         store=store_path)
        with pytest.raises(EngineError, match="without telemetry"):
            run_campaign(uniform_trial, 6, num_shards=3,
                         store=store_path, telemetry=Recorder())


class _SkippingExecutor:
    """Silently drops every shard — a broken executor."""

    def run_shards(self, trial_fn, shards, of_total,
                   record_telemetry=False):
        return iter(())


class TestEngineErrors:
    def test_incomplete_campaign_detected(self):
        with pytest.raises(EngineError, match="never finished"):
            Campaign(uniform_trial, 4, num_shards=2,
                     executor=_SkippingExecutor()).run()

    def test_process_pool_validates_jobs(self):
        with pytest.raises(ValueError):
            ProcessPool(jobs=0)
        assert ProcessPool(jobs=3).jobs == 3
        assert default_job_count() >= 1

    def test_failed_campaign_cancels_pending_shards(self, tmp_path):
        # One worker, six single-trial shards: shard 0 explodes
        # immediately, so the pool must cancel the queued shards on the
        # way out instead of burning through them.  The executor's call
        # queue pre-buffers ``max_workers + 1`` shards that can no
        # longer be cancelled, so shards 1-3 may still start — but the
        # tail must not.
        trial = functools.partial(marker_trial,
                                  marker_dir=str(tmp_path))
        with pytest.raises(RuntimeError, match="trial 0"):
            run_campaign(trial, 6, num_shards=6,
                         executor=ProcessPool(jobs=1))
        started = {p.name for p in tmp_path.iterdir()}
        assert "trial-0.started" in started
        assert not started & {"trial-4.started", "trial-5.started"}


class TestRunnerIntegration:
    def test_runner_executor_path_matches_serial(self):
        runner = MonteCarloRunner(13)
        serial = runner.run(uniform_trial, 9)
        engine = runner.run(uniform_trial, 9,
                            executor=SerialExecutor(), num_shards=3)
        assert [r.values for r in engine] == [r.values for r in serial]

    def test_runner_progress_in_index_order_under_executor(self):
        seen = []
        MonteCarloRunner(0).run(uniform_trial, 6,
                                progress=lambda r: seen.append(r.index),
                                executor=SerialExecutor(),
                                num_shards=3)
        assert seen == list(range(6))

    def test_runner_store_only_path_uses_engine(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        runner = MonteCarloRunner(1)
        stored = runner.run(uniform_trial, 4, store=store_path)
        assert store_path.exists()
        assert [r.values for r in stored] \
            == [r.values for r in runner.run(uniform_trial, 4)]

    def test_empty_summary_message_names_the_key(self):
        with pytest.raises(ValueError,
                           match=r"no results to summarise for 'snr'"):
            MonteCarloRunner.summary([], "snr")


class TestStreamAbandonment:
    def test_abandoned_stream_leaves_no_open_spans(self):
        tel = Recorder()
        runner = MonteCarloRunner(0, telemetry=tel)
        stream = runner.run_stream(uniform_trial, 10)
        for _ in range(3):
            next(stream)
        del stream
        gc.collect()
        assert tel.tracer.open_count == 0
        trial_spans = [s for s in tel.tracer.finished
                       if s.name == "sim.trial"]
        assert len(trial_spans) == 3
        assert [s.attrs["index"] for s in trial_spans] == [0, 1, 2]


class TestExperimentCampaigns:
    """The figure sweeps honour the executor/shard contract."""

    def test_fig11_values_independent_of_shards(self):
        from repro.experiments import fig11_ber_cdf

        serial = fig11_ber_cdf.run(seed=0, num_placements=6)
        sharded = fig11_ber_cdf.run(seed=0, num_placements=6,
                                    num_shards=3,
                                    executor=SerialExecutor())
        assert np.array_equal(serial.ber_with_otam,
                              sharded.ber_with_otam)
        assert np.array_equal(serial.ber_without_otam,
                              sharded.ber_without_otam)

    def test_fig13_values_independent_of_shards(self):
        from repro.experiments import fig13_multinode

        serial = fig13_multinode.run(seed=0, trials_per_count=2,
                                     node_counts=(1, 2))
        sharded = fig13_multinode.run(seed=0, trials_per_count=2,
                                      node_counts=(1, 2), num_shards=2,
                                      executor=SerialExecutor())
        assert np.array_equal(serial.mean_sinr_db, sharded.mean_sinr_db)
        assert np.array_equal(serial.std_sinr_db, sharded.std_sinr_db)

    def test_chaos_sweep_independent_of_executor(self):
        from repro.experiments import chaos

        serial = chaos.run_all(seed=1, duration_s=4.0,
                               quiet_tail_s=1.0)
        sharded = chaos.run_all(seed=1, duration_s=4.0,
                                quiet_tail_s=1.0,
                                executor=SerialExecutor(), num_shards=2)
        assert [r.scenario for r in sharded] \
            == [r.scenario for r in serial]
        assert [r.result.adaptive_delivery_ratio for r in sharded] \
            == [r.result.adaptive_delivery_ratio for r in serial]
