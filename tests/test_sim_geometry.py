"""Tests for the 2-D geometry primitives under the ray tracer."""

import math

import pytest

from repro.sim.geometry import (
    Point,
    Segment,
    angle_of,
    distance,
    normalize_angle,
    reflect_point_across_line,
    segment_circle_intersects,
    segment_intersection,
)


class TestPoint:
    def test_arithmetic(self):
        p = Point(1.0, 2.0) + Point(3.0, -1.0)
        assert (p.x, p.y) == (4.0, 1.0)
        q = Point(1.0, 2.0) - Point(1.0, 2.0)
        assert (q.x, q.y) == (0.0, 0.0)

    def test_norm(self):
        assert Point(3.0, 4.0).norm() == pytest.approx(5.0)

    def test_scaled(self):
        p = Point(1.0, -2.0).scaled(2.0)
        assert (p.x, p.y) == (2.0, -4.0)

    def test_iterable(self):
        assert tuple(Point(5.0, 6.0)) == (5.0, 6.0)


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length() == pytest.approx(5.0)

    def test_midpoint(self):
        mid = Segment(Point(0, 0), Point(2, 4)).midpoint()
        assert (mid.x, mid.y) == (1.0, 2.0)


class TestIntersection:
    def test_crossing_segments(self):
        hit = segment_intersection(Segment(Point(0, 0), Point(2, 2)),
                                   Segment(Point(0, 2), Point(2, 0)))
        assert hit is not None
        assert (hit.x, hit.y) == pytest.approx((1.0, 1.0))

    def test_parallel_miss(self):
        assert segment_intersection(Segment(Point(0, 0), Point(1, 0)),
                                    Segment(Point(0, 1), Point(1, 1))) is None

    def test_non_crossing_skew(self):
        assert segment_intersection(Segment(Point(0, 0), Point(1, 1)),
                                    Segment(Point(3, 0), Point(4, 1))) is None

    def test_endpoint_touch_counts(self):
        hit = segment_intersection(Segment(Point(0, 0), Point(1, 1)),
                                   Segment(Point(1, 1), Point(2, 0)))
        assert hit is not None
        assert (hit.x, hit.y) == pytest.approx((1.0, 1.0))

    def test_collinear_overlap(self):
        hit = segment_intersection(Segment(Point(0, 0), Point(2, 0)),
                                   Segment(Point(1, 0), Point(3, 0)))
        assert hit is not None

    def test_collinear_disjoint(self):
        assert segment_intersection(Segment(Point(0, 0), Point(1, 0)),
                                    Segment(Point(2, 0), Point(3, 0))) is None


class TestCircleIntersection:
    def test_segment_through_circle(self):
        assert segment_circle_intersects(
            Segment(Point(-1, 0), Point(1, 0)), Point(0, 0), 0.25)

    def test_segment_missing_circle(self):
        assert not segment_circle_intersects(
            Segment(Point(-1, 1), Point(1, 1)), Point(0, 0), 0.25)

    def test_grazing_tangent(self):
        assert segment_circle_intersects(
            Segment(Point(-1, 0.25), Point(1, 0.25)), Point(0, 0), 0.25)

    def test_endpoint_inside(self):
        assert segment_circle_intersects(
            Segment(Point(0.1, 0), Point(5, 0)), Point(0, 0), 0.25)

    def test_degenerate_segment(self):
        assert segment_circle_intersects(
            Segment(Point(0, 0), Point(0, 0)), Point(0.1, 0), 0.25)

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            segment_circle_intersects(
                Segment(Point(0, 0), Point(1, 0)), Point(0, 0), -0.1)


class TestReflection:
    def test_reflect_across_x_axis(self):
        image = reflect_point_across_line(
            Point(1.0, 2.0), Segment(Point(0, 0), Point(1, 0)))
        assert (image.x, image.y) == pytest.approx((1.0, -2.0))

    def test_reflect_across_diagonal(self):
        image = reflect_point_across_line(
            Point(2.0, 0.0), Segment(Point(0, 0), Point(1, 1)))
        assert (image.x, image.y) == pytest.approx((0.0, 2.0))

    def test_point_on_line_unchanged(self):
        image = reflect_point_across_line(
            Point(0.5, 0.5), Segment(Point(0, 0), Point(1, 1)))
        assert (image.x, image.y) == pytest.approx((0.5, 0.5))

    def test_involution(self):
        line = Segment(Point(0, 3), Point(5, 1))
        p = Point(2.0, -1.0)
        twice = reflect_point_across_line(
            reflect_point_across_line(p, line), line)
        assert (twice.x, twice.y) == pytest.approx((p.x, p.y))

    def test_degenerate_line(self):
        with pytest.raises(ValueError):
            reflect_point_across_line(Point(0, 0),
                                      Segment(Point(1, 1), Point(1, 1)))


class TestAngles:
    def test_angle_of_east(self):
        assert angle_of(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)

    def test_angle_of_north(self):
        assert angle_of(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_normalize_wraps_down(self):
        assert normalize_angle(3 * math.pi) == pytest.approx(math.pi)

    def test_normalize_wraps_up(self):
        assert normalize_angle(-3 * math.pi / 2) == pytest.approx(math.pi / 2)

    def test_normalize_identity_in_range(self):
        assert normalize_angle(0.5) == pytest.approx(0.5)

    def test_distance(self):
        assert distance(Point(1, 1), Point(4, 5)) == pytest.approx(5.0)
