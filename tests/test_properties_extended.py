"""Additional property-based tests: timing, throughput, scheduling, TMA."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.throughput import CODING_MODES, frame_success_probability, goodput_bps
from repro.network.sdm_scheduler import (
    AngularSdmScheduler,
    assignment_min_separation_rad,
)
from repro.phy.timing import estimate_timing_offset
from repro.phy.waveform import Waveform
from repro.sim.environment import default_lab_room
from repro.sim.placement import PlacementSampler


class TestTimingProperties:
    @given(st.lists(st.integers(0, 1), min_size=8, max_size=64),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=40)
    def test_offset_recovered_for_any_pattern_with_transitions(self, bits,
                                                               cut):
        assume(len(set(bits)) == 2)  # needs at least one level transition
        sps = 8
        # Two-level envelope with distinct amplitudes; cut samples off
        # the front to create a timing offset.
        env = np.repeat(np.where(np.asarray(bits) == 1, 1.0, 0.25), sps)
        samples = env.astype(complex)[cut:]
        assume(samples.size >= 3 * sps)
        wave = Waveform(samples, 8e6)
        estimated = estimate_timing_offset(wave, sps)
        assert estimated == (sps - cut) % sps

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=10)
    def test_constant_signal_any_sps(self, sps):
        wave = Waveform(np.ones(sps * 12, dtype=complex), 8e6)
        assert estimate_timing_offset(wave, sps) == 0


class TestThroughputProperties:
    bers = st.floats(min_value=0.0, max_value=0.3)

    @given(bers, bers, st.integers(min_value=1, max_value=512))
    @settings(max_examples=40)
    def test_frame_success_monotone_in_ber(self, a, b, payload):
        lo, hi = min(a, b), max(a, b)
        for mode in CODING_MODES:
            assert (frame_success_probability(lo, payload, mode)
                    >= frame_success_probability(hi, payload, mode) - 1e-12)

    @given(st.floats(min_value=-10, max_value=40),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=40)
    def test_goodput_bounded_by_link_rate(self, snr, payload):
        for mode in CODING_MODES:
            rate = goodput_bps(snr, 1e6, payload, mode)
            assert 0.0 <= rate <= 1e6

    @given(st.floats(min_value=0.0, max_value=0.3),
           st.integers(min_value=1, max_value=256))
    @settings(max_examples=40)
    def test_success_is_probability(self, ber, payload):
        for mode in CODING_MODES:
            p = frame_success_probability(ber, payload, mode)
            assert 0.0 <= p <= 1.0


class TestSchedulerProperties:
    @given(st.integers(min_value=2, max_value=24),
           st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_assignment_is_balanced_and_valid(self, n_nodes, n_channels,
                                              seed):
        room = default_lab_room()
        sampler = PlacementSampler(room, np.random.default_rng(seed))
        placements = sampler.sample_many(n_nodes)
        channels = AngularSdmScheduler(n_channels).assign(placements)
        assert len(channels) == n_nodes
        assert all(0 <= c < n_channels for c in channels)
        counts = [channels.count(c) for c in range(n_channels)]
        assert max(counts) - min(counts) <= 1  # balanced loads

    @given(st.integers(min_value=4, max_value=20),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_separation_metric_bounds(self, n_nodes, seed):
        room = default_lab_room()
        sampler = PlacementSampler(room, np.random.default_rng(seed))
        placements = sampler.sample_many(n_nodes)
        channels = AngularSdmScheduler(3).assign(placements)
        sep = assignment_min_separation_rad(placements, channels)
        assert 0.0 <= sep <= math.pi
