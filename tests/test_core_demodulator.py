"""Tests for the joint ASK-FSK demodulator."""

import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.otam import OtamModulator
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits
from repro.phy.waveform import Waveform, awgn_noise


@pytest.fixture
def cfg():
    return AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


def _capture(cfg, rng, h1, h0, snr_db=30.0, num_data_bits=96,
             bits=None):
    """Build a noisy OTAM capture with a preamble."""
    if bits is None:
        bits = np.concatenate([default_preamble_bits(),
                               random_bits(num_data_bits, rng)])
    mod = OtamModulator(cfg, eirp_dbm=0.0)
    clean = mod.received_waveform(bits, ChannelResponse(h1=h1, h0=h0, paths=()))
    strong = max(abs(h1), abs(h0))
    noise_power = strong**2 / 10 ** (snr_db / 10.0)
    noisy = Waveform(clean.samples + awgn_noise(len(clean), noise_power, rng),
                     cfg.sample_rate_hz)
    return bits, noisy


class TestAskBranch:
    def test_clean_decoding(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=1.0, h0=0.15)
        demod = JointDemodulator(cfg)
        decoded, snr = demod.demodulate_ask(wave)
        assert np.array_equal(decoded, bits)
        assert snr > 15.0

    def test_soft_values_two_clusters(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=1.0, h0=0.2)
        soft = JointDemodulator(cfg).ask_soft_values(wave)
        assert soft.size == bits.size
        gap = soft[bits == 1].mean() - soft[bits == 0].mean()
        assert gap > 0.5

    def test_equal_levels_fail_ask(self, cfg, rng):
        _, wave = _capture(cfg, rng, h1=0.7, h0=0.7 * np.exp(1j))
        _, snr = JointDemodulator(cfg).demodulate_ask(wave)
        assert snr < 10.0


class TestFskBranch:
    def test_clean_decoding(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=0.7, h0=0.7 * np.exp(1j))
        decoded, snr = JointDemodulator(cfg).demodulate_fsk(wave)
        assert np.array_equal(decoded, bits)
        assert snr > 10.0

    def test_tone_power_matrix_shape(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=1.0, h0=1.0)
        powers = JointDemodulator(cfg).fsk_tone_powers(wave)
        assert powers.shape == (bits.size, 2)

    def test_no_polarity_ambiguity(self, cfg, rng):
        # FSK decisions are tied to the transmitted tone, so even an
        # 'inverted' channel (h0 stronger) decodes without flipping.
        bits, wave = _capture(cfg, rng, h1=0.3, h0=1.0)
        decoded, _ = JointDemodulator(cfg).demodulate_fsk(wave)
        assert np.array_equal(decoded, bits)


class TestJointDecision:
    def test_distinct_levels_use_ask(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=1.0, h0=0.1)
        result = JointDemodulator(cfg).demodulate(wave)
        assert result.branch == "ask"
        assert np.array_equal(result.bits, bits)
        assert result.preamble_found

    def test_equal_levels_fall_back_to_fsk(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=0.7, h0=0.7 * np.exp(0.5j))
        result = JointDemodulator(cfg).demodulate(wave)
        assert result.branch == "fsk"
        assert np.array_equal(result.bits, bits)

    def test_inverted_channel_corrected(self, cfg, rng):
        # Fig. 4(b): blocked LoS, bits arrive inverted; the preamble
        # must flip them back.
        bits, wave = _capture(cfg, rng, h1=0.08, h0=1.0)
        result = JointDemodulator(cfg).demodulate(wave)
        assert np.array_equal(result.bits, bits)
        if result.branch == "ask":
            assert result.inverted

    def test_snr_property_tracks_branch(self, cfg, rng):
        _, wave = _capture(cfg, rng, h1=1.0, h0=0.1)
        result = JointDemodulator(cfg).demodulate(wave)
        expected = (result.ask_snr_db if result.branch == "ask"
                    else result.fsk_snr_db)
        assert result.snr_db == expected

    def test_low_snr_produces_errors(self, cfg, rng):
        bits, wave = _capture(cfg, rng, h1=1.0, h0=0.5, snr_db=-3.0,
                              num_data_bits=400)
        result = JointDemodulator(cfg).demodulate(wave)
        n = min(bits.size, result.bits.size)
        errors = int(np.count_nonzero(bits[:n] != result.bits[:n]))
        assert errors > 0

    def test_rate_mismatch_rejected(self, cfg, rng):
        demod = JointDemodulator(cfg)
        wrong = Waveform(np.ones(64, dtype=complex), 4e6)
        with pytest.raises(ValueError):
            demod.demodulate(wrong)

    def test_empty_capture(self, cfg):
        demod = JointDemodulator(cfg)
        result = demod.demodulate(Waveform(np.zeros(0, dtype=complex),
                                           cfg.sample_rate_hz))
        assert result.branch == "none"
        assert result.bits.size == 0


class TestEndToEndBerSweep:
    def test_ber_improves_with_snr(self, cfg, rng):
        errors = []
        for snr in (0.0, 10.0, 25.0):
            bits, wave = _capture(cfg, rng, h1=1.0, h0=0.15, snr_db=snr,
                                  num_data_bits=600)
            result = JointDemodulator(cfg).demodulate(wave)
            n = min(bits.size, result.bits.size)
            errors.append(int(np.count_nonzero(bits[:n] != result.bits[:n])))
        assert errors[0] >= errors[1] >= errors[2]
        assert errors[2] == 0
