"""Self-tests for tools/reprolint: every rule, both polarities, plumbing.

The fixture corpus lives under ``tools/reprolint/tests/fixtures``; each
rule has at least one file designed to trip it and one designed not to.
These tests pin the contract the CI gate relies on: findings where
expected, silence where expected, two-call-hop reachability for the
PAR0xx race detectors, exit codes, JSON/SARIF output, the suppression
syntax (including unused-suppression reporting), baselines, and the
content-hash summary cache.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
FIXTURES = TOOLS_DIR / "reprolint" / "tests" / "fixtures"

sys.path.insert(0, str(TOOLS_DIR))

from reprolint import lint_file, lint_paths, run_lint  # noqa: E402
from reprolint.baseline import (  # noqa: E402
    apply_baseline, load_baseline, write_baseline)
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.registry import all_rules  # noqa: E402
from reprolint.sarif import SARIF_VERSION, to_sarif  # noqa: E402


def codes_in(path: Path, **kwargs) -> set[str]:
    """The set of rule codes reported for one fixture file."""
    return {f.code for f in lint_file(path, **kwargs)}


def codes_under(path: Path, **kwargs) -> set[str]:
    """The set of rule codes reported for one fixture directory."""
    return {f.code for f in lint_paths([path], **kwargs)}


class TestRulePack:
    def test_full_pack_registered(self):
        assert {"UNITS001", "UNITS002", "RNG001", "DET001", "API001",
                "EXC001", "DUR001", "PAR001", "PAR002", "PAR003",
                "PAR004", "PAR005"} <= set(all_rules())

    @pytest.mark.parametrize("code,bad,ok", [
        ("UNITS001", "units001_bad.py", "units001_ok.py"),
        ("UNITS002", "units002_bad.py", "units002_ok.py"),
        ("RNG001", "rng001_bad.py", "rng001_ok.py"),
        ("DET001", "det001_bad.py", "det001_ok.py"),
        ("DET001", "det001_telemetry_bad.py", "det001_telemetry_ok.py"),
        ("DET001", "det001_worker_bad.py", "det001_worker_ok.py"),
        ("API001", "api001_bad/__init__.py", "api001_ok/__init__.py"),
        ("EXC001", "exc001_bad.py", "exc001_ok.py"),
        ("DUR001", "dur001_bad/engine/writer.py",
         "dur001_ok/engine/writer.py"),
    ])
    def test_positive_and_negative_fixture(self, code, bad, ok):
        assert code in codes_in(FIXTURES / bad), f"{code} missed {bad}"
        assert code not in codes_in(FIXTURES / ok), f"{code} false-fired {ok}"

    def test_units001_counts_every_mixing_expression(self):
        findings = [f for f in lint_file(FIXTURES / "units001_bad.py")
                    if f.code == "UNITS001"]
        assert len(findings) == 4

    def test_units002_exempts_the_conversion_authority(self):
        units_py = REPO_ROOT / "src" / "repro" / "units.py"
        assert "UNITS002" not in codes_in(units_py)

    def test_rng001_flags_default_factory_reference(self):
        messages = [f.message for f in lint_file(FIXTURES / "rng001_bad.py")]
        assert any("factory" in m for m in messages)

    def test_api001_reports_dynamic_all(self):
        findings = lint_file(FIXTURES / "api001_dynamic" / "__init__.py")
        assert any("not a literal list" in f.message for f in findings)

    def test_exc001_allows_observe_and_reraise(self):
        assert "EXC001" not in codes_in(FIXTURES / "exc001_ok.py")

    def test_dur001_only_fires_under_scoped_directories(self):
        """The same raw writes outside engine/cluster/telemetry pass."""
        assert "DUR001" not in codes_in(FIXTURES / "dur001_unscoped.py")

    def test_dur001_counts_every_raw_write(self):
        findings = [f for f in lint_file(
            FIXTURES / "dur001_bad" / "engine" / "writer.py")
            if f.code == "DUR001"]
        assert len(findings) == 3

    def test_parse_errors_become_findings(self):
        assert codes_in(FIXTURES / "parse_error.py") == {"PARSE001"}


class TestParallelRules:
    """The PAR0xx race detector against its planted-violation corpus.

    Every ``*_bad`` fixture hides the hazard at least one call hop away
    from the worker entry point — a file-scope rule cannot see it.
    """

    @pytest.mark.parametrize("code,bad,count,ok", [
        ("PAR001", "par001_bad", 2, "par001_ok"),
        ("PAR002", "par002_bad.py", 3, "par002_ok.py"),
        ("PAR003", "par003_bad", 2, "par003_ok"),
        ("PAR004", "par004_bad", 1, "par004_ok"),
        ("PAR005", "par005_bad", 1, "par005_ok"),
    ])
    def test_positive_and_negative_fixture(self, code, bad, count, ok):
        findings = [f for f in lint_paths([FIXTURES / bad], select=[code])]
        assert len(findings) == count, \
            f"{code}: {[f.render() for f in findings]}"
        assert codes_under(FIXTURES / ok, select=[code]) == set()

    def test_par001_chain_spans_two_call_hops(self):
        """The diagnostic names the full entry -> ... -> sink chain."""
        messages = [f.message for f in
                    lint_paths([FIXTURES / "par001_bad"], select=["PAR001"])]
        assert any("run_trial -> par001_bad.work.step -> "
                   "par001_bad.state.remember" in m for m in messages)

    def test_par001_anchors_at_the_offending_module(self):
        """Findings point at state.py, not at the entry in driver.py."""
        findings = lint_paths([FIXTURES / "par001_bad"], select=["PAR001"])
        assert {Path(f.path).name for f in findings} == {"state.py"}

    def test_par001_never_written_constant_is_safe(self):
        """Reading a module dict nobody writes is not shared state."""
        assert codes_under(FIXTURES / "par001_ok") == set()

    def test_par002_reports_each_unpicklable_flavor(self):
        messages = [f.message for f in
                    lint_file(FIXTURES / "par002_bad.py", select=["PAR002"])]
        assert any("lambda" in m for m in messages)
        assert any("nested function" in m for m in messages)
        assert any("bound method" in m for m in messages)

    def test_par002_data_attribute_callable_is_not_flagged(self):
        """`self.trial_fn` holding a plain function is picklable."""
        assert codes_in(FIXTURES / "par002_ok.py") == set()

    def test_par003_finds_wallclock_and_env_two_hops_down(self):
        messages = [f.message for f in
                    lint_paths([FIXTURES / "par003_bad"], select=["PAR003"])]
        assert any("wall-clock" in m and "->" in m for m in messages)
        assert any("environment read" in m for m in messages)

    def test_par003_parent_side_clock_is_fine(self):
        """time.monotonic() in the driver (not worker-reachable) passes."""
        assert codes_under(FIXTURES / "par003_ok") == set()

    def test_par004_transitive_unseeded_rng(self):
        messages = [f.message for f in
                    lint_paths([FIXTURES / "par004_bad"], select=["PAR004"])]
        assert any("default_rng" in m and "via" in m for m in messages)

    def test_par005_is_dataflow_aware_where_dur001_is_not(self):
        """par005_bad writes outside the DUR001 path scope: only the
        reachability rule can connect the worker to the raw write."""
        assert codes_under(FIXTURES / "par005_bad",
                           select=["DUR001"]) == set()
        assert codes_under(FIXTURES / "par005_bad",
                           select=["PAR005"]) == {"PAR005"}

    def test_full_pack_on_par_corpus_reports_only_planted_codes(self):
        """No collateral findings from other rules on the PAR corpus.

        ``par003_bad``/``par004_bad`` also trip the file-scope twins
        (DET001/RNG001) on the very same calls — the intended overlap:
        the file rule sees the call locally, the project rule adds the
        worker chain.
        """
        for name, codes in [("par001_bad", {"PAR001"}),
                            ("par003_bad", {"PAR003", "DET001"}),
                            ("par004_bad", {"PAR004", "RNG001"}),
                            ("par005_bad", {"PAR005"})]:
            assert codes_under(FIXTURES / name) == codes, name


class TestSuppression:
    def test_line_directive_silences_one_line_only(self):
        findings = [f for f in lint_file(FIXTURES / "suppressed.py")
                    if f.code == "UNITS002"]
        assert len(findings) == 1  # only the undirected line fires

    def test_file_directive_silences_the_whole_file(self):
        assert "DET001" not in codes_in(FIXTURES / "suppressed.py")

    def test_unused_directive_is_reported(self, tmp_path):
        target = tmp_path / "dead.py"
        target.write_text("X = 5  # reprolint: disable=DET001\n")
        findings = lint_file(target)
        assert [f.code for f in findings] == ["SUP001"]
        assert "DET001" in findings[0].message

    def test_used_directive_is_not_reported(self):
        """suppressed.py's directives all fire; no SUP001 noise."""
        assert "SUP001" not in codes_in(FIXTURES / "suppressed.py")

    def test_unused_reporting_respects_selection(self, tmp_path):
        """--select RNG001 must not call a DET001 suppression dead."""
        target = tmp_path / "dead.py"
        target.write_text("X = 5  # reprolint: disable=DET001\n")
        assert codes_in(target, select=["RNG001"]) == set()

    def test_parse_errors_are_unsuppressable(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("# reprolint: disable-file=all\ndef broken(:\n")
        assert codes_in(target) == {"PARSE001"}

    def test_par_findings_are_suppressable(self, tmp_path):
        """Project-scope findings honour line directives like any other."""
        bad = tmp_path / "pkg"
        shutil.copytree(FIXTURES / "par004_bad", bad)
        noise = bad / "noise.py"
        text = noise.read_text()
        noise.write_text(text.replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # reprolint: disable=PAR004,RNG001"))
        assert codes_under(bad, select=["PAR004"]) == set()


class TestBaseline:
    def _findings(self, path: Path):
        return lint_file(path)

    def test_round_trip_accepts_everything(self, tmp_path):
        findings = self._findings(FIXTURES / "exc001_bad.py")
        assert findings
        baseline = tmp_path / "base.json"
        count = write_baseline(baseline, findings)
        assert count == len(findings)
        assert apply_baseline(findings, load_baseline(baseline)) == []

    def test_new_findings_survive_the_baseline(self, tmp_path):
        baseline = tmp_path / "base.json"
        write_baseline(baseline, self._findings(FIXTURES / "exc001_bad.py"))
        fresh = self._findings(FIXTURES / "det001_bad.py")
        assert apply_baseline(fresh, load_baseline(baseline)) == fresh

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        """Inserting unrelated lines above keeps findings baselined."""
        moved = tmp_path / "moved.py"
        moved.write_text((FIXTURES / "exc001_bad.py").read_text())
        baseline = tmp_path / "base.json"
        write_baseline(baseline, self._findings(moved))
        moved.write_text("# one new comment line\n# and another\n"
                         + moved.read_text())
        shifted = self._findings(moved)
        assert shifted  # still found, two lines lower...
        assert apply_baseline(shifted, load_baseline(baseline)) == []

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_cli_write_then_apply(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        bad = str(FIXTURES / "exc001_bad.py")
        assert reprolint_main([bad, "--no-cache", "--write-baseline",
                               "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert reprolint_main([bad, "--no-cache",
                               "--baseline", str(baseline)]) == 0
        assert reprolint_main([str(FIXTURES / "det001_bad.py"),
                               "--no-cache",
                               "--baseline", str(baseline)]) == 1

    def test_cli_corrupt_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text("not json")
        code = reprolint_main([str(FIXTURES / "exc001_bad.py"), "--no-cache",
                               "--baseline", str(baseline)])
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestSummaryCache:
    def _tree(self, tmp_path: Path) -> Path:
        root = tmp_path / "proj"
        root.mkdir()
        (root / "clean.py").write_text("def f(x):\n    return x\n")
        (root / "other.py").write_text("def g(y):\n    return y + 1\n")
        return root

    def test_cold_then_warm(self, tmp_path):
        root = self._tree(tmp_path)
        cache = tmp_path / "cache"
        cold = run_lint([root], cache_dir=cache)
        assert (cold.stats["cache_misses"], cold.stats["cache_hits"]) == (2, 0)
        warm = run_lint([root], cache_dir=cache)
        assert (warm.stats["cache_misses"], warm.stats["cache_hits"]) == (0, 2)

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        root = self._tree(tmp_path)
        cache = tmp_path / "cache"
        run_lint([root], cache_dir=cache)
        (root / "other.py").write_text(
            "def g(y):\n"
            "    try:\n"
            "        return y + 1\n"
            "    except Exception:\n"
            "        pass\n")
        edited = run_lint([root], cache_dir=cache)
        assert edited.stats["cache_hits"] == 1
        assert edited.stats["cache_misses"] == 1
        assert {f.code for f in edited.findings} == {"EXC001"}

    def test_cached_findings_match_fresh_findings(self, tmp_path):
        """A warm run reports byte-identical findings to a cold one."""
        cache = tmp_path / "cache"
        target = FIXTURES / "exc001_bad.py"
        cold = run_lint([target], cache_dir=cache).findings
        warm = run_lint([target], cache_dir=cache).findings
        assert warm == cold == lint_file(target)

    def test_selection_change_does_not_poison_the_cache(self, tmp_path):
        """The cache stores unfiltered findings; selection is applied
        after retrieval, so a narrow run must not hide later findings."""
        cache = tmp_path / "cache"
        target = FIXTURES / "exc001_bad.py"
        narrow = run_lint([target], select=["RNG001"], cache_dir=cache)
        assert narrow.findings == []
        full = run_lint([target], cache_dir=cache)
        assert full.stats["cache_hits"] == 1
        assert {f.code for f in full.findings} == {"EXC001"}


class TestSarif:
    def test_log_shape_and_rule_catalogue(self):
        findings = lint_file(FIXTURES / "exc001_bad.py")
        log = to_sarif(findings, "2.0.0")
        assert log["version"] == SARIF_VERSION == "2.1.0"
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"PAR001", "PAR002", "PAR003", "PAR004", "PAR005",
                "SUP001", "PARSE001"} <= rule_ids
        assert {r["ruleId"] for r in run["results"]} == {"EXC001"}

    def test_columns_are_one_based(self):
        findings = lint_file(FIXTURES / "exc001_bad.py")
        log = to_sarif(findings, "2.0.0")
        for result in log["runs"][0]["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_cli_sarif_round_trips(self, capsys):
        reprolint_main([str(FIXTURES / "exc001_bad.py"), "--no-cache",
                        "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert payload["runs"][0]["results"]


class TestChangedOnly:
    def _git(self, cwd: Path, *args: str) -> None:
        subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                        *args], cwd=cwd, check=True, capture_output=True)

    def test_reports_only_changed_files(self, tmp_path):
        repo = tmp_path / "r"
        repo.mkdir()
        bad = (FIXTURES / "exc001_bad.py").read_text()
        (repo / "stale.py").write_text(bad)
        (repo / "touched.py").write_text(bad)
        self._git(repo, "init", "-q")
        self._git(repo, "add", ".")
        self._git(repo, "commit", "-qm", "seed")
        (repo / "touched.py").write_text(bad + "\n# touched\n")
        result = subprocess.run(
            [sys.executable, str(TOOLS_DIR / "reprolint"), ".",
             "--no-cache", "--changed-only", "--format", "json"],
            cwd=repo, capture_output=True, text=True, timeout=60)
        assert result.returncode == 1, result.stderr
        paths = {item["path"] for item in json.loads(result.stdout)}
        assert {Path(p).name for p in paths} == {"touched.py"}

    def test_outside_git_exits_two(self, tmp_path):
        (tmp_path / "a.py").write_text("X = 1\n")
        result = subprocess.run(
            [sys.executable, str(TOOLS_DIR / "reprolint"), "a.py",
             "--no-cache", "--changed-only"],
            cwd=tmp_path, capture_output=True, text=True, timeout=60,
            env={"PATH": "/usr/bin:/bin", "HOME": str(tmp_path),
                 "GIT_CEILING_DIRECTORIES": str(tmp_path.parent)})
        assert result.returncode == 2
        assert "git" in result.stderr


class TestCliContract:
    def test_fixture_corpus_exits_nonzero(self, capsys):
        assert reprolint_main([str(FIXTURES), "--no-cache"]) == 1
        assert "findings" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, capsys):
        clean = FIXTURES / "api001_ok"
        assert reprolint_main([str(clean), "--no-cache"]) == 0
        assert capsys.readouterr().out == ""

    def test_repo_src_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_reprolint_tool_is_clean(self):
        """The linter dogfoods its own full pack (fixtures excluded)."""
        files = [p for p in sorted((TOOLS_DIR / "reprolint").rglob("*.py"))
                 if "fixtures" not in p.parts
                 and "__pycache__" not in p.parts]
        findings = lint_paths(files)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_src_graph_sees_the_campaign_entry_points(self):
        """run_shards/Campaign handoffs in src make workers reachable."""
        run = run_lint([REPO_ROOT / "src"])
        assert run.stats["worker_entries"] >= 1
        assert run.stats["worker_reachable"] >= run.stats["worker_entries"]

    def test_json_output_round_trips(self, capsys):
        reprolint_main([str(FIXTURES / "exc001_bad.py"), "--no-cache",
                        "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert all({"code", "message", "path", "line", "col"} <= set(item)
                   for item in payload)
        assert {item["code"] for item in payload} == {"EXC001"}

    def test_usage_error_exits_two(self, capsys):
        assert reprolint_main([str(FIXTURES), "--no-cache",
                               "--select", "NOPE999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("UNITS001", "UNITS002", "RNG001", "DET001",
                     "API001", "EXC001", "DUR001", "PAR001", "PAR002",
                     "PAR003", "PAR004", "PAR005"):
            assert code in out
        assert "[project]" in out and "[file]" in out

    def test_statistics_go_to_stderr(self, capsys):
        reprolint_main([str(FIXTURES / "api001_ok"), "--no-cache",
                        "--statistics"])
        err = capsys.readouterr().err
        assert "files=" in err and "cache_" in err

    def test_directory_invocation_via_subprocess(self):
        """`python tools/reprolint <clean dir>` is the documented entry."""
        result = subprocess.run(
            [sys.executable, str(TOOLS_DIR / "reprolint"),
             str(FIXTURES / "api001_ok"), "--no-cache"],
            capture_output=True, text=True, cwd=REPO_ROOT, timeout=60)
        assert result.returncode == 0, result.stdout + result.stderr


class TestAnalyzerFuzz:
    """Property tests: the analyzer never crashes or mis-attributes."""

    _STATEMENTS = st.sampled_from([
        "import os",
        "import time",
        "from functools import partial",
        "STATE = {}",
        "TOTALS = []",
        "X_MS = 3",
        "def f(a):\n    return a",
        "def g(b):\n    STATE['k'] = b\n    return f(b)",
        "def h():\n    return time.time()",
        "def top():\n    def inner(v):\n        return v\n    return inner",
        "cb = lambda v: v + 1",
        "class C:\n    def m(self):\n        return self.m",
        "def drive(pool, shards):\n    pool.run_shards(g, shards)",
        "def drive2(pool):\n    pool.submit(lambda s: s)",
        "try:\n    import json\nexcept ImportError:\n    json = None",
        "from . import sibling",
        "print(os.environ.get('K'))",
    ])

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(statements=st.lists(_STATEMENTS, min_size=0, max_size=12))
    def test_never_crashes_on_valid_modules(self, tmp_path, statements):
        target = tmp_path / "gen.py"
        source = "\n".join(statements) + "\n"
        target.write_text(source)
        findings = lint_file(target)  # must not raise
        lines = source.count("\n") + 1
        for finding in findings:
            assert finding.path == str(target)
            assert 1 <= finding.line <= lines

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(blob=st.text(max_size=200))
    def test_arbitrary_text_parses_or_reports_parse001(self, tmp_path, blob):
        target = tmp_path / "blob.py"
        target.write_text(blob, encoding="utf-8")
        findings = lint_file(target)  # must not raise
        codes = {f.code for f in findings}
        if "PARSE001" in codes:
            assert codes == {"PARSE001"}
