"""Self-tests for tools/reprolint: every rule, both polarities, plumbing.

The fixture corpus lives under ``tools/reprolint/tests/fixtures``; each
rule has at least one file designed to trip it and one designed not to.
These tests pin the contract the CI gate relies on: findings where
expected, silence where expected, exit codes, JSON output, and the
suppression syntax.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
FIXTURES = TOOLS_DIR / "reprolint" / "tests" / "fixtures"

sys.path.insert(0, str(TOOLS_DIR))

from reprolint import lint_file, lint_paths  # noqa: E402
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.registry import all_rules  # noqa: E402


def codes_in(path: Path, **kwargs) -> set[str]:
    """The set of rule codes reported for one fixture file."""
    return {f.code for f in lint_file(path, **kwargs)}


class TestRulePack:
    def test_all_seven_rules_registered(self):
        assert {"UNITS001", "UNITS002", "RNG001", "DET001", "API001",
                "EXC001", "DUR001"} <= set(all_rules())

    @pytest.mark.parametrize("code,bad,ok", [
        ("UNITS001", "units001_bad.py", "units001_ok.py"),
        ("UNITS002", "units002_bad.py", "units002_ok.py"),
        ("RNG001", "rng001_bad.py", "rng001_ok.py"),
        ("DET001", "det001_bad.py", "det001_ok.py"),
        ("DET001", "det001_telemetry_bad.py", "det001_telemetry_ok.py"),
        ("DET001", "det001_worker_bad.py", "det001_worker_ok.py"),
        ("API001", "api001_bad/__init__.py", "api001_ok/__init__.py"),
        ("EXC001", "exc001_bad.py", "exc001_ok.py"),
        ("DUR001", "dur001_bad/engine/writer.py",
         "dur001_ok/engine/writer.py"),
    ])
    def test_positive_and_negative_fixture(self, code, bad, ok):
        assert code in codes_in(FIXTURES / bad), f"{code} missed {bad}"
        assert code not in codes_in(FIXTURES / ok), f"{code} false-fired {ok}"

    def test_units001_counts_every_mixing_expression(self):
        findings = [f for f in lint_file(FIXTURES / "units001_bad.py")
                    if f.code == "UNITS001"]
        assert len(findings) == 4

    def test_units002_exempts_the_conversion_authority(self):
        units_py = REPO_ROOT / "src" / "repro" / "units.py"
        assert "UNITS002" not in codes_in(units_py)

    def test_rng001_flags_default_factory_reference(self):
        messages = [f.message for f in lint_file(FIXTURES / "rng001_bad.py")]
        assert any("factory" in m for m in messages)

    def test_api001_reports_dynamic_all(self):
        findings = lint_file(FIXTURES / "api001_dynamic" / "__init__.py")
        assert any("not a literal list" in f.message for f in findings)

    def test_exc001_allows_observe_and_reraise(self):
        assert "EXC001" not in codes_in(FIXTURES / "exc001_ok.py")

    def test_dur001_only_fires_under_scoped_directories(self):
        """The same raw writes outside engine/cluster/telemetry pass."""
        assert "DUR001" not in codes_in(FIXTURES / "dur001_unscoped.py")

    def test_dur001_counts_every_raw_write(self):
        findings = [f for f in lint_file(
            FIXTURES / "dur001_bad" / "engine" / "writer.py")
            if f.code == "DUR001"]
        assert len(findings) == 3

    def test_parse_errors_become_findings(self):
        assert codes_in(FIXTURES / "parse_error.py") == {"PARSE001"}


class TestSuppression:
    def test_line_directive_silences_one_line_only(self):
        findings = [f for f in lint_file(FIXTURES / "suppressed.py")
                    if f.code == "UNITS002"]
        assert len(findings) == 1  # only the undirected line fires

    def test_file_directive_silences_the_whole_file(self):
        assert "DET001" not in codes_in(FIXTURES / "suppressed.py")


class TestSelection:
    def test_select_restricts_to_named_rules(self):
        only = codes_in(FIXTURES / "det001_bad.py", select=["UNITS001"])
        assert only == set()

    def test_ignore_removes_named_rules(self):
        remaining = codes_in(FIXTURES / "det001_bad.py", ignore=["DET001"])
        assert "DET001" not in remaining

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            lint_file(FIXTURES / "det001_bad.py", select=["NOPE999"])


class TestCliContract:
    def test_fixture_corpus_exits_nonzero(self, capsys):
        assert reprolint_main([str(FIXTURES)]) == 1
        assert "findings" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, capsys):
        clean = FIXTURES / "api001_ok"
        assert reprolint_main([str(clean)]) == 0
        assert capsys.readouterr().out == ""

    def test_repo_src_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src"])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_json_output_round_trips(self, capsys):
        reprolint_main([str(FIXTURES / "exc001_bad.py"),
                        "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert all({"code", "message", "path", "line", "col"} <= set(item)
                   for item in payload)
        assert {item["code"] for item in payload} == {"EXC001"}

    def test_usage_error_exits_two(self, capsys):
        assert reprolint_main([str(FIXTURES), "--select", "NOPE999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("UNITS001", "UNITS002", "RNG001", "DET001",
                     "API001", "EXC001", "DUR001"):
            assert code in out

    def test_directory_invocation_via_subprocess(self):
        """`python tools/reprolint <clean dir>` is the documented entry."""
        result = subprocess.run(
            [sys.executable, str(TOOLS_DIR / "reprolint"),
             str(FIXTURES / "api001_ok")],
            capture_output=True, text=True, cwd=REPO_ROOT, timeout=60)
        assert result.returncode == 0, result.stdout + result.stderr
