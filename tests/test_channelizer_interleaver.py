"""Tests for the wideband channelizer and the interleaved packet codec."""

import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.otam import OtamModulator
from repro.core.packet import Packet, PacketCodec, PacketError
from repro.node.channelizer import ChannelSlice, Channelizer
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits
from repro.phy.waveform import Waveform, awgn_noise, carrier

CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
WIDEBAND_RATE = 64e6


def _node_waveform(rng, h1=1.0, h0=0.15, n_bits=64):
    bits = np.concatenate([default_preamble_bits(), random_bits(n_bits, rng)])
    mod = OtamModulator(CONFIG, eirp_dbm=0.0)
    return bits, mod.received_waveform(
        bits, ChannelResponse(h1=h1, h0=h0, paths=()))


class TestChannelizerBasics:
    def test_single_tone_extraction(self):
        # A tone at +10 MHz in the wideband capture appears at DC after
        # extraction of a channel centred there.
        capture = carrier(10e6, 5e-5, WIDEBAND_RATE)
        chan = Channelizer([ChannelSlice(1, 10e6, 4e6, 8e6)])
        out = chan.extract(capture, 1)
        assert out.sample_rate_hz == 8e6
        spectrum = np.abs(np.fft.fft(out.samples))
        freqs = np.fft.fftfreq(len(out), 1 / 8e6)
        assert abs(freqs[int(np.argmax(spectrum))]) < 3e5

    def test_out_of_channel_energy_rejected(self):
        # A tone 20 MHz away should barely survive the channel filter.
        capture = carrier(20e6, 1e-4, WIDEBAND_RATE)
        chan = Channelizer([ChannelSlice(1, 0.0, 4e6, 8e6)])
        out = chan.extract(capture, 1)
        assert out.power() < 0.01 * capture.power()

    def test_unknown_node_rejected(self):
        chan = Channelizer([ChannelSlice(1, 0.0, 4e6, 8e6)])
        with pytest.raises(KeyError):
            chan.extract(carrier(0, 1e-5, WIDEBAND_RATE), 2)

    def test_non_integer_ratio_rejected(self):
        chan = Channelizer([ChannelSlice(1, 0.0, 4e6, 7e6)])
        with pytest.raises(ValueError):
            chan.extract(carrier(0, 1e-5, WIDEBAND_RATE), 1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Channelizer([ChannelSlice(1, 0.0, 4e6, 8e6),
                         ChannelSlice(1, 5e6, 4e6, 8e6)])

    def test_slice_validation(self):
        with pytest.raises(ValueError):
            ChannelSlice(1, 0.0, 16e6, 8e6)  # bandwidth > output rate


class TestTwoNodeFdmCapture:
    """The §7a story end-to-end: two nodes, one capture, both decoded."""

    def _run(self, rng, offsets=(-12e6, 12e6), noise_power=1e-5):
        bits_a, wave_a = _node_waveform(rng, h1=1.0, h0=0.2)
        bits_b, wave_b = _node_waveform(rng, h1=0.8, h0=0.1)
        capture = Channelizer.compose(
            WIDEBAND_RATE, [(wave_a, offsets[0]), (wave_b, offsets[1])])
        noisy = Waveform(capture.samples
                         + awgn_noise(len(capture), noise_power, rng),
                         WIDEBAND_RATE)
        chan = Channelizer([
            ChannelSlice(10, offsets[0], 5e6, CONFIG.sample_rate_hz),
            ChannelSlice(20, offsets[1], 5e6, CONFIG.sample_rate_hz),
        ])
        demod = JointDemodulator(CONFIG)
        out = {}
        for node_id, bits in ((10, bits_a), (20, bits_b)):
            baseband = chan.extract(noisy, node_id)
            result = demod.demodulate(baseband, recover_timing=True)
            n = min(bits.size, result.bits.size)
            # Timing recovery may drop the first (filter-delayed) bit.
            errors = int(np.count_nonzero(bits[:n] != result.bits[:n]))
            alt = int(np.count_nonzero(bits[1:n] != result.bits[:n - 1]))
            out[node_id] = min(errors, alt)
        return out

    def test_both_nodes_decode(self, rng):
        errors = self._run(rng)
        assert errors[10] <= 1
        assert errors[20] <= 1

    def test_extract_all_returns_everyone(self, rng):
        _, wave = _node_waveform(rng)
        capture = Channelizer.compose(WIDEBAND_RATE, [(wave, 5e6)])
        chan = Channelizer([ChannelSlice(3, 5e6, 5e6, 8e6)])
        result = chan.extract_all(capture)
        assert set(result) == {3}

    def test_compose_validates(self, rng):
        _, wave = _node_waveform(rng)
        with pytest.raises(ValueError):
            Channelizer.compose(WIDEBAND_RATE, [])
        with pytest.raises(ValueError):
            Channelizer.compose(3e6, [(wave, 0.0)])


class TestInterleavedCodec:
    def test_requires_fec(self):
        with pytest.raises(ValueError):
            PacketCodec(use_interleaver=True, use_fec=False)

    def test_roundtrip_clean(self):
        codec = PacketCodec(use_fec=True, use_interleaver=True)
        packet = Packet(payload=b"interleaved payload", sequence=9)
        decoded = codec.decode(codec.encode(packet))
        assert decoded.payload == packet.payload
        assert decoded.sequence == 9

    def test_frame_length_unchanged_by_interleaving(self):
        plain = PacketCodec(use_fec=True)
        inter = PacketCodec(use_fec=True, use_interleaver=True)
        assert (plain.encode(Packet(b"x" * 40)).size
                == inter.encode(Packet(b"x" * 40)).size)

    def test_burst_of_seven_corrected(self):
        codec = PacketCodec(use_fec=True, use_interleaver=True)
        packet = Packet(payload=b"burst-proof payload bytes", sequence=1)
        frame = codec.encode(packet)
        start = codec.preamble.size + 21
        corrupted = frame.copy()
        corrupted[start:start + 7] ^= 1  # a 7-bit burst
        assert codec.decode(corrupted).payload == packet.payload

    def test_same_burst_defeats_noninterleaved_fec(self):
        codec = PacketCodec(use_fec=True, use_interleaver=False)
        packet = Packet(payload=b"burst-proof payload bytes", sequence=1)
        frame = codec.encode(packet)
        start = codec.preamble.size + 21
        corrupted = frame.copy()
        corrupted[start:start + 7] ^= 1
        with pytest.raises(PacketError):
            codec.decode(corrupted)

    def test_scattered_bursts_corrected(self):
        codec = PacketCodec(use_fec=True, use_interleaver=True)
        packet = Packet(payload=b"z" * 50, sequence=2)
        frame = codec.encode(packet)
        body_len = frame.size - codec.preamble.size
        corrupted = frame.copy()
        # Two short bursts far apart.
        for start in (codec.preamble.size + 5,
                      codec.preamble.size + body_len // 2):
            corrupted[start:start + 4] ^= 1
        assert codec.decode(corrupted).payload == packet.payload
