"""Tests for spectral analysis and channel characterisation."""

import numpy as np
import pytest

from repro.channel import statistics as CS
from repro.channel.multipath import ChannelResponse
from repro.channel.raytrace import trace_paths
from repro.core.ask_fsk import AskFskConfig
from repro.core.otam import OtamModulator
from repro.phy import spectrum as SP
from repro.phy.bits import random_bits
from repro.phy.waveform import Waveform, carrier
from repro.sim.environment import default_lab_room
from repro.sim.placement import PlacementSampler


def _otam_wave(rng, bit_rate=1e6, fs=16e6, n_bits=2000):
    cfg = AskFskConfig(bit_rate_bps=bit_rate, sample_rate_hz=fs)
    mod = OtamModulator(cfg, eirp_dbm=0.0)
    return cfg, mod.received_waveform(
        random_bits(n_bits, rng), ChannelResponse(h1=1.0, h0=0.3, paths=()))


class TestPsd:
    def test_tone_peaks_at_its_frequency(self):
        wave = carrier(2e6, 2e-3, 16e6)
        freqs, psd = SP.power_spectral_density(wave)
        assert freqs[int(np.argmax(psd))] == pytest.approx(2e6, abs=5e4)

    def test_total_power_parseval(self):
        wave = carrier(1e6, 2e-3, 16e6, amplitude=0.5)
        freqs, psd = SP.power_spectral_density(wave)
        df = freqs[1] - freqs[0]
        assert float(np.sum(psd) * df) == pytest.approx(wave.power(),
                                                        rel=0.05)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            SP.power_spectral_density(Waveform(np.ones(4, dtype=complex),
                                               1e6))


class TestOccupiedBandwidth:
    def test_tone_is_narrow(self):
        wave = carrier(0.0, 4e-3, 16e6)
        assert SP.occupied_bandwidth_hz(wave) < 1e5

    def test_otam_obw_matches_config_estimate(self, rng):
        cfg, wave = _otam_wave(rng)
        obw = SP.occupied_bandwidth_hz(wave)
        # The config's occupied-bandwidth rule of thumb (tone separation
        # plus two main lobes) should land within ~2x of the measured
        # 99% OBW.
        assert cfg.occupied_bandwidth_hz / 2 < obw < 2 * cfg.occupied_bandwidth_hz

    def test_faster_bits_occupy_more(self, rng):
        _, slow = _otam_wave(rng, bit_rate=1e6)
        _, fast = _otam_wave(rng, bit_rate=4e6)
        assert (SP.occupied_bandwidth_hz(fast)
                > 2 * SP.occupied_bandwidth_hz(slow))

    def test_invalid_fraction(self, rng):
        _, wave = _otam_wave(rng, n_bits=64)
        with pytest.raises(ValueError):
            SP.occupied_bandwidth_hz(wave, fraction=1.0)


class TestBandPowerAndMask:
    def test_in_band_fraction_of_tone(self):
        wave = carrier(1e6, 2e-3, 16e6)
        assert SP.power_in_band_fraction(wave, 0.5e6, 1.5e6) > 0.95
        assert SP.power_in_band_fraction(wave, -2e6, -1e6) < 0.01

    def test_aclr_positive_for_contained_signal(self, rng):
        cfg, wave = _otam_wave(rng)
        aclr = SP.adjacent_channel_leakage_db(wave, 5e6)
        assert aclr > 15.0

    def test_mask_passes_for_clean_tone(self):
        wave = carrier(0.0, 4e-3, 16e6)
        assert SP.check_emission_mask(wave, [(3e6, 30.0), (6e6, 40.0)])

    def test_mask_fails_for_wideband_noise(self, rng):
        noise = Waveform(rng.standard_normal(8192)
                         + 1j * rng.standard_normal(8192), 16e6)
        assert not SP.check_emission_mask(noise, [(3e6, 30.0)])

    def test_invalid_band(self, rng):
        _, wave = _otam_wave(rng, n_bits=64)
        with pytest.raises(ValueError):
            SP.power_in_band_fraction(wave, 1e6, 0.0)
        with pytest.raises(ValueError):
            SP.check_emission_mask(wave, [])


class TestChannelStatistics:
    def _paths(self):
        room = default_lab_room()
        sampler = PlacementSampler(room, np.random.default_rng(0))
        placement = sampler.sample()
        return trace_paths(placement.node_position, placement.ap_position,
                           room, max_bounces=1)

    def test_k_factor_single_path_infinite(self):
        paths = self._paths()[:1]
        assert CS.rician_k_factor_db(paths, 24e9) == np.inf

    def test_k_factor_no_paths(self):
        assert CS.rician_k_factor_db([], 24e9) == -np.inf

    def test_delay_spread_positive_for_multipath(self):
        paths = self._paths()
        if len(paths) > 1:
            assert CS.rms_delay_spread_s(paths, 24e9) > 0.0

    def test_delay_spread_zero_single_path(self):
        assert CS.rms_delay_spread_s(self._paths()[:1], 24e9) == 0.0

    def test_angular_spread_bounded(self):
        spread = CS.angular_spread_rad(self._paths(), 24e9)
        assert 0.0 <= spread < np.pi

    def test_characterize_validates_paper_claims(self):
        """Section 2: 'typically there are a few paths'; flat fading."""
        room = default_lab_room()
        sampler = PlacementSampler(room, np.random.default_rng(7))
        stats = CS.characterize(room, sampler.sample_many(40))
        assert stats.is_sparse
        assert stats.median_path_count >= 2  # LoS + reflections
        assert stats.median_delay_spread_ns < 50.0
        # Flat fading even at the full 100 Mbps switch cap would need
        # <1 ns; at the HD-camera rates the paper targets it holds.
        assert stats.flat_fading_at(10e6)

    def test_characterize_empty_rejected(self):
        with pytest.raises(ValueError):
            CS.characterize(default_lab_room(), [])
