"""Tests for path-loss models."""

import numpy as np
import pytest

from repro.channel import pathloss as PL


class TestFreeSpace:
    def test_known_value_24ghz_1m(self):
        # FSPL(1 m, 24 GHz) = 20 log10(4 pi / lambda) ~ 60.1 dB.
        assert float(PL.free_space_path_loss_db(1.0, 24.0e9)) == pytest.approx(
            60.1, abs=0.2)

    def test_doubling_distance_adds_6db(self):
        pl1 = PL.free_space_path_loss_db(2.0, 24e9)
        pl2 = PL.free_space_path_loss_db(4.0, 24e9)
        assert float(pl2 - pl1) == pytest.approx(6.02, abs=0.01)

    def test_mmwave_penalty_vs_wifi(self):
        # The premise of the whole paper: 24 GHz loses ~20 dB to 2.4 GHz.
        gap = (PL.free_space_path_loss_db(5.0, 24e9)
               - PL.free_space_path_loss_db(5.0, 2.4e9))
        assert float(gap) == pytest.approx(20.0, abs=0.1)

    def test_near_field_clamped(self):
        tiny = PL.free_space_path_loss_db(1e-6, 24e9)
        lam = PL.free_space_path_loss_db(0.0125, 24e9)
        assert float(tiny) == pytest.approx(float(lam), abs=0.3)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            PL.free_space_path_loss_db(-1.0, 24e9)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            PL.free_space_path_loss_db(1.0, 0.0)


class TestLogDistance:
    def test_exponent_two_matches_friis(self):
        d = np.array([1.0, 3.0, 10.0])
        assert PL.log_distance_path_loss_db(d, 24e9, exponent=2.0) == (
            pytest.approx(np.asarray(PL.free_space_path_loss_db(d, 24e9)),
                          abs=0.01))

    def test_higher_exponent_more_loss(self):
        assert (float(PL.log_distance_path_loss_db(10.0, 24e9, 3.0))
                > float(PL.log_distance_path_loss_db(10.0, 24e9, 2.0)))

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            PL.log_distance_path_loss_db(1.0, 24e9, exponent=0.0)


class TestFriisReceived:
    def test_link_identity(self):
        rx = PL.friis_received_power_dbm(10.0, 5.0, 3.0, 24e9)
        expected = 10.0 + 5.0 - float(PL.free_space_path_loss_db(3.0, 24e9))
        assert float(rx) == pytest.approx(expected)


class TestOxygenAbsorption:
    def test_60ghz_much_worse_than_24ghz(self):
        d = 100.0
        a60 = float(PL.oxygen_absorption_db(d, 60e9))
        a24 = float(PL.oxygen_absorption_db(d, 24e9))
        assert a60 > 10 * a24

    def test_negligible_indoors_at_24ghz(self):
        assert float(PL.oxygen_absorption_db(18.0, 24e9)) < 0.01

    def test_scales_linearly(self):
        assert float(PL.oxygen_absorption_db(2000.0, 60e9)) == pytest.approx(
            2 * float(PL.oxygen_absorption_db(1000.0, 60e9)))
