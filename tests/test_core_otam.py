"""Tests for the OTAM modulator — modulation created by the channel."""

import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.core.otam import OtamModulator, transmitted_beam_bits
from repro.hardware.switch import ADRF5020Switch


@pytest.fixture
def cfg():
    return AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


def channel(h1=1.0, h0=0.1):
    return ChannelResponse(h1=h1, h0=h0, paths=())


class TestBeamMapping:
    def test_identity_mapping(self):
        bits = [1, 0, 1, 1, 0]
        assert list(transmitted_beam_bits(bits)) == bits

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            transmitted_beam_bits([2, 0])


class TestPerBitAmplitudes:
    def test_strong_beam_on_one(self, cfg):
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        amp1, amp0 = mod.per_bit_amplitudes(channel(h1=1.0, h0=0.1))
        assert abs(amp1) > abs(amp0)
        assert abs(amp1) == pytest.approx(1.0, rel=0.01)
        assert abs(amp0) == pytest.approx(0.1, rel=0.05)

    def test_switch_leakage_mixes_beams(self, cfg):
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        amp1, _ = mod.per_bit_amplitudes(channel(h1=0.0, h0=1.0))
        # Even with h1 = 0, the isolation leakage radiates a little of
        # the carrier through Beam 0's channel.
        assert abs(amp1) > 0.0
        assert abs(amp1) < 10 ** (-50 / 20)

    def test_eirp_scales_amplitudes(self, cfg):
        quiet = OtamModulator(cfg, eirp_dbm=0.0)
        loud = OtamModulator(cfg, eirp_dbm=20.0)
        a_quiet, _ = quiet.per_bit_amplitudes(channel())
        a_loud, _ = loud.per_bit_amplitudes(channel())
        assert abs(a_loud) == pytest.approx(10.0 * abs(a_quiet))


class TestReceivedWaveform:
    def test_envelope_keyed_by_channel(self, cfg):
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        bits = np.array([1, 0, 1, 0], dtype=np.uint8)
        wave = mod.received_waveform(bits, channel(h1=1.0, h0=0.25))
        env = np.abs(wave.samples).reshape(4, cfg.samples_per_bit).mean(axis=1)
        assert env[0] > 3 * env[1]
        assert env == pytest.approx([env[0], env[1]] * 2, rel=0.01)

    def test_inverted_channel_inverts_envelope(self, cfg):
        # Blocked LoS: Beam 0 stronger -> '0' bits arrive louder.
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        bits = np.array([1, 0], dtype=np.uint8)
        wave = mod.received_waveform(bits, channel(h1=0.1, h0=1.0))
        env = np.abs(wave.samples).reshape(2, cfg.samples_per_bit).mean(axis=1)
        assert env[1] > env[0]

    def test_fsk_tones_in_waveform(self, cfg):
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        bits = np.ones(32, dtype=np.uint8)
        wave = mod.received_waveform(bits, channel(h1=1.0, h0=1.0))
        spectrum = np.abs(np.fft.fft(wave.samples))
        freqs = np.fft.fftfreq(len(wave), 1 / cfg.sample_rate_hz)
        peak_freq = freqs[int(np.argmax(spectrum))]
        assert peak_freq == pytest.approx(cfg.freq_one_hz, abs=2e5)

    def test_empty_bits_rejected(self, cfg):
        with pytest.raises(ValueError):
            OtamModulator(cfg).received_waveform([], channel())

    def test_bitrate_over_switch_cap_rejected(self):
        with pytest.raises(ValueError):
            OtamModulator(AskFskConfig(bit_rate_bps=200e6,
                                       sample_rate_hz=800e6))

    def test_custom_switch_respected(self, cfg):
        slow = ADRF5020Switch(max_rate_hz=0.5e6)
        with pytest.raises(ValueError):
            OtamModulator(cfg, switch=slow)


class TestAskOnlyBaseline:
    def test_off_bits_are_silent(self, cfg):
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        bits = np.array([1, 0], dtype=np.uint8)
        wave = mod.ask_only_waveform(bits, channel(h1=1.0, h0=1.0))
        env = np.abs(wave.samples).reshape(2, cfg.samples_per_bit).mean(axis=1)
        assert env[1] == pytest.approx(0.0, abs=1e-12)

    def test_ignores_beam0_channel(self, cfg):
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        bits = np.array([1, 1], dtype=np.uint8)
        strong_h0 = mod.ask_only_waveform(bits, channel(h1=0.5, h0=5.0))
        weak_h0 = mod.ask_only_waveform(bits, channel(h1=0.5, h0=0.0))
        assert strong_h0.power() == pytest.approx(weak_h0.power())

    def test_energy_per_bit(self, cfg):
        mod = OtamModulator(cfg)
        assert mod.switching_energy_per_bit_j(1.1) == pytest.approx(1.1 / 1e6)
