"""Meta-tests on the public API surface.

Enforces the documentation deliverable mechanically: every public module,
class, function and method under ``repro`` carries a docstring, every
name exported via ``__all__`` resolves, and the top-level package
re-exports the advertised entry points.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.core", "repro.phy", "repro.antenna", "repro.channel",
    "repro.hardware", "repro.node", "repro.network", "repro.baselines",
    "repro.sim", "repro.experiments", "repro.transport", "repro.cluster",
    "repro.telemetry", "repro.engine", "repro.energy",
]


def _all_modules():
    names = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.add(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


ALL_MODULES = _all_modules()


class TestImportsAndExports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_top_level_reexports(self):
        for name in ("OtamLink", "OtamModulator", "JointDemodulator",
                     "MmxNode", "MmxAccessPoint", "MultiNodeNetwork",
                     "TimeModulatedArray", "FdmAllocator", "PacketCodec",
                     "default_lab_room", "PlacementSampler",
                     "design_mmx_beams", "comparison_table"):
            assert hasattr(repro, name), f"repro.{name} not exported"

    def test_version(self):
        assert repro.__version__


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_items_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in dir(module):
            if name.startswith("_"):
                continue
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").split(".")[0] != "repro":
                continue
            if not inspect.getdoc(obj):
                undocumented.append(name)
                continue
            if inspect.isclass(obj):
                for member_name, member in inspect.getmembers(obj):
                    if member_name.startswith("_"):
                        continue
                    if (inspect.isfunction(member)
                            and member.__qualname__.startswith(obj.__name__)
                            and not inspect.getdoc(member)):
                        undocumented.append(f"{name}.{member_name}")
        assert not undocumented, (
            f"{module_name}: missing docstrings on {undocumented}")
