"""Tests for the MAC layer and the USRP receiver model."""

import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.otam import OtamModulator
from repro.hardware.usrp import UsrpReceiver
from repro.network.mac import (
    PacketQueue,
    TdmaSchedule,
    UplinkSimulator,
)
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits


class TestPacketQueue:
    def test_fifo_order(self):
        q = PacketQueue()
        q.offer(0.0, 100)
        q.offer(1.0, 200)
        assert q.pop() == (0.0, 100)
        assert q.pop() == (1.0, 200)

    def test_tail_drop_when_full(self):
        q = PacketQueue(capacity_packets=2)
        assert q.offer(0.0, 1)
        assert q.offer(0.1, 1)
        assert not q.offer(0.2, 1)
        assert q.dropped == 1
        assert len(q) == 2

    def test_backlog_bytes(self):
        q = PacketQueue()
        q.offer(0.0, 100)
        q.offer(0.0, 50)
        assert q.backlog_bytes == 150

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PacketQueue().pop()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PacketQueue().offer(0.0, 0)


class TestTdmaSchedule:
    def test_duty_cycle(self):
        assert TdmaSchedule(4).duty_cycle() == pytest.approx(0.25)

    def test_owner_rotates(self):
        schedule = TdmaSchedule(3, slot_duration_s=1.0)
        assert [schedule.owner_at(t) for t in (0.5, 1.5, 2.5, 3.5)] == \
            [0, 1, 2, 0]

    def test_effective_rate(self):
        schedule = TdmaSchedule(5)
        assert schedule.effective_rate_bps(100e6) == pytest.approx(20e6)

    def test_frame_duration(self):
        assert TdmaSchedule(4, 2e-3).frame_duration_s == pytest.approx(8e-3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TdmaSchedule(0)
        with pytest.raises(ValueError):
            TdmaSchedule(2).owner_at(-1.0)


class TestUplinkSimulator:
    def _sim(self, p_success, rate=10e6, retries=3, rng_seed=0):
        return UplinkSimulator(
            link_rate_bps=rate, frame_bits=8 * 1024 + 200,
            frame_success_probability=p_success,
            max_retries=retries, rng=np.random.default_rng(rng_seed))

    def test_perfect_link_delivers_everything(self):
        stats = self._sim(1.0).run(duration_s=1.0, packet_interval_s=0.01)
        assert stats.delivery_ratio == 1.0
        assert stats.retransmissions == 0
        assert stats.goodput_bps > 0

    def test_dead_link_delivers_nothing(self):
        stats = self._sim(0.0).run(duration_s=0.5, packet_interval_s=0.05)
        assert stats.delivered_packets == 0
        assert stats.delivery_ratio == 0.0

    def test_lossy_link_retransmits(self):
        stats = self._sim(0.6).run(duration_s=2.0, packet_interval_s=0.01)
        assert stats.retransmissions > 0
        assert 0.8 < stats.delivery_ratio <= 1.0  # ARQ recovers most

    def test_latency_grows_with_loss(self):
        clean = self._sim(1.0).run(2.0, 0.01)
        lossy = self._sim(0.5, rng_seed=1).run(2.0, 0.01)
        assert lossy.mean_latency_s > clean.mean_latency_s

    def test_overload_drops(self):
        # Offered load far above the link rate: the queue must shed.
        sim = UplinkSimulator(link_rate_bps=1e6, frame_bits=10_000,
                              frame_success_probability=1.0,
                              queue=PacketQueue(capacity_packets=4),
                              rng=np.random.default_rng(0))
        stats = sim.run(duration_s=0.5, packet_interval_s=0.001)
        assert stats.dropped_packets > 0
        assert stats.delivery_ratio < 1.0

    def test_goodput_capped_by_link(self):
        sim = UplinkSimulator(link_rate_bps=1e6, frame_bits=8 * 1024 + 200,
                              frame_success_probability=1.0,
                              rng=np.random.default_rng(0))
        stats = sim.run(duration_s=1.0, packet_interval_s=1e-4)
        assert stats.goodput_bps < 1e6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self._sim(1.5)
        with pytest.raises(ValueError):
            self._sim(1.0).run(0.0, 0.01)


class TestUsrpReceiver:
    def _capture_pair(self, rng, receiver):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=16e6)
        bits = np.concatenate([default_preamble_bits(),
                               random_bits(96, rng)])
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        clean = mod.received_waveform(
            bits, ChannelResponse(h1=1.0, h0=0.15, paths=()))
        return cfg, bits, receiver.capture(clean, rng)

    def test_default_receiver_decodes_cleanly(self, rng):
        cfg, bits, capture = self._capture_pair(rng, UsrpReceiver())
        result = JointDemodulator(cfg).demodulate(capture)
        n = min(bits.size, result.bits.size)
        assert int(np.count_nonzero(bits[:n] != result.bits[:n])) == 0

    def test_dirty_receiver_still_decodes(self, rng):
        rx = UsrpReceiver(adc_bits=8, lo_offset_hz=50e3,
                          lo_linewidth_hz=2e3)
        cfg, bits, capture = self._capture_pair(rng, rx)
        result = JointDemodulator(cfg).demodulate(capture)
        n = min(bits.size, result.bits.size)
        assert int(np.count_nonzero(bits[:n] != result.bits[:n])) == 0

    def test_quantisation_grid_applied(self, rng):
        rx = UsrpReceiver(adc_bits=4, antialias_fraction=1.0)
        _, _, capture = self._capture_pair(rng, rx)
        # 4-bit I samples take at most 16 distinct values.
        assert np.unique(capture.samples.real).size <= 16

    def test_agc_normalises_scale(self, rng):
        rx = UsrpReceiver()
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=16e6)
        mod = OtamModulator(cfg, eirp_dbm=-40.0)  # tiny input
        wave = mod.received_waveform(
            random_bits(64, rng), ChannelResponse(h1=1.0, h0=0.2, paths=()))
        capture = rx.capture(wave, rng)
        assert float(np.abs(capture.samples).max()) > 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UsrpReceiver(adc_bits=0)
        with pytest.raises(ValueError):
            UsrpReceiver(antialias_fraction=0.0)
