"""Tests for timing recovery, link adaptation, and deployment planning."""


import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.otam import OtamModulator
from repro.core.throughput import (
    CODING_MODES,
    RateAdapter,
    frame_success_probability,
    goodput_bps,
)
from repro.network.deployment import Deployment, plan_access_points
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits
from repro.phy.timing import align_to_bits, estimate_timing_offset, timing_metric
from repro.phy.waveform import Waveform, awgn_noise
from repro.sim.environment import Room
from repro.sim.geometry import Point

CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


def _capture(rng, offset_samples=0, h1=1.0, h0=0.15, n_bits=64):
    bits = np.concatenate([default_preamble_bits(), random_bits(n_bits, rng)])
    mod = OtamModulator(CONFIG, eirp_dbm=0.0)
    wave = mod.received_waveform(bits, ChannelResponse(h1=h1, h0=h0,
                                                       paths=()))
    samples = np.concatenate([
        np.zeros(0, dtype=complex),
        wave.samples[offset_samples:] if offset_samples else wave.samples,
    ])
    noisy = samples + awgn_noise(samples.size, 1e-4, rng)
    return bits, Waveform(noisy, CONFIG.sample_rate_hz)


class TestTimingRecovery:
    def test_aligned_capture_estimates_zero(self, rng):
        _, wave = _capture(rng)
        assert estimate_timing_offset(wave, CONFIG.samples_per_bit) == 0

    @pytest.mark.parametrize("cut", [1, 3, 5, 7])
    def test_recovers_arbitrary_offsets(self, rng, cut):
        # Cutting `cut` samples off the front leaves the first bit
        # truncated; the bit boundary is then at (sps - cut).
        _, wave = _capture(rng, offset_samples=cut)
        estimated = estimate_timing_offset(wave, CONFIG.samples_per_bit)
        assert estimated == (CONFIG.samples_per_bit - cut)

    def test_align_to_bits_trims_whole_bits(self, rng):
        _, wave = _capture(rng, offset_samples=3)
        aligned, offset = align_to_bits(wave, CONFIG.samples_per_bit)
        assert offset == 5
        assert len(aligned) % CONFIG.samples_per_bit == 0

    def test_demodulate_with_recovery_end_to_end(self, rng):
        bits, wave = _capture(rng, offset_samples=5)
        demod = JointDemodulator(CONFIG)
        result = demod.demodulate(wave, recover_timing=True)
        # The first (truncated) bit is lost; everything after decodes.
        decoded = result.bits
        expected = bits[1:]
        n = min(decoded.size, expected.size)
        errors = int(np.count_nonzero(decoded[:n] != expected[:n]))
        assert errors <= 1

    def test_without_recovery_misaligned_capture_fails(self, rng):
        bits, wave = _capture(rng, offset_samples=4)
        result = JointDemodulator(CONFIG).demodulate(wave)
        n = min(bits.size, result.bits.size)
        errors = int(np.count_nonzero(bits[:n] != result.bits[:n]))
        # Half-bit misalignment smears decisions badly.
        assert errors > 3

    def test_metric_validates_inputs(self):
        env = np.ones(64)
        with pytest.raises(ValueError):
            timing_metric(env, 1, 0)
        with pytest.raises(ValueError):
            timing_metric(env, 8, 8)

    def test_constant_envelope_falls_back_to_zero(self):
        wave = Waveform(np.ones(256, dtype=complex), 8e6)
        assert estimate_timing_offset(wave, 8) == 0


class TestFrameSuccess:
    def test_zero_ber_always_succeeds(self):
        for mode in CODING_MODES:
            assert frame_success_probability(0.0, 100, mode) == 1.0

    def test_high_ber_always_fails(self):
        for mode in CODING_MODES:
            assert frame_success_probability(0.4, 100, mode) < 1e-6

    def test_fec_beats_uncoded_at_moderate_ber(self):
        uncoded, hamming = CODING_MODES
        ber = 1e-3
        assert (frame_success_probability(ber, 256, hamming)
                > frame_success_probability(ber, 256, uncoded))

    def test_longer_frames_more_fragile(self):
        uncoded = CODING_MODES[0]
        assert (frame_success_probability(1e-4, 1000, uncoded)
                < frame_success_probability(1e-4, 10, uncoded))

    def test_invalid_ber(self):
        with pytest.raises(ValueError):
            frame_success_probability(1.5, 10, CODING_MODES[0])


class TestGoodput:
    def test_high_snr_approaches_payload_efficiency(self):
        uncoded = CODING_MODES[0]
        rate = goodput_bps(30.0, 1e6, 256, uncoded)
        frame_bits = uncoded.codec().frame_length_bits(256)
        assert rate == pytest.approx(1e6 * 256 * 8 / frame_bits, rel=1e-6)

    def test_fec_halves_peak_rate_roughly(self):
        uncoded, hamming = CODING_MODES
        high = 30.0
        ratio = (goodput_bps(high, 1e6, 256, hamming)
                 / goodput_bps(high, 1e6, 256, uncoded))
        assert 0.5 < ratio < 0.65  # rate 4/7 plus framing overhead

    def test_goodput_vanishes_at_low_snr(self):
        for mode in CODING_MODES:
            assert goodput_bps(-5.0, 1e6, 256, mode) < 1.0

    def test_monotone_in_snr(self):
        uncoded = CODING_MODES[0]
        values = [goodput_bps(s, 1e6, 256, uncoded)
                  for s in (5.0, 8.0, 11.0, 14.0)]
        assert values == sorted(values)


class TestRateAdapter:
    def test_fec_preferred_at_low_snr(self):
        adapter = RateAdapter()
        assert adapter.select(8.0).name == "hamming74"

    def test_uncoded_preferred_at_high_snr(self):
        adapter = RateAdapter()
        assert adapter.select(20.0).name == "uncoded"

    def test_crossover_exists_and_is_sane(self):
        crossover = RateAdapter().crossover_snr_db()
        assert crossover is not None
        assert 5.0 < crossover < 15.0

    def test_single_mode_never_crosses(self):
        adapter = RateAdapter(modes=(CODING_MODES[0],))
        assert adapter.crossover_snr_db() is None

    def test_empty_modes_rejected(self):
        with pytest.raises(ValueError):
            RateAdapter(modes=())


class TestDeployment:
    def _site(self):
        room = Room.rectangular(width_m=6.0, length_m=40.0,
                                reflection_loss_db=7.0)
        nodes = [Point(1.0, y) for y in (2.0, 10.0, 20.0, 30.0, 38.0)]
        candidates = [Point(3.0, y) for y in (5.0, 20.0, 35.0)]
        return room, nodes, candidates

    def test_assignment_picks_nearest_ish_ap(self):
        room, nodes, candidates = self._site()
        deployment = Deployment(room, [Point(3.0, 5.0), Point(3.0, 35.0)])
        assignments = deployment.assign(nodes)
        assert assignments[0].ap_index == 0   # node at y=2
        assert assignments[-1].ap_index == 1  # node at y=38

    def test_more_aps_no_worse_coverage(self):
        room, nodes, candidates = self._site()
        one = Deployment(room, [candidates[1]]).coverage(nodes, 14.0)
        three = Deployment(room, candidates).coverage(nodes, 14.0)
        assert three >= one

    def test_greedy_planner_covers_when_possible(self):
        room, nodes, candidates = self._site()
        chosen = plan_access_points(room, nodes, candidates,
                                    threshold_db=12.0)
        assert 1 <= len(chosen) <= 3
        assert Deployment(room, chosen).coverage(nodes, 12.0) == 1.0

    def test_planner_respects_max_aps(self):
        room, nodes, candidates = self._site()
        chosen = plan_access_points(room, nodes, candidates,
                                    threshold_db=25.0, max_aps=1)
        assert len(chosen) == 1

    def test_load_accounting(self):
        room, nodes, candidates = self._site()
        deployment = Deployment(room, candidates)
        loads = deployment.load_per_ap(nodes)
        assert sum(loads) == len(nodes)

    def test_empty_deployment_rejected(self):
        room, nodes, _ = self._site()
        with pytest.raises(ValueError):
            Deployment(room, [])

    def test_no_candidates_rejected(self):
        room, nodes, _ = self._site()
        with pytest.raises(ValueError):
            plan_access_points(room, nodes, [])
