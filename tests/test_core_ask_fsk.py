"""Tests for the joint ASK-FSK numerology."""

import pytest

from repro.core.ask_fsk import AskFskConfig


class TestDefaults:
    def test_default_tones_orthogonal(self):
        assert AskFskConfig().tones_orthogonal()

    def test_default_deviation_half_bitrate(self):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        assert cfg.fsk_deviation_hz == pytest.approx(5e5)
        assert cfg.tone_separation_hz == pytest.approx(1e6)

    def test_samples_per_bit(self):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        assert cfg.samples_per_bit == 8

    def test_tone_signs(self):
        cfg = AskFskConfig()
        assert cfg.freq_one_hz > 0 > cfg.freq_zero_hz
        assert cfg.freq_one_hz == -cfg.freq_zero_hz

    def test_occupied_bandwidth(self):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        assert cfg.occupied_bandwidth_hz == pytest.approx(3e6)


class TestValidation:
    def test_non_integer_sps_rejected(self):
        with pytest.raises(ValueError):
            AskFskConfig(bit_rate_bps=3e6, sample_rate_hz=8e6)

    def test_sample_rate_too_low(self):
        with pytest.raises(ValueError):
            AskFskConfig(bit_rate_bps=8e6, sample_rate_hz=8e6)

    def test_negative_deviation(self):
        with pytest.raises(ValueError):
            AskFskConfig(fsk_deviation_hz=-1e5)

    def test_tones_beyond_nyquist(self):
        with pytest.raises(ValueError):
            AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6,
                         fsk_deviation_hz=3e6)

    def test_non_orthogonal_detected(self):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6,
                           fsk_deviation_hz=3e5)
        assert not cfg.tones_orthogonal()

    def test_double_separation_still_orthogonal(self):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6,
                           fsk_deviation_hz=1e6)
        assert cfg.tones_orthogonal()
