"""Tests for ``repro.telemetry``: the core primitives, the exporters,
and the instrumentation wired through the simulation stack."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    SimClock,
    TelemetryRecorder,
    Tracer,
    collapsed_stacks,
    load_jsonl,
    load_path,
    render,
    spans_to_collapsed,
    summarize,
    to_csv,
    to_jsonl,
    to_jsonl_lines,
    write_csv,
    write_jsonl,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.now_s == pytest.approx(0.75)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_is_monotone(self):
        clock = SimClock()
        clock.advance_to(3.0)
        clock.advance_to(1.0)  # backwards is a clamped no-op
        assert clock.now_s == 3.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_s=-1.0)


class TestMetrics:
    def test_counter_accumulates(self):
        counter = Counter("mac.frames")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("mac.frames").inc(-1.0)

    @pytest.mark.parametrize("bad", ["frames", "MAC.frames", "mac.",
                                     ".frames", "mac frames", ""])
    def test_name_convention_enforced(self, bad):
        with pytest.raises(ValueError):
            Counter(bad)

    def test_gauge_none_until_set(self):
        gauge = Gauge("transport.rto_s")
        assert gauge.value is None
        gauge.set(0.25)
        assert gauge.value == pytest.approx(0.25)

    def test_histogram_bucket_edges(self):
        hist = Histogram("mac.latency_s", least=1e-3, growth=2.0)
        assert hist.bucket_index(1e-3) == 0
        assert hist.bucket_index(1e-4) == 0
        assert hist.bucket_index(2e-3) == 1
        assert hist.bucket_index(2.1e-3) == 2
        # Observations always fall at or below their bucket's bound.
        for value in (1e-3, 1.5e-3, 2e-3, 3e-3, 1.0, 37.0):
            assert value <= hist.upper_bound(hist.bucket_index(value))

    def test_histogram_stats(self):
        hist = Histogram("mac.latency_s")
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.007 / 3)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.004)
        uppers = [u for u, _ in hist.buckets()]
        assert uppers == sorted(uppers)

    def test_histogram_rejects_bad_values(self):
        hist = Histogram("mac.latency_s")
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.observe(math.inf)

    def test_histogram_quantile(self):
        hist = Histogram("mac.latency_s", least=1.0, growth=2.0)
        for value in [1.0] * 9 + [100.0]:
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(100.0)
        assert Histogram("mac.empty_s").quantile(0.5) == 0.0

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        registry.gauge("a.g")
        registry.histogram("a.h")
        assert len(registry) == 3

    def test_registry_iteration_is_name_sorted(self):
        registry = MetricsRegistry()
        for name in ("z.last", "a.first", "m.mid"):
            registry.counter(name)
        assert [c.name for c in registry.counters()] == [
            "a.first", "m.mid", "z.last"]


class TestTracer:
    def test_scoped_span_parentage(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("sim.outer"):
            clock.advance(1.0)
            with tracer.span("sim.inner"):
                clock.advance(2.0)
        inner, outer = tracer.finished
        assert inner.name == "sim.inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_s == pytest.approx(2.0)
        assert outer.duration_s == pytest.approx(3.0)

    def test_out_of_order_end(self):
        clock = SimClock()
        tracer = Tracer(clock)
        a = tracer.begin("resilience.outage")
        b = tracer.begin("cluster.ap_outage")
        clock.advance(5.0)
        tracer.end(a)  # closed before b — overlapping, not nested
        tracer.end(b)
        assert tracer.open_count == 0
        assert [s.name for s in tracer.finished] == [
            "resilience.outage", "cluster.ap_outage"]

    def test_double_end_raises(self):
        tracer = Tracer(SimClock())
        span = tracer.begin("sim.trial")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)


class TestRecorders:
    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        assert not null.enabled
        null.count("mac.frames")
        null.gauge("mac.depth", 1.0)
        null.observe("mac.latency_s", 0.1)
        null.event("mac.run", ok=True)
        handle = null.begin("sim.trial")
        null.end(handle)
        with null.span("sim.trial"):
            pass

    def test_base_class_is_null(self):
        assert not TelemetryRecorder.enabled
        assert isinstance(NullRecorder(), TelemetryRecorder)

    def test_recorder_records_all_verbs(self):
        rec = Recorder()
        rec.clock.advance(1.5)
        rec.count("mac.frames", 3)
        rec.gauge("transport.rto_s", 0.2)
        rec.observe("mac.latency_s", 0.01)
        rec.event("mac.run", offered=5)
        assert rec.metrics.counter("mac.frames").value == 3.0
        assert rec.metrics.gauge("transport.rto_s").value == 0.2
        assert rec.metrics.histogram("mac.latency_s").count == 1
        assert rec.events[0].time_s == pytest.approx(1.5)
        assert rec.events[0].fields == {"offered": 5}

    def test_recorder_end_tolerates_null_span(self):
        rec = Recorder()
        null_handle = NullRecorder().begin("sim.trial")
        rec.end(null_handle)  # no-op, not an error
        assert rec.tracer.finished == []


class TestExport:
    def _small_recorder(self) -> Recorder:
        rec = Recorder()
        rec.count("mac.frames", 2)
        rec.gauge("resilience.snr_db", float("-inf"))
        rec.observe("mac.latency_s", 0.004)
        with rec.span("sim.trial", index=0):
            rec.clock.advance(1.0)
        rec.event("mac.run", goodput_bps=1e6)
        return rec

    def test_jsonl_shape(self):
        lines = to_jsonl_lines(self._small_recorder())
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "meta"
        assert records[0]["format"] == "repro-telemetry"
        kinds = {r["record"] for r in records}
        assert kinds == {"meta", "counter", "gauge", "histogram",
                         "span", "event"}

    def test_non_finite_exports_as_null(self):
        records = [json.loads(line)
                   for line in to_jsonl_lines(self._small_recorder())]
        gauge = next(r for r in records if r["record"] == "gauge")
        assert gauge["value"] is None

    def test_jsonl_is_valid_strict_json(self):
        for line in to_jsonl_lines(self._small_recorder()):
            json.loads(line)  # raises on NaN/Infinity literals

    def test_write_and_load_roundtrip(self, tmp_path):
        rec = self._small_recorder()
        path = write_jsonl(rec, tmp_path / "t.jsonl")
        assert load_path(path) == [json.loads(line)
                                   for line in to_jsonl_lines(rec)]

    def test_csv_projection(self, tmp_path):
        rec = self._small_recorder()
        text = to_csv(rec)
        assert text.splitlines()[0] == "record,name,time_s,value,detail"
        assert "counter,mac.frames" in text
        assert write_csv(rec, tmp_path / "t.csv").read_text(
            encoding="utf-8") == text

    def test_collapsed_stacks_self_time(self):
        rec = Recorder()
        outer = rec.begin("sim.trial")
        rec.clock.advance(1.0)
        with rec.span("transport.transfer"):
            rec.clock.advance(2.0)
        rec.clock.advance(1.0)
        rec.end(outer)
        stacks = dict(
            line.rsplit(" ", 1)
            for line in collapsed_stacks(rec.tracer.finished))
        assert int(stacks["sim.trial"]) == 2_000_000
        assert int(stacks["sim.trial;transport.transfer"]) == 2_000_000


class TestSummary:
    def test_load_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_jsonl("not json at all")
        with pytest.raises(ValueError):
            load_jsonl('{"no": "record field"}')

    def test_summarize_groups_by_subsystem(self):
        rec = Recorder()
        rec.count("mac.frames", 4)
        rec.count("transport.segments", 2)
        with rec.span("mac.run"):
            rec.clock.advance(1.0)
        summary = summarize(load_jsonl(to_jsonl(rec)))
        assert set(summary.subsystems) == {"mac", "transport"}
        assert summary.subsystems["mac"].counters["mac.frames"] == 4.0
        assert summary.subsystems["mac"].spans["mac.run"].count == 1
        assert summary.clock_s == pytest.approx(1.0)

    def test_render_mentions_every_metric(self):
        rec = Recorder()
        rec.count("mac.frames", 4)
        rec.gauge("mac.queue_depth", 7.0)
        rec.observe("mac.latency_s", 0.01)
        rec.event("mac.run")
        text = render(summarize(load_jsonl(to_jsonl(rec))))
        for needle in ("mac.frames", "mac.queue_depth",
                       "mac.latency_s", "mac.run", "telemetry summary"):
            assert needle in text

    def test_spans_to_collapsed_matches_export(self):
        rec = Recorder()
        with rec.span("sim.trial"):
            rec.clock.advance(0.5)
            with rec.span("transport.transfer"):
                rec.clock.advance(0.25)
        records = load_jsonl(to_jsonl(rec))
        assert spans_to_collapsed(records) \
            == collapsed_stacks(rec.tracer.finished)


class TestStackInstrumentation:
    """The wired subsystems actually report, and NullRecorder stays inert."""

    def test_uplink_simulator_reports_mac_family(self):
        from repro.network.mac import UplinkSimulator

        rec = Recorder()
        sim = UplinkSimulator(link_rate_bps=1e6, frame_bits=8192,
                              frame_success_probability=0.9,
                              rng=np.random.default_rng(0),
                              telemetry=rec)
        stats = sim.run(duration_s=1.0, packet_interval_s=0.02)
        counters = {c.name: c.value for c in rec.metrics.counters()}
        assert counters["mac.frames_offered"] == stats.offered_packets
        assert counters["mac.frames_delivered"] == stats.delivered_packets
        assert counters["mac.retransmissions"] == stats.retransmissions
        assert rec.metrics.histogram("mac.latency_s").count \
            == stats.delivered_packets
        assert rec.clock.now_s == pytest.approx(1.0)

    def test_reliable_link_reports_transport_family(self):
        from repro.transport.arq import ReliableLink

        rec = Recorder()
        link = ReliableLink(loss_probability=0.3, rtt_s=0.02,
                            rng=np.random.default_rng(1), telemetry=rec)
        stats = link.transfer([bytes([i]) * 8 for i in range(20)])
        counters = {c.name: c.value for c in rec.metrics.counters()}
        assert counters["transport.segments_offered"] == stats.offered
        assert counters["transport.segments_delivered"] == stats.delivered
        assert counters["transport.retransmissions"] \
            == stats.retransmissions
        spans = [s.name for s in rec.tracer.finished]
        assert "transport.transfer" in spans
        assert rec.metrics.gauge("transport.rto_s").value \
            == pytest.approx(stats.final_rto_s)

    def test_chaos_simulation_reports_and_spans(self):
        from repro.experiments.chaos import run

        rec = Recorder()
        outcome = run("kitchen-sink", seed=3, duration_s=8.0,
                      telemetry=rec)
        counters = {c.name: c.value for c in rec.metrics.counters()}
        assert counters["chaos.steps"] == len(outcome.result.times_s)
        assert counters["resilience.actions"] \
            == len(outcome.result.actions)
        scenario_spans = [s for s in rec.tracer.finished
                          if s.name == "chaos.scenario"]
        assert len(scenario_spans) == 1
        assert scenario_spans[0].attrs["scenario"] == "kitchen-sink"
        assert scenario_spans[0].duration_s == pytest.approx(8.0)

    def test_telemetry_does_not_change_results(self):
        from repro.experiments.chaos import run

        plain = run("kitchen-sink", seed=5, duration_s=6.0)
        traced = run("kitchen-sink", seed=5, duration_s=6.0,
                     telemetry=Recorder())
        assert plain.result.adaptive_delivery_ratio \
            == traced.result.adaptive_delivery_ratio
        assert plain.result.actions == traced.result.actions

    def test_fdm_allocator_counters(self):
        from repro.network.fdm import FdmAllocator, SpectrumExhausted

        rec = Recorder()
        allocator = FdmAllocator(telemetry=rec)
        allocator.allocate(0, 1e6)
        allocator.allocate(1, 1e6)
        allocator.block_range(allocator.band_low_hz,
                              allocator.band_low_hz + 1e6)
        allocator.reallocate(0)
        allocator.release(1)
        with pytest.raises(SpectrumExhausted):
            allocator.allocate(2, 1e12)
        counters = {c.name: c.value for c in rec.metrics.counters()}
        assert counters["fdm.allocations"] == 2
        assert counters["fdm.reallocations"] == 1
        assert counters["fdm.releases"] == 1
        assert counters["fdm.blocked_ranges"] == 1
        assert counters["fdm.exhausted"] == 1
        assert rec.metrics.gauge("fdm.allocated_bandwidth_hz").value > 0

    def test_sdm_scheduler_records_assignment(self, sampler):
        from repro.network.sdm_scheduler import (AngularSdmScheduler,
                                                 RoundRobinScheduler)

        placements = sampler.sample_many(8)
        rec = Recorder()
        channels = AngularSdmScheduler(num_channels=4).assign(
            placements, telemetry=rec)
        RoundRobinScheduler(num_channels=4).assign(placements,
                                                   telemetry=rec)
        assert len(channels) == 8
        counters = {c.name: c.value for c in rec.metrics.counters()}
        assert counters["sdm.assignments"] == 2
        assert counters["sdm.nodes"] == 16
        assert rec.metrics.gauge("sdm.min_separation_rad").value >= 0.0

    def test_failover_reports_cluster_family(self):
        from repro.experiments.chaos import run_failover

        rec = Recorder()
        outcome = run_failover(seed=0, duration_s=16.0,
                               crash_start_s=4.0, crash_duration_s=6.0,
                               telemetry=rec)
        counters = {c.name: c.value for c in rec.metrics.counters()}
        assert counters["cluster.heartbeat_deaths"] >= 1
        assert counters["cluster.failovers"] \
            == outcome.result.failover_count
        assert counters["cluster.checkpoints"] > 0
        outages = [s for s in rec.tracer.finished
                   if s.name == "cluster.ap_outage"]
        assert outages, "AP recovery should close the outage span"
        assert outages[0].duration_s > 0

    def test_monte_carlo_trials_become_spans(self):
        from repro.sim.runner import MonteCarloRunner

        rec = Recorder()
        runner = MonteCarloRunner(master_seed=7, telemetry=rec)

        def trial(rng, index):
            rec.clock.advance(0.5)
            return {"x": float(rng.random())}

        seen = []
        results = runner.run(trial, 4, progress=seen.append)
        assert [r.index for r in seen] == [0, 1, 2, 3]
        assert results == seen
        trial_spans = [s for s in rec.tracer.finished
                       if s.name == "sim.trial"]
        assert len(trial_spans) == 4
        assert rec.metrics.counter("sim.trials").value == 4
        assert len([e for e in rec.events if e.name == "sim.trial"]) == 4

    def test_run_stream_yields_incrementally(self):
        from repro.sim.runner import MonteCarloRunner

        runner = MonteCarloRunner(master_seed=1)
        stream = runner.run_stream(
            lambda rng, index: {"v": index}, 3)
        first = next(stream)
        assert first.values == {"v": 0}
        assert [r.values["v"] for r in stream] == [1, 2]
