"""Tests for repro.phy.snr: noise, cascades, link budgets."""

import numpy as np
import pytest

from repro.phy import snr as S


class TestThermalNoise:
    def test_one_hz_floor(self):
        assert S.thermal_noise_dbm(1.0) == pytest.approx(-174.0)

    def test_one_mhz(self):
        assert S.thermal_noise_dbm(1e6) == pytest.approx(-114.0)

    def test_noise_figure_adds(self):
        assert (S.thermal_noise_dbm(1e6, noise_figure_db=5.0)
                == pytest.approx(-109.0))

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            S.thermal_noise_dbm(0.0)


class TestFriisCascade:
    def test_single_stage_is_its_nf(self):
        assert S.noise_figure_cascade_db([(25.0, 2.0)]) == pytest.approx(2.0)

    def test_lna_first_dominates(self):
        # The mmX AP ordering: LNA(25 dB gain, 2 dB NF) then a 5 dB-loss
        # filter then a 9 dB-loss mixer — cascade stays close to 2 dB.
        nf = S.noise_figure_cascade_db([(25.0, 2.0), (-5.0, 5.0), (-9.0, 9.0)])
        assert 2.0 < nf < 3.0

    def test_lossy_first_is_much_worse(self):
        # Filter before LNA: its 5 dB loss adds straight onto the NF —
        # the quantitative reason for the paper's section 8.2 ordering.
        bad = S.noise_figure_cascade_db([(-5.0, 5.0), (25.0, 2.0)])
        good = S.noise_figure_cascade_db([(25.0, 2.0), (-5.0, 5.0)])
        assert bad > good + 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            S.noise_figure_cascade_db([])


class TestLinkBudget:
    def budget(self) -> S.LinkBudget:
        return S.LinkBudget(tx_eirp_dbm=10.0, rx_antenna_gain_dbi=5.0,
                            bandwidth_hz=25e6, rx_noise_figure_db=2.2)

    def test_noise_floor(self):
        floor = self.budget().noise_floor_dbm()
        assert floor == pytest.approx(-174.0 + 10 * np.log10(25e6) + 2.2)

    def test_snr_identity(self):
        b = self.budget()
        pl = 80.0
        assert b.snr_db(pl) == pytest.approx(
            b.received_power_dbm(pl) - b.noise_floor_dbm())

    def test_more_path_loss_less_snr(self):
        b = self.budget()
        assert b.snr_db(90.0) < b.snr_db(80.0)

    def test_max_path_loss_inverts_snr(self):
        b = self.budget()
        pl = b.max_path_loss_db(required_snr_db=10.0)
        assert b.snr_db(pl) == pytest.approx(10.0)

    def test_implementation_loss_hurts(self):
        lossy = S.LinkBudget(10.0, 5.0, 25e6, 2.2, implementation_loss_db=10.0)
        assert lossy.snr_db(80.0) == pytest.approx(self.budget().snr_db(80.0) - 10.0)


class TestTwoLevelSnrEstimator:
    def test_clean_levels_high_snr(self, rng):
        samples = np.concatenate([np.full(100, 1.0), np.full(100, 0.2)])
        samples += 1e-4 * rng.standard_normal(200)
        decisions = np.concatenate([np.ones(100), np.zeros(100)]).astype(int)
        assert S.estimate_snr_two_level(samples, decisions) > 40.0

    def test_known_snr_recovered(self, rng):
        distance, sigma = 1.0, 0.05
        n = 20000
        bits = rng.integers(0, 2, n)
        samples = bits * distance + sigma * rng.standard_normal(n)
        est = S.estimate_snr_two_level(samples, bits)
        expected = 10 * np.log10(distance**2 / (2 * sigma**2))
        assert est == pytest.approx(expected, abs=0.5)

    def test_missing_level_is_neg_inf(self):
        samples = np.ones(10)
        decisions = np.ones(10, dtype=int)
        assert S.estimate_snr_two_level(samples, decisions) == -np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            S.estimate_snr_two_level(np.ones(4), np.ones(3))


class TestEvmSnr:
    def test_perfect_is_inf(self):
        x = np.exp(1j * np.linspace(0, 5, 32))
        assert S.estimate_snr_from_evm(x, x) == np.inf

    def test_known_noise_level(self, rng):
        x = np.exp(1j * np.linspace(0, 50, 5000))
        noise = 0.1 * (rng.standard_normal(5000) + 1j * rng.standard_normal(5000))
        est = S.estimate_snr_from_evm(x, x + noise)
        expected = 10 * np.log10(1.0 / np.mean(np.abs(noise) ** 2))
        assert est == pytest.approx(expected, abs=0.3)

    def test_zero_signal_is_neg_inf(self):
        z = np.zeros(8, dtype=complex)
        assert S.estimate_snr_from_evm(z, z + 1.0) == -np.inf
