"""Unit tests for repro.durability: seam, faults, fsck, integrations.

The storage analogue of ``test_engine_supervisor.py``: every fault kind
the harness can inject, the atomicity of :func:`atomic_replace` across
its full crash-point sweep, the scan/repair contract of ``repro fsck``,
and the regressions the migrations bought (journal creation fsyncs its
directory; checkpoint saves are atomic; a resumed campaign is identical
to an uninterrupted one after any single crash).
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.durability import (
    DurableFile,
    FaultyFs,
    FsFault,
    FsFaultSchedule,
    InjectedFsCrash,
    IntegrityError,
    append_line,
    atomic_replace,
    canonical_json,
    digest,
    fsck_path,
    fsck_paths,
    scan_journal_text,
    seal,
    verify_sealed,
)
from repro.engine import CampaignPlan, run_campaign
from repro.engine.store import ResultStore


def trial(seed: int, index: int) -> dict:
    return {"v": index * 3}


def make_journal(path, faulty=None, num_trials=6, num_shards=3):
    """A small real campaign journal (optionally via a faulty backend)."""
    store = ResultStore(path, fs=faulty)
    run_campaign(trial, num_trials, master_seed=11,
                 num_shards=num_shards, store=store)
    return store


class TestIntegrity:
    def test_seal_verify_round_trip(self):
        payload = {"record": "shard", "values": [1, 2.5, None]}
        assert verify_sealed(seal(payload)) == payload

    def test_tampering_is_detected(self):
        sealed = seal({"record": "shard", "v": 1})
        sealed["v"] = 2
        with pytest.raises(IntegrityError):
            verify_sealed(sealed)

    def test_missing_hash_is_detected(self):
        with pytest.raises(IntegrityError):
            verify_sealed({"record": "shard"})

    def test_digest_is_key_order_independent(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestAtomicReplace:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "x.json"
        assert atomic_replace(target, "hello\n") == target
        assert target.read_text() == "hello\n"
        assert not (tmp_path / ".x.json.tmp").exists()

    def test_op_sequence_ends_with_directory_fsync(self, tmp_path):
        faulty = FaultyFs()
        atomic_replace(tmp_path / "x.json", "hi", fs=faulty)
        ops = [entry.split(":")[0] for entry in faulty.trace]
        assert ops == ["open", "write", "fsync", "replace", "fsync_dir"]
        assert faulty.trace[-1] == f"fsync_dir:{tmp_path.name}"

    @pytest.mark.parametrize("crash_op", [1, 2, 3, 4])
    def test_crash_before_publish_preserves_old_content(
            self, tmp_path, crash_op):
        target = tmp_path / "x.json"
        target.write_text("old")
        faulty = FaultyFs(FsFaultSchedule.crash_at(crash_op))
        with pytest.raises(InjectedFsCrash):
            atomic_replace(target, "new", fs=faulty)
        assert target.read_text() == "old"

    def test_crash_after_rename_still_published(self, tmp_path):
        target = tmp_path / "x.json"
        target.write_text("old")
        faulty = FaultyFs(FsFaultSchedule.crash_at(5))  # the fsync_dir
        with pytest.raises(InjectedFsCrash):
            atomic_replace(target, "new", fs=faulty)
        assert target.read_text() == "new"

    def test_enospc_survivable_and_leaves_no_debris(self, tmp_path):
        target = tmp_path / "x.json"
        target.write_text("old")
        faulty = FaultyFs(FsFaultSchedule.single("enospc", 2))
        with pytest.raises(OSError):
            atomic_replace(target, "new", fs=faulty)
        assert not faulty.crashed
        assert target.read_text() == "old"
        # A fresh attempt through the same (uncrashed) backend succeeds.
        atomic_replace(target, "newer", fs=faulty)
        assert target.read_text() == "newer"
        assert not (tmp_path / ".x.json.tmp").exists()


class TestDurableFile:
    def test_every_append_is_fsynced(self, tmp_path):
        faulty = FaultyFs()
        with DurableFile(tmp_path / "j.jsonl", fs=faulty,
                         create=True) as handle:
            handle.append("a\n")
            handle.append("b\n")
        ops = [entry.split(":")[0] for entry in faulty.trace]
        assert ops == ["open", "fsync_dir",
                       "write", "fsync", "write", "fsync"]
        assert (tmp_path / "j.jsonl").read_text() == "a\nb\n"

    def test_create_fsyncs_the_parent_directory(self, tmp_path):
        faulty = FaultyFs()
        DurableFile(tmp_path / "j.jsonl", fs=faulty, create=True).close()
        assert f"fsync_dir:{tmp_path.name}" in faulty.trace

    def test_append_after_close_raises(self, tmp_path):
        handle = DurableFile(tmp_path / "j.jsonl", create=True)
        handle.close()
        handle.close()  # idempotent
        with pytest.raises(ValueError):
            handle.append("x\n")

    def test_append_line_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("one\n")
        append_line(path, "two\n")
        assert path.read_text() == "one\ntwo\n"


class TestFaultyFs:
    def _open(self, faulty, path):
        return faulty.open(str(path),
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND)

    def test_torn_write_leaves_prefix_and_kills(self, tmp_path):
        path = tmp_path / "f"
        faulty = FaultyFs(FsFaultSchedule.single(
            "torn_write", 2, fraction=0.5))
        fd = self._open(faulty, path)
        with pytest.raises(InjectedFsCrash):
            faulty.write(fd, b"abcdefgh")
        faulty.close(fd)
        assert path.read_bytes() == b"abcd"
        assert faulty.crashed

    def test_short_write_lies_and_survives(self, tmp_path):
        path = tmp_path / "f"
        faulty = FaultyFs(FsFaultSchedule.single(
            "short_write", 2, fraction=0.25))
        fd = self._open(faulty, path)
        assert faulty.write(fd, b"abcdefgh") == 8  # the lie
        faulty.close(fd)
        assert path.read_bytes() == b"ab"
        assert not faulty.crashed

    def test_bit_flip_flips_exactly_one_bit(self, tmp_path):
        path = tmp_path / "f"
        faulty = FaultyFs(FsFaultSchedule.single("bit_flip", 2, bit=9))
        fd = self._open(faulty, path)
        assert faulty.write(fd, b"\x00\x00") == 2
        faulty.close(fd)
        assert path.read_bytes() == b"\x00\x02"

    def test_errno_faults_carry_the_right_errno(self, tmp_path):
        import errno

        for kind, code in (("enospc", errno.ENOSPC), ("eio", errno.EIO)):
            faulty = FaultyFs(FsFaultSchedule.single(kind, 1))
            with pytest.raises(OSError) as info:
                self._open(faulty, tmp_path / "f")
            assert info.value.errno == code

    def test_crashed_backend_is_inert(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"keep")
        faulty = FaultyFs(FsFaultSchedule.crash_at(1))
        with pytest.raises(InjectedFsCrash):
            self._open(faulty, path)
        # A dead process makes no syscalls: everything below must
        # change nothing on disk and raise only on open.
        with pytest.raises(InjectedFsCrash):
            self._open(faulty, path)
        faulty.replace(str(path), str(tmp_path / "g"))
        faulty.remove(str(path))
        assert path.read_bytes() == b"keep"
        assert faulty.op_count == 1

    def test_non_write_ordinals_degrade_to_crash(self, tmp_path):
        # A torn_write scheduled on an fsync still faults that ordinal.
        faulty = FaultyFs(FsFaultSchedule.single("torn_write", 2))
        fd = self._open(faulty, tmp_path / "f")
        with pytest.raises(InjectedFsCrash):
            faulty.fsync(fd)
        assert faulty.crashed

    def test_empty_schedule_is_a_pure_op_counter(self, tmp_path):
        faulty = FaultyFs()
        atomic_replace(tmp_path / "x", "data", fs=faulty)
        assert faulty.op_count == 5
        assert not faulty.crashed


class TestFsFaultSchedule:
    def test_build_is_deterministic(self):
        a = FsFaultSchedule.build(3, 50, crash=0.2, bit_flip=0.1)
        b = FsFaultSchedule.build(3, 50, crash=0.2, bit_flip=0.1)
        assert a == b
        assert a.num_faults > 0

    def test_different_seeds_differ(self):
        a = FsFaultSchedule.build(3, 200, crash=0.3)
        b = FsFaultSchedule.build(4, 200, crash=0.3)
        assert a != b

    def test_schedules_pickle(self):
        schedule = FsFaultSchedule.build(1, 20, torn_write=0.5)
        assert pickle.loads(pickle.dumps(schedule)) == schedule

    def test_rates_must_not_exceed_one(self):
        with pytest.raises(ValueError):
            FsFaultSchedule.build(0, 10, crash=0.7, eio=0.7)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FsFault(kind="gremlin")  # type: ignore[arg-type]

    def test_ordinals_are_one_based(self):
        with pytest.raises(ValueError):
            FsFaultSchedule.crash_at(0)


class TestJournalScan:
    def test_clean_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        scan = scan_journal_text(path.read_text())
        assert scan.clean
        assert scan.header is not None
        assert len(scan.records) == 3

    def test_final_bad_line_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        with open(path, "a") as fh:
            fh.write('{"record":"shard","trunc')
        scan = scan_journal_text(path.read_text())
        assert scan.torn_tail is not None
        assert not scan.corrupt
        assert len(scan.records) == 3

    def test_interior_bad_line_is_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5] + 'oops"'
        scan = scan_journal_text("\n".join(lines) + "\n")
        assert [issue.line for issue in scan.corrupt] == [2]
        assert scan.torn_tail is None
        assert len(scan.records) == 2

    def test_header_errors_are_fatal_not_line_issues(self):
        for text, fragment in [
                ("", "empty"),
                ("garbage\n", "not JSON"),
                ('{"record":"shard"}\n', "missing header"),
                ('{"record":"campaign","version":99}\n', "schema 99")]:
            scan = scan_journal_text(text)
            assert scan.header_error is not None
            assert fragment in scan.header_error


class TestFsck:
    def test_clean_journal_exits_zero(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        report = fsck_path(path)
        assert report.kind == "journal"
        assert report.exit_code == 0
        assert "clean" in report.summary()

    def test_repair_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"record":"shard"',
                                    '"record":"sharf"')
        path.write_text("\n".join(lines) + "\n")

        found = fsck_path(path)
        assert found.exit_code == 1 and not found.repaired

        repaired = fsck_path(path, repair=True)
        assert repaired.repaired
        assert repaired.quarantine_path == f"{path}.quarantine"
        assert "sharf" in (tmp_path / "j.jsonl.quarantine").read_text()

        assert fsck_path(path).exit_code == 0
        # The salvaged journal resumes: only the damaged shard re-runs.
        store = ResultStore(path)
        result = run_campaign(trial, 6, master_seed=11, num_shards=3,
                              store=store)
        assert result.num_trials == 6

    def test_headerless_journal_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        make_journal(path)
        body = path.read_text().split("\n", 1)[1]
        path.write_text("]]corrupt[[\n" + body)
        report = fsck_path(path, repair=True)
        assert report.exit_code == 2
        assert not report.repaired
        assert "FATAL" in report.summary()

    def test_checkpoint_verify_and_quarantine(self, tmp_path):
        from repro.cluster import ApCheckpoint
        from repro.node.access_point import MmxAccessPoint

        ap = MmxAccessPoint()
        ap.register_node(0, 1e6)
        path = tmp_path / "ap0.ckpt"
        ApCheckpoint.capture(ap).save(path)
        assert fsck_path(path).exit_code == 0

        path.write_text(path.read_text().replace('"plans"', '"plons"'))
        report = fsck_path(path, repair=True)
        assert report.exit_code == 1 and report.repaired
        assert not path.exists()  # poison moved aside, not restored
        assert (tmp_path / "ap0.ckpt.corrupt").exists()

    def test_telemetry_export_repair(self, tmp_path):
        from repro.telemetry import Recorder, write_jsonl

        recorder = Recorder()
        recorder.count("x.events", 3)
        path = tmp_path / "t.jsonl"
        write_jsonl(recorder, path)
        assert fsck_path(path).exit_code == 0

        with open(path, "a") as fh:
            fh.write("not json\n")
        report = fsck_path(path, repair=True)
        assert report.exit_code == 1 and report.repaired
        assert fsck_path(path).exit_code == 0

    def test_unknown_artifact_is_fatal(self, tmp_path):
        path = tmp_path / "readme.txt"
        path.write_text("hello\n")
        report = fsck_path(path)
        assert report.exit_code == 2

    def test_fsck_paths_returns_worst_exit_code(self, tmp_path):
        good = tmp_path / "j.jsonl"
        make_journal(good)
        bad = tmp_path / "nope.txt"
        bad.write_text("x\n")
        reports, exit_code = fsck_paths([good, bad])
        assert [r.exit_code for r in reports] == [0, 2]
        assert exit_code == 2


class TestStoreIntegration:
    """The migrations' regressions: store + checkpoint on the seam."""

    def test_journal_creation_fsyncs_its_directory(self, tmp_path):
        """The PR 6 journal could vanish wholesale: created, written,
        fsynced — but its *directory entry* never synced.  Creation now
        goes through atomic_replace, whose last op is the dir fsync."""
        faulty = FaultyFs()
        store = ResultStore(tmp_path / "j.jsonl", fs=faulty)
        store.create(CampaignPlan.build(master_seed=1, num_trials=2))
        ops = [entry.split(":")[0] for entry in faulty.trace]
        assert ops == ["open", "write", "fsync", "replace", "fsync_dir"]

    def test_every_shard_append_is_fsynced(self, tmp_path):
        faulty = FaultyFs()
        make_journal(tmp_path / "j.jsonl", faulty=faulty)
        writes = faulty.trace.count("write:j.jsonl")
        fsyncs = faulty.trace.count("fsync:j.jsonl")
        assert writes == 3 and fsyncs == 3

    def test_resume_after_any_single_crash_matches_clean_run(
            self, tmp_path):
        """The headline guarantee, in miniature (the full sweep is the
        ``benchmarks/test_engine_crashpoints.py`` gate)."""
        clean = run_campaign(trial, 6, master_seed=11, num_shards=3)
        probe = FaultyFs()
        make_journal(tmp_path / "probe.jsonl", faulty=probe)
        for crash_op in range(1, probe.op_count + 1):
            path = tmp_path / f"j{crash_op}.jsonl"
            faulty = FaultyFs(FsFaultSchedule.crash_at(crash_op))
            try:
                make_journal(path, faulty=faulty)
            except InjectedFsCrash:
                pass
            if path.exists():
                fsck_path(path, repair=True)
            resumed = make_journal(path)  # fresh backend = rebooted
            del resumed
            result = run_campaign(trial, 6, master_seed=11,
                                  num_shards=3,
                                  store=ResultStore(path))
            assert result.results == clean.results, \
                f"divergence after crash at op {crash_op}"

    def test_checkpoint_save_is_atomic(self, tmp_path):
        from repro.cluster import ApCheckpoint
        from repro.node.access_point import MmxAccessPoint

        ap = MmxAccessPoint()
        ap.register_node(0, 1e6)
        snapshot = ApCheckpoint.capture(ap)
        path = tmp_path / "ap0.ckpt"
        snapshot.save(path)
        before = path.read_text()

        ap.register_node(1, 1e6)
        for crash_op in range(1, 5):
            faulty = FaultyFs(FsFaultSchedule.crash_at(crash_op))
            with pytest.raises(InjectedFsCrash):
                ApCheckpoint.capture(ap).save(path, fs=faulty)
            assert path.read_text() == before
            assert ApCheckpoint.load(path) == snapshot
