"""Tests for receiver/transmitter impairments and demodulator robustness."""

import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.core.demodulator import JointDemodulator
from repro.core.otam import OtamModulator
from repro.phy import impairments as I
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits
from repro.phy.waveform import Waveform, awgn_noise, carrier


class TestCfo:
    def test_shifts_tone(self):
        fs = 8e6
        wave = carrier(0.0, 1e-3, fs)
        shifted = I.apply_cfo(wave, 1e6)
        spectrum = np.abs(np.fft.fft(shifted.samples))
        freqs = np.fft.fftfreq(len(shifted), 1 / fs)
        assert freqs[int(np.argmax(spectrum))] == pytest.approx(1e6, abs=2e3)

    def test_zero_offset_identity(self):
        wave = carrier(1e5, 1e-4, 8e6)
        out = I.apply_cfo(wave, 0.0)
        assert np.allclose(out.samples, wave.samples)

    def test_preserves_power(self):
        wave = carrier(1e5, 1e-3, 8e6)
        assert I.apply_cfo(wave, 3e5).power() == pytest.approx(wave.power())


class TestPhaseNoise:
    def test_zero_linewidth_identity(self):
        wave = carrier(0.0, 1e-4, 8e6)
        out = I.apply_phase_noise(wave, 0.0)
        assert np.allclose(out.samples, wave.samples)

    def test_preserves_envelope(self, rng):
        wave = carrier(0.0, 1e-3, 8e6, amplitude=0.7)
        out = I.apply_phase_noise(wave, 1e4, rng)
        assert np.allclose(np.abs(out.samples), 0.7)

    def test_broadens_spectrum(self, rng):
        fs = 8e6
        wave = carrier(0.0, 4e-3, fs)
        dirty = I.apply_phase_noise(wave, 5e4, rng)
        clean_spec = np.abs(np.fft.fft(wave.samples)) ** 2
        dirty_spec = np.abs(np.fft.fft(dirty.samples)) ** 2
        # Energy concentration at the carrier bin drops.
        assert dirty_spec.max() < 0.9 * clean_spec.max()

    def test_negative_linewidth_rejected(self):
        with pytest.raises(ValueError):
            I.apply_phase_noise(carrier(0, 1e-4, 8e6), -1.0)


class TestQuantize:
    def test_many_bits_near_identity(self):
        wave = carrier(1e5, 1e-4, 8e6)
        out = I.quantize(wave, 14)
        assert np.max(np.abs(out.samples - wave.samples)) < 1e-3

    def test_one_bit_is_sign(self):
        wave = carrier(1e5, 1e-4, 8e6)
        out = I.quantize(wave, 1)
        assert len(np.unique(out.samples.real)) <= 2

    def test_quantisation_noise_scales(self, rng):
        wave = Waveform(awgn_noise(4000, 1.0, rng), 8e6)
        err8 = np.mean(np.abs(I.quantize(wave, 8).samples - wave.samples) ** 2)
        err4 = np.mean(np.abs(I.quantize(wave, 4).samples - wave.samples) ** 2)
        assert err4 > 10 * err8

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            I.quantize(carrier(0, 1e-4, 8e6), 0)


class TestIqImbalance:
    def test_creates_image_tone(self):
        fs = 8e6
        wave = carrier(1e6, 1e-3, fs)
        out = I.apply_iq_imbalance(wave, gain_db=1.0, phase_deg=5.0)
        spectrum = np.abs(np.fft.fft(out.samples)) ** 2
        freqs = np.fft.fftfreq(len(out), 1 / fs)
        image_bin = int(np.argmin(np.abs(freqs + 1e6)))
        main_bin = int(np.argmin(np.abs(freqs - 1e6)))
        assert spectrum[image_bin] > 0.0
        assert spectrum[image_bin] < 0.1 * spectrum[main_bin]

    def test_no_imbalance_is_identity(self):
        wave = carrier(1e6, 1e-4, 8e6)
        out = I.apply_iq_imbalance(wave, gain_db=0.0, phase_deg=0.0)
        assert np.allclose(out.samples, wave.samples)


class TestCfoTolerance:
    def test_formula(self):
        assert I.cfo_tolerance_hz(1e6, 5e5) == pytest.approx(0.0)
        assert I.cfo_tolerance_hz(1e6, 2e6) == pytest.approx(1.5e6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            I.cfo_tolerance_hz(0.0, 1e5)


class TestDemodulatorUnderImpairments:
    """The robustness argument: coarse modulations shrug off dirt."""

    def _clean_capture(self, rng, config, h1=1.0, h0=0.15):
        bits = np.concatenate([default_preamble_bits(), random_bits(96, rng)])
        mod = OtamModulator(config, eirp_dbm=0.0)
        wave = mod.received_waveform(
            bits, ChannelResponse(h1=h1, h0=h0, paths=()))
        noise = awgn_noise(len(wave), 1e-3, rng)
        return bits, Waveform(wave.samples + noise, wave.sample_rate_hz)

    def _errors(self, config, bits, wave):
        result = JointDemodulator(config).demodulate(wave)
        n = min(bits.size, result.bits.size)
        return int(np.count_nonzero(bits[:n] != result.bits[:n]))

    def test_survives_moderate_cfo(self, rng):
        # A wide-deviation config tolerates a free-running VCO's drift.
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=16e6,
                              fsk_deviation_hz=2e6)
        bits, wave = self._clean_capture(rng, config)
        dirty = I.apply_cfo(wave, 200e3)  # ~8 ppm at 24 GHz
        assert self._errors(config, bits, dirty) == 0

    def test_survives_phase_noise(self, rng):
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        bits, wave = self._clean_capture(rng, config)
        dirty = I.apply_phase_noise(wave, 1e4, rng)
        assert self._errors(config, bits, dirty) == 0

    def test_survives_8bit_adc(self, rng):
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        bits, wave = self._clean_capture(rng, config)
        assert self._errors(config, bits, I.quantize(wave, 8)) == 0

    def test_survives_iq_imbalance(self, rng):
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        bits, wave = self._clean_capture(rng, config)
        dirty = I.apply_iq_imbalance(wave, gain_db=0.5, phase_deg=3.0)
        assert self._errors(config, bits, dirty) == 0

    def test_extreme_cfo_breaks_fsk_only_cases(self, rng):
        # Sanity: the tolerance is finite.  With equal amplitudes the
        # decision is all-FSK, and a CFO of a full tone spacing flips it.
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        bits, wave = self._clean_capture(rng, config, h1=0.5,
                                         h0=0.5 * np.exp(1j))
        dirty = I.apply_cfo(wave, config.tone_separation_hz)
        assert self._errors(config, bits, dirty) > 0
