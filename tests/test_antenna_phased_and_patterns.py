"""Tests for the phased-array baseline and pattern metrics."""

import numpy as np
import pytest

from repro.antenna.element import IsotropicElement
from repro.antenna.array import UniformLinearArray
from repro.antenna.orthogonal import measured_mmx_beams
from repro.antenna.patterns import (
    directivity_dbi,
    find_null_directions_deg,
    half_power_beamwidth_deg,
    peak_direction_deg,
)
from repro.antenna.phased_array import PhasedArray

FREQ = 24.125e9


class TestPhasedArray:
    def test_costs_scale_with_elements(self):
        small = PhasedArray(4, FREQ)
        large = PhasedArray(16, FREQ)
        assert large.cost_usd == pytest.approx(4 * small.cost_usd)
        assert large.power_consumption_w == pytest.approx(
            4 * small.power_consumption_w)

    def test_paper_eight_element_claim(self):
        # Section 6: an 8-element phased array consumes more than a watt
        # and costs a few hundred dollars.
        array = PhasedArray(8, FREQ)
        assert array.power_consumption_w > 1.0
        assert array.cost_usd > 200.0

    def test_steered_peak_location(self):
        array = PhasedArray(16, FREQ)
        pattern = array.steered_pattern(np.radians(30.0))
        assert peak_direction_deg(pattern) == pytest.approx(30.0, abs=2.0)

    def test_quantisation_limits_steering(self):
        coarse = PhasedArray(8, FREQ, phase_bits=1)
        fine = PhasedArray(8, FREQ, phase_bits=6)
        target = np.radians(17.0)
        gain_coarse = float(np.asarray(
            coarse.steered_pattern(target).power_db(target)))
        gain_fine = float(np.asarray(
            fine.steered_pattern(target).power_db(target)))
        assert gain_fine >= gain_coarse

    def test_codebook_covers_both_sides(self):
        array = PhasedArray(8, FREQ)
        dirs = array.codebook_directions_rad()
        assert dirs.size == 8
        assert dirs[0] < 0 < dirs[-1]

    def test_codebook_custom_size(self):
        assert PhasedArray(8, FREQ).codebook_directions_rad(32).size == 32

    def test_gain_includes_array_gain(self):
        array = PhasedArray(16, FREQ)
        peak = float(np.asarray(array.gain_dbi_at(0.0, 0.0)))
        assert peak == pytest.approx(10 * np.log10(16) + 5.0, abs=0.5)

    def test_minimum_elements(self):
        with pytest.raises(ValueError):
            PhasedArray(1, FREQ)


class TestPatternMetrics:
    def test_peak_direction_of_steered(self):
        lam = 0.0124
        ula = UniformLinearArray(IsotropicElement(), 8, lam / 2, FREQ)
        assert peak_direction_deg(ula) == pytest.approx(0.0, abs=0.5)

    def test_beamwidth_positive(self):
        beams = measured_mmx_beams()
        assert half_power_beamwidth_deg(beams.beam1) > 0

    def test_beamwidth_around_secondary_lobe(self):
        beams = measured_mmx_beams()
        width = half_power_beamwidth_deg(beams.beam0, around_deg=30.0)
        assert 20.0 <= width <= 60.0

    def test_nulls_found_where_designed(self):
        beams = measured_mmx_beams()
        nulls = find_null_directions_deg(beams.beam1, depth_db=-10.0)
        assert any(abs(abs(n) - 30.0) < 4.0 for n in nulls)

    def test_directivity_orders_patterns(self):
        lam = 0.0124
        narrow = UniformLinearArray(IsotropicElement(), 16, lam / 2, FREQ)
        wide = UniformLinearArray(IsotropicElement(), 2, lam / 2, FREQ)
        assert directivity_dbi(narrow) > directivity_dbi(wide)
