"""Tests for the beam-search, fixed-beam and platform baselines."""

import math

import numpy as np
import pytest

from repro.antenna.element import DipoleElement
from repro.antenna.phased_array import PhasedArray
from repro.baselines.beam_search import (
    ExhaustiveBeamSearch,
    FeedbackBeamSelection,
    HierarchicalBeamSearch,
)
from repro.baselines.fixed_beam import FixedBeamNode
from repro.baselines.platforms import PLATFORMS, comparison_table, mmx_platform
from repro.channel.noise import noise_power_dbm
from repro.sim.environment import Blocker, default_lab_room
from repro.sim.geometry import Point
from repro.sim.placement import Placement

FREQ = 24.125e9


def _metric(best_deg=20.0):
    best = np.radians(best_deg)

    def metric(direction_rad: float) -> float:
        return 30.0 * float(np.cos(direction_rad - best)) ** 2

    return metric


class TestExhaustiveSearch:
    def test_finds_best_direction(self):
        array = PhasedArray(16, FREQ)
        result = ExhaustiveBeamSearch(array).search(_metric(20.0))
        assert math.degrees(result.best_direction_rad) == pytest.approx(
            20.0, abs=8.0)

    def test_probe_count_is_codebook_size(self):
        array = PhasedArray(16, FREQ)
        result = ExhaustiveBeamSearch(array).search(_metric())
        assert result.probes == 16
        assert result.feedback_messages == 16

    def test_overhead_accounting(self):
        array = PhasedArray(8, FREQ)
        result = ExhaustiveBeamSearch(array).search(_metric())
        assert result.overhead_s(1e-3, 2e-3) == pytest.approx(
            8 * 1e-3 + 8 * 2e-3)
        assert result.node_energy_j(1e-3, 2e-3, 1.0, 0.5) == pytest.approx(
            8 * 1e-3 * 1.0 + 8 * 2e-3 * 0.5)

    def test_negative_durations_rejected(self):
        array = PhasedArray(8, FREQ)
        result = ExhaustiveBeamSearch(array).search(_metric())
        with pytest.raises(ValueError):
            result.overhead_s(-1.0, 0.0)


class TestHierarchicalSearch:
    def test_fewer_probes_than_exhaustive(self):
        array = PhasedArray(64, FREQ)
        exhaustive = ExhaustiveBeamSearch(array).search(_metric())
        hierarchical = HierarchicalBeamSearch(array).search(_metric())
        assert hierarchical.probes < exhaustive.probes

    def test_converges_near_best(self):
        array = PhasedArray(64, FREQ)
        result = HierarchicalBeamSearch(array, levels=4).search(_metric(-35.0))
        assert math.degrees(result.best_direction_rad) == pytest.approx(
            -35.0, abs=6.0)

    def test_feedback_per_level(self):
        array = PhasedArray(16, FREQ)
        result = HierarchicalBeamSearch(array, levels=3).search(_metric())
        assert result.feedback_messages == 3

    def test_invalid_parameters(self):
        array = PhasedArray(16, FREQ)
        with pytest.raises(ValueError):
            HierarchicalBeamSearch(array, levels=0)


class TestFeedbackSelection:
    def test_picks_best_fixed_beam(self):
        selector = FeedbackBeamSelection(np.radians([-30, 0, 30]))
        result = selector.select(_metric(25.0))
        assert math.degrees(result.best_direction_rad) == pytest.approx(30.0)

    def test_feedback_rate_scales_with_mobility(self):
        selector = FeedbackBeamSelection(np.radians([-30, 0, 30]))
        assert (selector.feedback_rate_hz(0.1)
                > selector.feedback_rate_hz(1.0))

    def test_needs_two_beams(self):
        with pytest.raises(ValueError):
            FeedbackBeamSelection([0.0])


class TestFixedBeamNode:
    def test_outage_when_blocked(self):
        room = default_lab_room()
        node_pos, ap_pos = Point(2.0, 4.0), Point(2.0, 0.15)
        placement = Placement(node_pos, -math.pi / 2, ap_pos, math.pi / 2)
        node = FixedBeamNode()
        noise = noise_power_dbm(25e6, 3.2)
        clear_snr, clear_outage = node.outage(placement, room,
                                              DipoleElement(), noise)
        room.add_blocker(Blocker(Point(2.0, 2.0), penetration_loss_db=35.0))
        blocked_snr, blocked_outage = node.outage(placement, room,
                                                  DipoleElement(), noise)
        room.clear_blockers()
        assert not clear_outage
        assert blocked_snr < clear_snr - 10.0

    def test_channel_gain_positive_when_facing(self):
        room = default_lab_room()
        placement = Placement(Point(2.0, 3.0), -math.pi / 2,
                              Point(2.0, 0.15), math.pi / 2)
        gain = FixedBeamNode().channel_gain(placement, room, DipoleElement())
        assert abs(gain) > 0.0


class TestPlatforms:
    def test_mmx_row_derived_from_hardware(self):
        row = mmx_platform()
        assert row.power_w == pytest.approx(1.1)
        assert row.bitrate_bps == 100e6
        assert row.energy_per_bit_j == pytest.approx(11e-9)

    def test_table_has_all_five_rows(self):
        table = comparison_table()
        assert len(table) == 5
        assert table[0].name == "mmX"

    def test_paper_table_values(self):
        assert PLATFORMS["MiRa"].cost_usd == 7000.0
        assert PLATFORMS["WiFi"].energy_per_bit_j == pytest.approx(17.5e-9)
        assert PLATFORMS["Bluetooth"].energy_per_bit_j == pytest.approx(29e-9)

    def test_mmx_beats_wifi_and_bluetooth_energy(self):
        mmx = mmx_platform()
        assert mmx.energy_per_bit_j < PLATFORMS["WiFi"].energy_per_bit_j
        assert mmx.energy_per_bit_j < PLATFORMS["Bluetooth"].energy_per_bit_j

    def test_mmwave_classification(self):
        assert mmx_platform().is_mmwave
        assert PLATFORMS["OpenMili"].is_mmwave
        assert not PLATFORMS["WiFi"].is_mmwave
