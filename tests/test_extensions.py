"""Tests for timeline simulation, SDM scheduling and spectrum models."""

import math

import numpy as np
import pytest

from repro.baselines.spectrum import (
    MmxCapacityModel,
    WifiChannelModel,
    iot_device_capacity,
)
from repro.network.sdm_scheduler import (
    AngularSdmScheduler,
    RoundRobinScheduler,
    arrival_bearing_rad,
    assignment_min_separation_rad,
)
from repro.sim.environment import Blocker, default_lab_room
from repro.sim.geometry import Point, Segment
from repro.sim.mobility import LinearCrossing, WalkingBlocker, los_blocker_between
from repro.sim.placement import Placement, PlacementSampler
from repro.sim.timeline import LinkTrace, TimelineSimulator


def _facing(distance=4.0):
    return Placement(Point(2.0, 0.15 + distance), -math.pi / 2,
                     Point(2.0, 0.15), math.pi / 2)


class TestLinkTrace:
    def _trace(self, otam, no_otam=None, inverted=None):
        n = len(otam)
        return LinkTrace(
            times_s=np.arange(n) * 0.1,
            otam_snr_db=np.asarray(otam, dtype=float),
            no_otam_snr_db=np.asarray(no_otam if no_otam is not None
                                      else otam, dtype=float),
            inverted=np.asarray(inverted if inverted is not None
                                else [False] * n))

    def test_outage_fraction(self):
        trace = self._trace([20, 5, 5, 20])
        assert trace.outage_fraction(10.0) == pytest.approx(0.5)

    def test_outage_events(self):
        trace = self._trace([20, 5, 5, 20, 5])
        events = trace.outage_events(10.0)
        assert len(events) == 2
        assert events[0][1] == pytest.approx(0.2)

    def test_mean_outage_duration_no_events(self):
        trace = self._trace([20, 20, 20])
        assert trace.mean_outage_duration_s() == 0.0

    def test_polarity_flips(self):
        trace = self._trace([20] * 5,
                            inverted=[False, True, True, False, True])
        assert trace.polarity_flips() == 3

    def test_summary_keys(self):
        summary = self._trace([20, 5]).summary()
        assert set(summary) == {"mean_otam_snr_db", "mean_no_otam_snr_db",
                                "otam_outage", "no_otam_outage",
                                "polarity_flips"}


class TestTimelineSimulator:
    def test_static_environment_constant_trace(self):
        room = default_lab_room()
        sim = TimelineSimulator(room, _facing(), time_step_s=0.5)
        trace = sim.run(3.0)
        assert trace.times_s.size == 6
        assert np.allclose(trace.otam_snr_db, trace.otam_snr_db[0])

    def test_walker_modulates_the_link(self):
        room = default_lab_room()
        placement = _facing(4.0)
        crossing = LinearCrossing(Segment(Point(0.4, 2.0), Point(3.6, 2.0)),
                                  speed_mps=1.6)
        walker = WalkingBlocker(
            los_blocker_between(placement.node_position,
                                placement.ap_position), crossing)
        sim = TimelineSimulator(room, placement, walkers=[walker],
                                time_step_s=0.25)
        trace = sim.run(8.0)
        # The baseline visibly dips when the walker crosses.
        assert trace.no_otam_snr_db.min() < trace.no_otam_snr_db.max() - 8.0
        # OTAM's worst moment beats the baseline's worst moment.
        assert trace.otam_snr_db.min() > trace.no_otam_snr_db.min() + 3.0

    def test_static_blockers_restored_after_run(self):
        room = default_lab_room()
        person = Blocker(Point(1.0, 1.0))
        room.add_blocker(person)
        sim = TimelineSimulator(room, _facing(), time_step_s=0.5)
        sim.run(1.0)
        assert room.blockers == [person]

    def test_invalid_parameters(self):
        room = default_lab_room()
        with pytest.raises(ValueError):
            TimelineSimulator(room, _facing(), time_step_s=0.0)
        with pytest.raises(ValueError):
            TimelineSimulator(room, _facing()).run(0.0)


class TestSdmScheduler:
    def _placements(self, n=20, seed=0):
        room = default_lab_room()
        return PlacementSampler(room, np.random.default_rng(seed)).sample_many(n)

    def test_round_robin_pattern(self):
        placements = self._placements(7)
        assert RoundRobinScheduler(3).assign(placements) == [0, 1, 2, 0, 1, 2, 0]

    def test_angular_uses_all_channels(self):
        placements = self._placements(20)
        channels = AngularSdmScheduler(10).assign(placements)
        assert sorted(set(channels)) == list(range(10))
        for c in range(10):
            assert channels.count(c) == 2

    def test_angular_improves_min_separation(self):
        placements = self._placements(20, seed=3)
        rr = RoundRobinScheduler(10).assign(placements)
        ang = AngularSdmScheduler(10).assign(placements)
        assert (assignment_min_separation_rad(placements, ang)
                > assignment_min_separation_rad(placements, rr))

    def test_no_sharing_returns_pi(self):
        placements = self._placements(5)
        channels = list(range(5))
        assert assignment_min_separation_rad(placements, channels) == math.pi

    def test_bearing_sign(self):
        ap = Point(2.0, 0.15)
        left = Placement(Point(0.5, 3.0), 0.0, ap, math.pi / 2)
        right = Placement(Point(3.5, 3.0), 0.0, ap, math.pi / 2)
        assert arrival_bearing_rad(left) > 0 > arrival_bearing_rad(right)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            assignment_min_separation_rad(self._placements(3), [0, 1])

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            AngularSdmScheduler(0).assign(self._placements(2))


class TestWifiChannelModel:
    def test_airtime_accumulates(self):
        wifi = WifiChannelModel()
        assert wifi.admit(1e6)
        first = wifi.airtime_used
        assert wifi.admit(1e6)
        assert wifi.airtime_used == pytest.approx(2 * first)

    def test_saturates(self):
        wifi = WifiChannelModel(low_rate_phy_bps=6e6, efficiency=0.6)
        count = 0
        while wifi.admit(1e6):
            count += 1
        # 1 Mbps at 3.6 Mbps usable -> 0.277 airtime each -> 3 devices.
        assert count == 3

    def test_fast_phy_admits_more(self):
        slow = WifiChannelModel()
        fast = WifiChannelModel()
        n_slow = n_fast = 0
        while slow.admit(1e6):
            n_slow += 1
        while fast.admit(1e6, phy_rate_bps=120e6):
            n_fast += 1
        # The paper's §1 point in one assert: the same load admits far
        # fewer devices when each runs a low-rate PHY.
        assert n_fast > 10 * n_slow

    def test_reset(self):
        wifi = WifiChannelModel()
        wifi.admit(1e6)
        wifi.reset()
        assert wifi.airtime_used == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WifiChannelModel(efficiency=0.0)


class TestMmxCapacity:
    def test_capacity_scales_with_band(self):
        small = MmxCapacityModel(band_width_hz=250e6, sdm_reuse=1)
        large = MmxCapacityModel(band_width_hz=7e9, sdm_reuse=1)
        rate = 10e6
        assert large.capacity(rate) > 20 * small.capacity(rate)

    def test_sdm_multiplies(self):
        base = MmxCapacityModel(sdm_reuse=1).capacity(10e6)
        assert MmxCapacityModel(sdm_reuse=4).capacity(10e6) == 4 * base

    def test_motivation_gap(self):
        counts = iot_device_capacity(1e6)
        # Section 1's argument: an order of magnitude or more.
        assert counts["mmx"] > 30 * counts["wifi"]

    def test_invalid_reuse(self):
        with pytest.raises(ValueError):
            MmxCapacityModel(sdm_reuse=0)
