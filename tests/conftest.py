"""Shared fixtures for the mmX test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ask_fsk import AskFskConfig
from repro.core.link import OtamLink
from repro.sim.environment import default_lab_room
from repro.sim.placement import PlacementSampler


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def room():
    """The paper's furnished 6 m x 4 m lab."""
    return default_lab_room()


@pytest.fixture
def bare_room():
    """The lab without furniture (pure 4-wall geometry)."""
    return default_lab_room(furniture=False)


@pytest.fixture
def sampler(room, rng) -> PlacementSampler:
    """Placement sampler following the section 9.2 protocol."""
    return PlacementSampler(room, rng)


@pytest.fixture
def placement(sampler):
    """One random node placement."""
    return sampler.sample()


@pytest.fixture
def config() -> AskFskConfig:
    """A small, fast modulation config for waveform-level tests."""
    return AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


@pytest.fixture
def link(placement, room, config) -> OtamLink:
    """An end-to-end link at a random placement."""
    return OtamLink(placement=placement, room=room, config=config)
