"""Tests for the device layer: controller, MmxNode, MmxAccessPoint."""


import numpy as np
import pytest

from repro.channel.multipath import ChannelResponse
from repro.core.ask_fsk import AskFskConfig
from repro.node.access_point import MmxAccessPoint
from repro.node.controller import DigitalController
from repro.node.node import MmxNode
from repro.network.fdm import SpectrumExhausted


class TestController:
    def test_prepare_round_trips_through_codec(self):
        controller = DigitalController()
        job = controller.prepare(b"camera frame")
        decoded = controller.codec.decode(job.beam_bits)
        assert decoded.payload == b"camera frame"

    def test_sequence_increments_and_wraps(self):
        controller = DigitalController()
        seqs = [controller.prepare(b"x").packet.sequence for _ in range(258)]
        assert seqs[0] == 0
        assert seqs[255] == 255
        assert seqs[256] == 0

    def test_beam_and_vco_bits_identical(self):
        job = DigitalController().prepare(b"abc")
        assert np.array_equal(job.beam_bits, job.vco_bits)

    def test_stream_chunks(self):
        controller = DigitalController()
        jobs = controller.prepare_stream(b"z" * 2500, max_payload_bytes=1024)
        assert len(jobs) == 3
        total = b"".join(controller.codec.decode(j.beam_bits).payload
                         for j in jobs)
        assert total == b"z" * 2500

    def test_stream_empty_payload(self):
        jobs = DigitalController().prepare_stream(b"")
        assert len(jobs) == 1

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            DigitalController().prepare_stream(b"abc", max_payload_bytes=0)


class TestMmxNode:
    def _node(self) -> MmxNode:
        return MmxNode(node_id=1, config=AskFskConfig(bit_rate_bps=1e6,
                                                      sample_rate_hz=8e6))

    def test_uninitialized_cannot_transmit(self):
        node = self._node()
        assert not node.is_initialized
        with pytest.raises(RuntimeError):
            node.transmit(b"data", ChannelResponse(h1=1, h0=0.1, paths=()))
        with pytest.raises(RuntimeError):
            node.channel_center_hz

    def test_channel_assignment(self):
        node = self._node()
        node.assign_channel(24.05e9)
        assert node.is_initialized
        assert node.channel_center_hz == 24.05e9

    def test_out_of_band_assignment_rejected(self):
        node = self._node()
        with pytest.raises(ValueError):
            node.assign_channel(26.0e9)

    def test_vco_cannot_reach_band_edge_below_range(self):
        node = self._node()
        # 23.9 GHz is outside both the ISM band and the VCO range.
        with pytest.raises(ValueError):
            node.assign_channel(23.9e9)

    def test_vco_control_voltages_distinct(self):
        node = self._node()
        node.assign_channel(24.1e9)
        v0, v1 = node.vco_control_voltages()
        assert v1 > v0
        # FSK nudge is a small fraction of the tuning range.
        assert (v1 - v0) < 0.05

    def test_transmit_produces_waveform(self):
        node = self._node()
        node.assign_channel(24.1e9)
        job, wave = node.transmit(b"hi", ChannelResponse(h1=1.0, h0=0.1,
                                                         paths=()))
        assert len(wave) == job.num_bits * node.config.samples_per_bit

    def test_energy_accounting(self):
        node = self._node()
        energy = node.energy_for_payload_j(1000)
        frame_bits = node.controller.codec.frame_length_bits(1000)
        assert energy == pytest.approx(
            node.hardware.total_power_w * frame_bits / 1e6)

    def test_bitrate_over_cap_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MmxNode(config=AskFskConfig(bit_rate_bps=200e6,
                                        sample_rate_hz=800e6))


class TestMmxAccessPoint:
    def test_register_allocates_channel(self):
        ap = MmxAccessPoint()
        reg = ap.register_node(1, demanded_rate_bps=10e6)
        assert reg.channel.bandwidth_hz >= 10e6
        assert ap.registered_nodes == [1]

    def test_duplicate_registration_rejected(self):
        ap = MmxAccessPoint()
        ap.register_node(1, 10e6)
        with pytest.raises(ValueError):
            ap.register_node(1, 10e6)

    def test_deregister_frees_spectrum(self):
        ap = MmxAccessPoint()
        # Fill the band with wide channels.
        count = 0
        try:
            for i in range(100):
                ap.register_node(i, 40e6)
                count += 1
        except SpectrumExhausted:
            pass
        assert count >= 2
        ap.deregister_node(0)
        ap.register_node(1000, 40e6)  # reuses the freed slot

    def test_deregister_unknown(self):
        with pytest.raises(KeyError):
            MmxAccessPoint().deregister_node(5)

    def test_demodulate_requires_registration(self):
        ap = MmxAccessPoint()
        from repro.phy.waveform import Waveform
        with pytest.raises(KeyError):
            ap.demodulate(9, Waveform(np.zeros(8, dtype=complex), 8e6))

    def test_end_to_end_packet_via_devices(self, rng):
        ap = MmxAccessPoint()
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        node = MmxNode(node_id=3, config=config)
        reg = ap.register_node(3, demanded_rate_bps=1e6, config=config)
        node.assign_channel(reg.channel.center_hz)
        channel = ChannelResponse(h1=1.0, h0=0.15, paths=())
        _, wave = node.transmit(b"sensor reading 42", channel)
        # Add mild receiver noise.
        from repro.phy.waveform import Waveform, awgn_noise
        noisy = Waveform(wave.samples + awgn_noise(len(wave), 1e-4, rng),
                         wave.sample_rate_hz)
        packet = ap.receive_packet(3, noisy)
        assert packet.payload == b"sensor reading 42"

    def test_try_receive_returns_none_on_garbage(self, rng):
        ap = MmxAccessPoint()
        config = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        ap.register_node(4, 1e6, config=config)
        from repro.phy.waveform import Waveform, awgn_noise
        garbage = Waveform(awgn_noise(800, 1.0, rng), 8e6)
        assert ap.try_receive_packet(4, garbage) is None
