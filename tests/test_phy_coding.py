"""Tests for repro.phy.coding: CRC, repetition, Hamming, interleaving."""

import numpy as np
import pytest

from repro.phy import coding as C
from repro.phy.bits import random_bits


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert C.crc16_ccitt(b"123456789") == 0x29B1

    def test_empty_is_initial(self):
        assert C.crc16_ccitt(b"") == 0xFFFF

    def test_detects_single_bit_flip(self):
        data = bytearray(b"over the air modulation")
        good = C.crc16_ccitt(bytes(data))
        data[3] ^= 0x10
        assert C.crc16_ccitt(bytes(data)) != good

    def test_bits_variant_matches_bytes(self):
        data = b"\xde\xad\xbe\xef"
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        assert C.crc16_ccitt_bits(bits) == C.crc16_ccitt(data)

    def test_bits_variant_requires_whole_bytes(self):
        with pytest.raises(ValueError):
            C.crc16_ccitt_bits([1, 0, 1])


class TestRepetition:
    def test_roundtrip_clean(self, rng):
        code = C.RepetitionCode(3)
        bits = random_bits(64, rng)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    def test_corrects_single_error_per_group(self, rng):
        code = C.RepetitionCode(3)
        bits = random_bits(32, rng)
        coded = code.encode(bits)
        # Flip the first channel bit of every group.
        coded[::3] ^= 1
        assert np.array_equal(code.decode(coded), bits)

    def test_rate(self):
        assert C.RepetitionCode(5).rate == pytest.approx(0.2)

    def test_even_repetitions_rejected(self):
        with pytest.raises(ValueError):
            C.RepetitionCode(2)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            C.RepetitionCode(3).decode([1, 0])


class TestHamming74:
    def test_roundtrip_clean(self, rng):
        code = C.HammingCode74()
        bits = random_bits(4 * 25, rng)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    def test_corrects_any_single_error(self, rng):
        code = C.HammingCode74()
        bits = random_bits(4, rng)
        coded = code.encode(bits)
        for position in range(7):
            corrupted = coded.copy()
            corrupted[position] ^= 1
            assert np.array_equal(code.decode(corrupted), bits), position

    def test_two_errors_not_guaranteed(self, rng):
        # Document the limitation: double errors may decode wrongly.
        code = C.HammingCode74()
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        coded = code.encode(bits)
        coded[0] ^= 1
        coded[1] ^= 1
        decoded = code.decode(coded)
        assert decoded.shape == bits.shape  # decodes *something*

    def test_rate(self):
        assert C.HammingCode74().rate == pytest.approx(4 / 7)

    def test_bad_lengths(self):
        code = C.HammingCode74()
        with pytest.raises(ValueError):
            code.encode([1, 0, 1])
        with pytest.raises(ValueError):
            code.decode([1, 0, 1])


class TestInterleaver:
    def test_roundtrip(self, rng):
        bits = random_bits(60, rng)
        assert np.array_equal(
            C.deinterleave(C.interleave(bits, 6), 6), bits)

    def test_spreads_bursts(self):
        code = C.RepetitionCode(3)
        bits = np.zeros(12, dtype=np.uint8)
        coded = code.encode(bits)       # 36 channel bits
        inter = C.interleave(coded, 12)
        # A 12-bit burst hits each codeword group at most once after
        # deinterleaving, so majority vote still wins everywhere.
        inter[:12] ^= 1
        recovered = code.decode(C.deinterleave(inter, 12))
        assert np.array_equal(recovered, bits)

    def test_burst_without_interleaving_fails(self):
        code = C.RepetitionCode(3)
        bits = np.zeros(12, dtype=np.uint8)
        coded = code.encode(bits)
        coded[:12] ^= 1  # wipes out four whole groups
        recovered = code.decode(coded)
        assert not np.array_equal(recovered, bits)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            C.interleave([1, 0, 1, 0], 3)
