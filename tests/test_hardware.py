"""Tests for the hardware behavioural models (VCO, switch, AP chain)."""

import numpy as np
import pytest

from repro.constants import (
    NODE_ENERGY_PER_BIT_J,
    NODE_POWER_W,
)
from repro.hardware.chains import AccessPointHardware, NodeHardware
from repro.hardware.frontend import (
    ADF5356PLL,
    HMC264SubharmonicMixer,
    HMC751LNA,
    MicrostripFilter,
)
from repro.hardware.power import EnergyModel, energy_per_bit_j
from repro.hardware.switch import ADRF5020Switch
from repro.hardware.vco import HMC533VCO


class TestVco:
    def test_endpoints_match_fig7(self):
        vco = HMC533VCO()
        assert float(vco.frequency_hz(3.5)) == pytest.approx(23.95e9)
        assert float(vco.frequency_hz(4.9)) == pytest.approx(24.25e9)

    def test_monotone_tuning(self):
        vco = HMC533VCO()
        v = np.linspace(3.5, 4.9, 100)
        f = vco.frequency_hz(v)
        assert np.all(np.diff(f) > 0)

    def test_clamps_outside_range(self):
        vco = HMC533VCO()
        assert float(vco.frequency_hz(0.0)) == pytest.approx(23.95e9)
        assert float(vco.frequency_hz(10.0)) == pytest.approx(24.25e9)

    def test_covers_ism_band(self):
        assert HMC533VCO().covers_ism_band()

    def test_inverse_tuning(self):
        vco = HMC533VCO()
        for f in (23.95e9, 24.0e9, 24.125e9, 24.25e9):
            v = vco.voltage_for_frequency(f)
            assert float(vco.frequency_hz(v)) == pytest.approx(f, abs=1e3)

    def test_inverse_out_of_range(self):
        with pytest.raises(ValueError):
            HMC533VCO().voltage_for_frequency(25.0e9)

    def test_sensitivity_positive_and_reasonable(self):
        vco = HMC533VCO()
        slope = vco.tuning_sensitivity_hz_per_v(4.2)
        # 300 MHz over 1.4 V -> ~214 MHz/V.
        assert 1.5e8 < slope < 3.0e8

    def test_fsk_nudge_is_millivolts(self):
        # A 500 kHz FSK deviation needs only a few-mV control step —
        # "simply implemented by changing the control voltage" (6.3).
        vco = HMC533VCO()
        step = 500e3 / vco.tuning_sensitivity_hz_per_v(4.2)
        assert step < 0.01

    def test_invalid_curvature(self):
        with pytest.raises(ValueError):
            HMC533VCO(curvature=0.7)


class TestSwitch:
    def test_defaults_match_datasheet(self):
        sw = ADRF5020Switch()
        assert sw.insertion_loss_db == 2.0
        assert sw.isolation_db == 65.0
        assert sw.max_bitrate_bps == 100e6

    def test_validate_bitrate(self):
        sw = ADRF5020Switch()
        sw.validate_bitrate(100e6)  # at the cap is fine
        with pytest.raises(ValueError):
            sw.validate_bitrate(150e6)
        with pytest.raises(ValueError):
            sw.validate_bitrate(0.0)

    def test_port_amplitudes(self):
        sw = ADRF5020Switch()
        through, leak = sw.port_amplitudes(0)
        assert through == pytest.approx(10 ** (-2.0 / 20.0))
        assert leak == pytest.approx(10 ** (-65.0 / 20.0))
        assert leak < 0.001 * through

    def test_port_amplitude_matrix(self):
        sw = ADRF5020Switch()
        m = sw.port_amplitude_matrix([1, 0, 1])
        assert m.shape == (3, 2)
        # Bit 1 -> port 1 carries the through path.
        assert m[0, 1] > m[0, 0]
        assert m[1, 0] > m[1, 1]

    def test_isolation_must_exceed_loss(self):
        with pytest.raises(ValueError):
            ADRF5020Switch(insertion_loss_db=10.0, isolation_db=5.0)


class TestApFrontend:
    def test_lna_defaults(self):
        lna = HMC751LNA()
        assert lna.gain_db == 25.0
        assert lna.noise_figure_db == 2.0

    def test_filter_passband_vs_stopband(self):
        filt = MicrostripFilter()
        assert float(filt.attenuation_db(24.1e9)) == pytest.approx(5.0)
        assert float(filt.attenuation_db(30.0e9)) == pytest.approx(40.0)

    def test_filter_transition_monotone(self):
        filt = MicrostripFilter()
        f = np.linspace(24.0e9, 27.0e9, 50)
        att = filt.attenuation_db(f)
        assert np.all(np.diff(att) >= -1e-9)

    def test_filter_costs_nothing(self):
        assert MicrostripFilter().cost_usd == 0.0

    def test_mixer_if_frequency(self):
        mixer = HMC264SubharmonicMixer()
        assert mixer.output_if_hz(24.0e9, 10.0e9) == pytest.approx(4.0e9)

    def test_pll_doubling(self):
        pll = ADF5356PLL()
        assert pll.effective_lo_hz() == pytest.approx(20.0e9)
        assert pll.expected_if_hz(24.0e9) == pytest.approx(4.0e9)


class TestNodeHardware:
    def test_total_power_is_paper_value(self):
        assert NodeHardware().total_power_w == pytest.approx(NODE_POWER_W)

    def test_energy_per_bit_11nj(self):
        hw = NodeHardware()
        assert hw.energy_per_bit_j() == pytest.approx(NODE_ENERGY_PER_BIT_J)
        assert hw.energy_per_bit_j() == pytest.approx(11e-9)

    def test_cost_near_110(self):
        assert NodeHardware().total_cost_usd == pytest.approx(110.0, abs=15.0)

    def test_bitrate_cap(self):
        assert NodeHardware().max_bitrate_bps == 100e6

    def test_available_eirp_exceeds_radiated(self):
        hw = NodeHardware()
        assert hw.eirp_dbm() >= hw.radiated_eirp_dbm

    def test_energy_per_bit_validates_rate(self):
        with pytest.raises(ValueError):
            NodeHardware().energy_per_bit_j(1e9)


class TestApHardware:
    def test_cascade_nf_lna_dominated(self):
        # The LNA's 25 dB gain keeps the cascade within ~1.2 dB of its
        # own 2 dB NF despite 14 dB of downstream losses.
        ap = AccessPointHardware()
        assert 2.0 < ap.cascade_noise_figure_db < 3.5

    def test_if_frequency(self):
        assert AccessPointHardware().if_frequency_hz(24.0e9) == pytest.approx(4.0e9)

    def test_cheaper_than_commercial_platforms(self):
        # MiRa/OpenMili cost thousands; the mmX AP front end is tens.
        assert AccessPointHardware().total_cost_usd < 300.0

    def test_cascade_gain_positive(self):
        assert AccessPointHardware().cascade_gain_db > 0.0


class TestEnergyModel:
    def model(self) -> EnergyModel:
        return EnergyModel(active_power_w=1.1, idle_power_w=0.3,
                           bitrate_bps=100e6)

    def test_energy_per_bit(self):
        assert energy_per_bit_j(1.1, 100e6) == pytest.approx(11e-9)

    def test_duty_cycle(self):
        assert self.model().duty_cycle_for_load(10e6) == pytest.approx(0.1)

    def test_average_power_interpolates(self):
        m = self.model()
        assert m.average_power_w(0.0) == pytest.approx(0.3)
        assert m.average_power_w(100e6) == pytest.approx(1.1)
        assert 0.3 < m.average_power_w(50e6) < 1.1

    def test_idle_overhead_dominates_light_loads(self):
        m = self.model()
        # At 1% duty cycle the idle floor dwarfs the per-bit energy.
        assert m.energy_per_delivered_bit_j(1e6) > 10 * energy_per_bit_j(1.1, 100e6)

    def test_battery_life(self):
        m = self.model()
        hours = m.battery_life_hours(battery_wh=10.0, offered_load_bps=10e6)
        assert hours == pytest.approx(10.0 / m.average_power_w(10e6))

    def test_overload_rejected(self):
        with pytest.raises(ValueError):
            self.model().duty_cycle_for_load(200e6)

    def test_invalid_powers(self):
        with pytest.raises(ValueError):
            EnergyModel(active_power_w=0.1, idle_power_w=0.5, bitrate_bps=1e6)
