"""Tests for repro.phy.preamble: Barker correlation and polarity."""

import numpy as np
import pytest

from repro.phy import preamble as P
from repro.phy.bits import random_bits


class TestBarker:
    def test_length_13(self):
        assert P.BARKER13.size == 13

    def test_autocorrelation_sidelobes(self):
        bipolar = 2.0 * P.BARKER13.astype(float) - 1.0
        full = np.correlate(bipolar, bipolar, mode="full")
        peak = full[len(bipolar) - 1]
        sidelobes = np.delete(full, len(bipolar) - 1)
        assert peak == pytest.approx(13.0)
        assert np.max(np.abs(sidelobes)) <= 1.0 + 1e-9

    def test_default_preamble_repeats(self):
        pre = P.default_preamble_bits(repeats=3)
        assert pre.size == 39
        assert np.array_equal(pre[:13], P.BARKER13)

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            P.default_preamble_bits(0)


def _soft(bits):
    return 2.0 * np.asarray(bits, dtype=float) - 1.0


class TestLocatePreamble:
    def test_finds_at_start(self, rng):
        pre = P.default_preamble_bits()
        stream = np.concatenate([pre, random_bits(64, rng)])
        det = P.locate_preamble(_soft(stream))
        assert det.found
        assert det.start_index == 0
        assert not det.inverted

    def test_finds_at_offset(self, rng):
        pre = P.default_preamble_bits()
        stream = np.concatenate([random_bits(17, rng), pre,
                                 random_bits(40, rng)])
        det = P.locate_preamble(_soft(stream))
        assert det.found
        assert det.start_index == 17

    def test_detects_inversion(self, rng):
        # The blocked-LoS case: every bit flipped.
        pre = P.default_preamble_bits()
        stream = np.concatenate([pre, random_bits(64, rng)])
        det = P.locate_preamble(_soft(1 - stream))
        assert det.found
        assert det.inverted
        assert det.start_index == 0

    def test_absent_preamble_not_found(self, rng):
        stream = random_bits(40, rng)
        det = P.locate_preamble(_soft(stream), threshold=0.9)
        assert not det.found

    def test_too_short_stream(self):
        det = P.locate_preamble(np.ones(5))
        assert not det.found
        assert det.start_index == -1

    def test_tolerates_bit_errors(self, rng):
        pre = P.default_preamble_bits()
        stream = np.concatenate([pre, random_bits(64, rng)])
        corrupted = stream.copy()
        corrupted[[2, 9, 20]] ^= 1  # 3 of 26 preamble bits wrong
        det = P.locate_preamble(_soft(corrupted))
        assert det.found
        assert det.start_index == 0
        assert not det.inverted

    def test_noisy_soft_values(self, rng):
        pre = P.default_preamble_bits()
        stream = np.concatenate([pre, random_bits(64, rng)])
        soft = _soft(stream) + 0.4 * rng.standard_normal(stream.size)
        det = P.locate_preamble(soft)
        assert det.found
        assert det.start_index == 0


class TestCorrelate:
    def test_peak_value_is_one_for_exact_match(self):
        pre = P.default_preamble_bits()
        corr = P.correlate_preamble(_soft(pre), pre)
        assert corr[0] == pytest.approx(1.0)

    def test_inverted_match_is_minus_one(self):
        pre = P.default_preamble_bits()
        corr = P.correlate_preamble(-_soft(pre), pre)
        assert corr[0] == pytest.approx(-1.0)

    def test_empty_when_stream_short(self):
        assert P.correlate_preamble(np.ones(3), P.BARKER13).size == 0
