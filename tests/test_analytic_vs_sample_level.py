"""Cross-validation: the analytic link model vs sample-level simulation.

The benchmarks trust `snr_breakdown()` to stand in for real captures.
These tests close the loop: at matched noise bandwidths, the analytic
decision SNR must agree with the SNR the demodulator *measures* on
actual waveforms, and the predicted BER ordering must match counted
errors.
"""

import math

import numpy as np
import pytest

from repro.core.ask_fsk import AskFskConfig
from repro.core.link import OtamLink
from repro.phy.bits import random_bits
from repro.phy.preamble import default_preamble_bits
from repro.sim.environment import Blocker, default_lab_room
from repro.sim.geometry import Point
from repro.sim.placement import Placement

CONFIG = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)


def _facing(distance: float) -> Placement:
    return Placement(Point(2.0, 0.15 + distance), -math.pi / 2,
                     Point(2.0, 0.15), math.pi / 2)


def _frame(rng, n=256):
    return np.concatenate([default_preamble_bits(), random_bits(n, rng)])


class TestSnrAgreement:
    @pytest.mark.parametrize("distance", [1.5, 3.0, 5.0])
    def test_measured_snr_tracks_analytic(self, rng, distance):
        """Demodulator-measured decision SNR vs the analytic branch SNR.

        The analytic ASK branch SNR is defined in the *bit-rate* noise
        bandwidth; the demodulator integrates each bit, which realises
        exactly that bandwidth — so the two must agree within a few dB
        (envelope detection loses a little at low SNR, estimators are
        noisy at high SNR).
        """
        room = default_lab_room()
        link = OtamLink(placement=_facing(distance), room=room,
                        config=CONFIG)
        channel = link.channel_response()
        analytic = link.snr_breakdown(
            channel, bandwidth_hz=CONFIG.bit_rate_bps)
        report = link.simulate_transmission(_frame(rng), channel=channel,
                                            rng=rng)
        measured = report.demod.snr_db
        predicted = analytic.otam_snr_db
        if predicted > 45.0:
            # Estimator saturates (finite bits, no errors) — just check
            # the measurement is also excellent.
            assert measured > 30.0
        else:
            assert measured == pytest.approx(predicted, abs=6.0)

    def test_blocked_placement_agreement(self, rng):
        room = default_lab_room()
        room.add_blocker(Blocker(Point(2.0, 1.5), penetration_loss_db=30.0))
        link = OtamLink(placement=_facing(3.0), room=room, config=CONFIG)
        channel = link.channel_response()
        analytic = link.snr_breakdown(
            channel, bandwidth_hz=CONFIG.bit_rate_bps)
        report = link.simulate_transmission(_frame(rng), channel=channel,
                                            rng=rng)
        room.clear_blockers()
        if analytic.otam_snr_db < 45.0:
            assert report.demod.snr_db == pytest.approx(
                analytic.otam_snr_db, abs=7.0)


class TestBerAgreement:
    def test_measured_waterfall_is_monotone(self):
        """Counted BER walks the waterfall as the link degrades.

        The analytic table predicts *relative* behaviour (the paper uses
        it the same way); the envelope detector realises a few dB less
        than the idealised table at low per-sample SNR, so we assert
        ordering and regime, not absolute agreement.
        """
        room = default_lab_room()
        placement = _facing(2.5)
        rng = np.random.default_rng(99)
        bits = _frame(rng, n=4000)
        measured = []
        predicted = []
        for extra_loss in (28.0, 36.0, 44.0, 52.0):
            link = OtamLink(placement=placement, room=room, config=CONFIG,
                            implementation_loss_db=extra_loss)
            channel = link.channel_response()
            analytic = link.snr_breakdown(
                channel, bandwidth_hz=CONFIG.bit_rate_bps)
            predicted.append(analytic.ber_with_otam())
            report = link.simulate_transmission(bits, channel=channel,
                                                rng=rng)
            measured.append(report.ber)
        # Both walk the same direction down the waterfall...
        assert predicted == sorted(predicted)
        assert measured == sorted(measured)
        # ...and the regimes line up: clean at the top, broken at the
        # bottom.
        assert measured[0] == 0.0
        assert measured[-1] > 0.05

    def test_otam_beats_baseline_when_blocked_sample_level(self, rng):
        """The Fig. 10/11 claim at the waveform level, not just analytic."""
        room = default_lab_room()
        room.add_blocker(Blocker(Point(2.0, 2.0), penetration_loss_db=32.0))
        link = OtamLink(placement=_facing(4.0), room=room, config=CONFIG,
                        implementation_loss_db=32.0)
        channel = link.channel_response()
        bits = _frame(rng, n=3000)
        with_otam = link.simulate_transmission(bits, channel=channel,
                                               rng=rng, use_otam=True)
        without = link.simulate_transmission(bits, channel=channel,
                                             rng=rng, use_otam=False)
        room.clear_blockers()
        assert with_otam.ber < without.ber
