"""Tests for repro.antenna.element."""

import numpy as np
import pytest

from repro.antenna.element import DipoleElement, IsotropicElement, PatchElement


class TestPatchElement:
    def test_boresight_peak(self):
        patch = PatchElement()
        assert float(patch.field(0.0)) == pytest.approx(1.0)

    def test_symmetric(self):
        patch = PatchElement()
        theta = np.radians([10, 30, 60, 85])
        assert patch.field(theta) == pytest.approx(patch.field(-theta))

    def test_monotone_rolloff_forward(self):
        patch = PatchElement()
        theta = np.radians(np.linspace(0, 85, 30))
        values = patch.field(theta)
        assert np.all(np.diff(values) <= 1e-12)

    def test_back_lobe_floor(self):
        patch = PatchElement(back_lobe_db=-20.0)
        behind = patch.field(np.radians(180.0))
        assert float(behind) == pytest.approx(10 ** (-20 / 20))

    def test_power_db_at_peak_zero(self):
        assert float(PatchElement().power_db(0.0)) == pytest.approx(0.0)

    def test_exponent_controls_width(self):
        narrow = PatchElement(exponent=2.0)
        wide = PatchElement(exponent=0.5)
        theta = np.radians(50.0)
        assert float(narrow.field(theta)) < float(wide.field(theta))


class TestDipoleElement:
    def test_defaults_match_paper(self):
        dipole = DipoleElement()
        assert dipole.gain_dbi == 5.0
        assert dipole.beamwidth_deg == 62.0

    def test_peak_at_boresight(self):
        assert float(DipoleElement().power_db(0.0)) == pytest.approx(0.0)

    def test_3db_at_half_beamwidth(self):
        dipole = DipoleElement()
        edge = np.radians(dipole.beamwidth_deg / 2.0)
        assert float(dipole.power_db(edge)) == pytest.approx(-3.0)

    def test_floor_far_out(self):
        dipole = DipoleElement(floor_db=-15.0)
        assert float(dipole.power_db(np.radians(150.0))) == pytest.approx(-15.0)

    def test_absolute_gain(self):
        dipole = DipoleElement()
        assert float(dipole.gain_dbi_at(0.0)) == pytest.approx(5.0)

    def test_field_consistent_with_power(self):
        dipole = DipoleElement()
        theta = np.radians(20.0)
        assert float(dipole.field(theta)) == pytest.approx(
            10 ** (float(dipole.power_db(theta)) / 20.0))


class TestIsotropic:
    def test_unit_everywhere(self):
        iso = IsotropicElement()
        theta = np.radians(np.linspace(-180, 180, 19))
        assert iso.field(theta) == pytest.approx(np.ones(19))
        assert iso.power_db(theta) == pytest.approx(np.zeros(19))
