"""Property-based tests (hypothesis) for :mod:`repro.units` edge cases.

``repro.units`` is the repo's single conversion authority (reprolint's
UNITS002 forbids hand-rolled ``10**(x/10)`` anywhere else), so its
round-trip identities and edge behaviour — zeros mapping to ``-inf`` dB,
negative amplitudes folding to magnitude, scalar/array parity — are load
bearing for every link-budget computation downstream.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units

finite_db = st.floats(min_value=-300.0, max_value=300.0,
                      allow_nan=False, allow_infinity=False)
positive_linear = st.floats(min_value=1e-30, max_value=1e30,
                            allow_nan=False, allow_infinity=False)
db_arrays = st.lists(finite_db, min_size=1, max_size=16)


class TestScalarRoundTrips:
    @given(finite_db)
    def test_db_linear_db(self, db):
        assert float(units.linear_to_db(units.db_to_linear(db))) == \
            pytest.approx(db, abs=1e-9)

    @given(positive_linear)
    def test_linear_db_linear(self, ratio):
        assert float(units.db_to_linear(units.linear_to_db(ratio))) == \
            pytest.approx(ratio, rel=1e-9)

    @given(finite_db)
    def test_dbm_milliwatts_dbm(self, dbm):
        assert float(units.milliwatts_to_dbm(units.dbm_to_milliwatts(dbm))) \
            == pytest.approx(dbm, abs=1e-9)

    @given(finite_db)
    def test_dbm_watts_dbm(self, dbm):
        assert float(units.watts_to_dbm(units.dbm_to_watts(dbm))) == \
            pytest.approx(dbm, abs=1e-9)

    @given(finite_db)
    def test_db_amplitude_db(self, db):
        assert float(units.amplitude_to_db(units.db_to_amplitude(db))) == \
            pytest.approx(db, abs=1e-9)

    @given(positive_linear)
    def test_amplitude_db_amplitude(self, amp):
        assert float(units.db_to_amplitude(units.amplitude_to_db(amp))) == \
            pytest.approx(amp, rel=1e-9)


class TestIdentitiesAcrossScales:
    @given(finite_db)
    def test_power_is_amplitude_squared(self, db):
        # A dB value interpreted as power ratio equals the square of the
        # same value interpreted as amplitude ratio.
        power = float(units.db_to_linear(db))
        amp = float(units.db_to_amplitude(db))
        assert power == pytest.approx(amp * amp, rel=1e-9)

    @given(finite_db)
    def test_watts_is_milliwatts_over_1000(self, dbm):
        assert float(units.dbm_to_watts(dbm)) == pytest.approx(
            float(units.dbm_to_milliwatts(dbm)) * 1e-3, rel=1e-12)

    @given(finite_db, finite_db)
    def test_dbm_difference_is_db_ratio(self, a, b):
        assert float(units.dbm_to_db_ratio(a, b)) == pytest.approx(
            a - b, abs=1e-9)


class TestEdgeCases:
    def test_zero_power_is_neg_inf_db(self):
        assert float(units.linear_to_db(0.0)) == -math.inf
        assert float(units.watts_to_dbm(0.0)) == -math.inf
        assert float(units.milliwatts_to_dbm(0.0)) == -math.inf
        assert float(units.amplitude_to_db(0.0)) == -math.inf

    def test_neg_inf_db_is_zero_power(self):
        assert float(units.db_to_linear(-math.inf)) == 0.0
        assert float(units.db_to_amplitude(-math.inf)) == 0.0
        assert float(units.dbm_to_milliwatts(-math.inf)) == 0.0

    @given(positive_linear)
    def test_negative_amplitude_folds_to_magnitude(self, amp):
        assert float(units.amplitude_to_db(-amp)) == pytest.approx(
            float(units.amplitude_to_db(amp)), abs=1e-12)

    @given(st.lists(st.one_of(st.just(0.0), positive_linear),
                    min_size=1, max_size=16))
    def test_array_with_zeros_round_trips(self, values):
        # -inf entries must survive the round trip without warnings
        # poisoning their finite neighbours.
        arr = np.asarray(values, dtype=np.float64)
        back = units.db_to_linear(units.linear_to_db(arr))
        assert np.allclose(back, arr, rtol=1e-9, atol=0.0)


class TestScalarArrayParity:
    @given(db_arrays)
    def test_db_to_linear_matches_elementwise(self, dbs):
        vec = units.db_to_linear(np.asarray(dbs))
        scalars = [float(units.db_to_linear(d)) for d in dbs]
        assert np.allclose(vec, scalars, rtol=1e-12)
        assert vec.dtype == np.float64

    @given(db_arrays)
    def test_dbm_to_milliwatts_matches_elementwise(self, dbms):
        vec = units.dbm_to_milliwatts(np.asarray(dbms))
        scalars = [float(units.dbm_to_milliwatts(d)) for d in dbms]
        assert np.allclose(vec, scalars, rtol=1e-12)

    @given(finite_db)
    def test_scalar_input_returns_scalar_float(self, db):
        out = units.db_to_linear(db)
        assert np.ndim(out) == 0
        assert float(out) >= 0.0
