"""repro.engine supervision: deadlines, retries, quarantine, degrade.

The load-bearing guarantees under test:

* the supervision loop (:class:`~repro.engine.ShardSupervisor`) is
  backend-agnostic, so a scripted virtual-clock backend can exercise
  every failure path — retry/backoff, absolute and adaptive deadlines,
  quarantine, the in-process degrade fallback — with zero real sleeps;
* a supervised campaign in which no fault fires is byte-identical to
  the serial reference (values, seeds, and telemetry export);
* under any seeded worker-fault schedule the supervisor terminates with
  either a full result or an *explicit* partial one — never a silent
  hole, never a hang;
* failed attempts and quarantine decisions are journaled, and a
  quarantined campaign resumes from its journal to completion.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Campaign,
    CampaignPlan,
    EngineError,
    InjectedWorkerCrash,
    PartialCampaignResult,
    ResultStore,
    SerialExecutor,
    ShardResult,
    ShardSupervisor,
    ShardValidationError,
    SupervisedPool,
    SupervisionPolicy,
    WorkerFault,
    WorkerFaultSchedule,
    corrupt_shard_result,
    run_campaign,
    run_shard,
    seed_fingerprint,
    validate_shard_result,
)
from repro.engine.supervisor import AttemptCompletion
from repro.sim.runner import MonteCarloRunner
from repro.telemetry import Recorder
from repro.telemetry.export import to_jsonl


def uniform_trial(rng, index):
    """Module-level so SupervisedPool workers can unpickle it."""
    return {"x": float(rng.uniform()), "index": index}


def _payload(shard):
    """A valid ShardResult for ``shard`` without running any trials."""
    return ShardResult(
        shard_id=shard.shard_id,
        trials=tuple((t.index, t.seed, {"v": float(t.index)})
                     for t in shard.trials))


class ScriptedBackend:
    """A WorkBackend on a virtual clock with scripted attempt outcomes.

    ``script`` maps ``(shard_id, attempt)`` to one of ``("ok", runtime)``,
    ``("error", runtime)``, ``("corrupt", runtime)`` or ``("hang",)``
    (never finishes); unscripted attempts are ``("ok", 1.0)``.  Time only
    advances inside ``wait``/``sleep``, so every supervisor decision is
    replayed deterministically and instantly.
    """

    def __init__(self, script=None, slots=2, inline_fail=()):
        self.script = dict(script or {})
        self._slots = slots
        self.inline_fail = set(inline_fail)
        self.now = 0.0
        self.running = {}
        self.submissions = []
        self.abandoned = []
        self.inline_runs = []
        self.closed = 0
        self._counter = 0

    @property
    def slots(self):
        return self._slots

    def now_s(self):
        return self.now

    def submit(self, shard, attempt):
        self._counter += 1
        token = f"attempt-{self._counter}"
        outcome = self.script.get((shard.shard_id, attempt), ("ok", 1.0))
        finish = (math.inf if outcome[0] == "hang"
                  else self.now + outcome[1])
        self.running[token] = (finish, outcome, shard, attempt)
        self.submissions.append((self.now, shard.shard_id, attempt))
        return token

    def wait(self, timeout_s):
        horizon = math.inf if timeout_s is None else self.now + timeout_s
        next_finish = min((f for f, *_ in self.running.values()),
                          default=math.inf)
        if next_finish > horizon:
            # A hung attempt with no deadline would block forever;
            # surface that as a test failure instead of spinning.
            assert horizon < math.inf, \
                "supervisor blocked forever on a hung attempt"
            self.now = horizon
            return []
        self.now = next_finish
        done = []
        for token, (finish, outcome, shard, attempt) \
                in list(self.running.items()):
            if finish <= self.now:
                del self.running[token]
                done.append(self._complete(token, outcome, shard, attempt))
        return done

    def _complete(self, token, outcome, shard, attempt):
        if outcome[0] == "error":
            return AttemptCompletion(
                token=token,
                error=RuntimeError(
                    f"scripted crash: shard {shard.shard_id} "
                    f"attempt {attempt}"))
        result = _payload(shard)
        if outcome[0] == "corrupt":
            result = corrupt_shard_result(result)
        return AttemptCompletion(token=token, result=result)

    def sleep(self, duration_s):
        self.now += duration_s

    def abandon(self, token):
        self.running.pop(token, None)
        self.abandoned.append(token)

    def run_inline(self, shard):
        self.inline_runs.append(shard.shard_id)
        if shard.shard_id in self.inline_fail:
            raise RuntimeError(
                f"scripted inline failure: shard {shard.shard_id}")
        return _payload(shard)

    def close(self):
        self.closed += 1


def _shards(num_trials=6, num_shards=3):
    return CampaignPlan.build(master_seed=0, num_trials=num_trials,
                              num_shards=num_shards).shards


def _drive(policy, backend, shards, **kwargs):
    supervisor = ShardSupervisor(policy, **kwargs)
    results = list(supervisor.run(backend, shards))
    assert supervisor.report is not None
    return results, supervisor.report


class TestSupervisionPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = SupervisionPolicy(backoff_base_s=0.05,
                                   backoff_factor=2.0, backoff_max_s=5.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3, 4)] \
            == [0.05, 0.1, 0.2, 0.4]
        assert policy.backoff_s(1) == policy.backoff_s(1)

    def test_backoff_is_capped(self):
        policy = SupervisionPolicy(backoff_base_s=1.0,
                                   backoff_factor=10.0, backoff_max_s=3.0)
        assert policy.backoff_s(5) == 3.0

    def test_backoff_rejects_zero_based_attempts(self):
        with pytest.raises(ValueError, match="1-based"):
            SupervisionPolicy().backoff_s(0)

    def test_deadline_none_when_nothing_armed(self):
        policy = SupervisionPolicy(shard_timeout_s=None,
                                   adaptive_timeout_factor=None)
        assert policy.deadline_s([1.0] * 10) is None

    def test_absolute_deadline_applies_immediately(self):
        policy = SupervisionPolicy(shard_timeout_s=7.5,
                                   adaptive_timeout_factor=None)
        assert policy.deadline_s([]) == 7.5

    def test_adaptive_deadline_needs_min_samples(self):
        policy = SupervisionPolicy(shard_timeout_s=None,
                                   adaptive_timeout_factor=4.0,
                                   adaptive_min_samples=3)
        assert policy.deadline_s([1.0, 1.0]) is None
        assert policy.deadline_s([1.0, 1.0, 1.0]) == 4.0

    def test_adaptive_deadline_has_a_floor(self):
        policy = SupervisionPolicy(shard_timeout_s=None,
                                   adaptive_timeout_factor=2.0,
                                   adaptive_min_samples=1,
                                   adaptive_floor_s=0.5)
        assert policy.deadline_s([1e-6, 1e-6, 1e-6]) == 0.5

    def test_deadline_takes_the_tighter_bound(self):
        policy = SupervisionPolicy(shard_timeout_s=3.0,
                                   adaptive_timeout_factor=8.0,
                                   adaptive_min_samples=1)
        assert policy.deadline_s([1.0]) == 3.0
        assert policy.deadline_s([0.1]) == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [
        {"max_attempts": 0},
        {"backoff_base_s": -0.1},
        {"backoff_factor": 0.5},
        {"backoff_max_s": -1.0},
        {"shard_timeout_s": 0.0},
        {"adaptive_timeout_factor": 0.9},
        {"adaptive_timeout_percentile": 0.0},
        {"adaptive_timeout_percentile": 101.0},
        {"adaptive_min_samples": 0},
        {"adaptive_floor_s": -0.1},
        {"on_failure": "explode"},
    ])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            SupervisionPolicy(**bad)


class TestValidation:
    def test_fingerprint_is_stable_and_order_sensitive(self):
        pairs = [(0, 11), (1, 22)]
        assert seed_fingerprint(pairs) == seed_fingerprint(list(pairs))
        assert seed_fingerprint(pairs) \
            != seed_fingerprint(list(reversed(pairs)))

    def test_genuine_shard_result_validates(self):
        shard = _shards()[1]
        validate_shard_result(
            run_shard(uniform_trial, shard, 6), shard)

    def test_wrong_shard_id_rejected(self):
        shards = _shards()
        with pytest.raises(ShardValidationError, match="shard 0 for"):
            validate_shard_result(_payload(shards[0]), shards[1])

    def test_truncated_trials_rejected(self):
        shard = _shards()[0]
        honest = _payload(shard)
        truncated = ShardResult(shard_id=shard.shard_id,
                                trials=honest.trials[:-1])
        with pytest.raises(ShardValidationError, match="planned 2"):
            validate_shard_result(truncated, shard)

    def test_corrupted_payload_fails_the_fingerprint(self):
        shard = _shards()[2]
        with pytest.raises(ShardValidationError,
                           match="fingerprint mismatch"):
            validate_shard_result(corrupt_shard_result(_payload(shard)),
                                  shard)

    def test_non_dict_values_rejected(self):
        shard = _shards()[0]
        bad = ShardResult(
            shard_id=shard.shard_id,
            trials=tuple((t.index, t.seed, 42) for t in shard.trials))
        with pytest.raises(ShardValidationError, match="not dict"):
            validate_shard_result(bad, shard)


class TestWorkerFaultSchedule:
    def test_fault_kinds_validated(self):
        with pytest.raises(ValueError, match="unknown worker fault"):
            WorkerFault(kind="meltdown")
        with pytest.raises(ValueError, match="negative"):
            WorkerFault(kind="hang", delay_s=-1.0)

    def test_build_is_seed_deterministic(self):
        kwargs = dict(crash=0.3, hang=0.2, corrupt=0.2,
                      max_faulty_attempts=2)
        a = WorkerFaultSchedule.build(7, 20, **kwargs)
        b = WorkerFaultSchedule.build(7, 20, **kwargs)
        assert a.faults == b.faults
        assert a.num_faults > 0

    def test_build_validates_rates(self):
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            WorkerFaultSchedule.build(0, 4, crash=-0.1)
        with pytest.raises(ValueError, match="more than 1"):
            WorkerFaultSchedule.build(0, 4, crash=0.6, hang=0.6)
        with pytest.raises(ValueError, match="max_faulty_attempts"):
            WorkerFaultSchedule.build(0, 4, max_faulty_attempts=-1)

    def test_worst_attempt_bounds_the_sabotage(self):
        schedule = WorkerFaultSchedule.build(3, 16, crash=0.5,
                                             max_faulty_attempts=2)
        assert any(schedule.worst_attempt(s) for s in range(16))
        assert all(schedule.worst_attempt(s) <= 2 for s in range(16))
        assert schedule.fault_for(0, 99) is None

    def test_crash_raises_on_cue(self):
        schedule = WorkerFaultSchedule(
            faults={(1, 1): WorkerFault(kind="crash")})
        schedule.apply_before(0, 1)  # not scripted: no-op
        schedule.apply_before(1, 2)  # later attempt: no-op
        with pytest.raises(InjectedWorkerCrash, match="shard 1 attempt 1"):
            schedule.apply_before(1, 1)

    def test_corrupt_tampers_only_on_cue(self):
        shard = _shards()[1]
        schedule = WorkerFaultSchedule(
            faults={(1, 1): WorkerFault(kind="corrupt")})
        honest = _payload(shard)
        assert schedule.apply_after(honest, 2) is honest
        tampered = schedule.apply_after(honest, 1)
        with pytest.raises(ShardValidationError):
            validate_shard_result(tampered, shard)
        validate_shard_result(honest, shard)  # original untouched


class TestShardSupervisor:
    """The supervision loop on the scripted virtual-clock backend."""

    def test_fault_free_run_yields_every_shard(self):
        backend = ScriptedBackend()
        results, report = _drive(SupervisionPolicy(), backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 1, 2]
        assert report.attempts == 3
        assert report.retries == 0
        assert report.quarantined == ()
        assert report.failures == ()
        assert backend.closed == 1

    def test_error_is_retried_after_backoff(self):
        backend = ScriptedBackend(script={(1, 1): ("error", 1.0)})
        policy = SupervisionPolicy(backoff_base_s=0.5)
        results, report = _drive(policy, backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 1, 2]
        assert report.retries == 1
        assert [f.kind for f in report.failures] == ["error"]
        first, second = [(t, a) for t, s, a in backend.submissions
                         if s == 1]
        assert first[1] == 1 and second[1] == 2
        # failed at t=1.0; the retry obeys the deterministic backoff
        assert second[0] >= 1.0 + policy.backoff_s(1)

    def test_corrupt_payload_is_invalid_and_retried(self):
        backend = ScriptedBackend(script={(2, 1): ("corrupt", 1.0)})
        results, report = _drive(SupervisionPolicy(), backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 1, 2]
        assert [f.kind for f in report.failures] == ["invalid"]
        assert "fingerprint" in report.failures[0].detail
        for result in results:  # nothing tampered was merged
            validate_shard_result(result, _shards()[result.shard_id])

    def test_hung_attempt_times_out_and_retries(self):
        backend = ScriptedBackend(script={(0, 1): ("hang",)})
        policy = SupervisionPolicy(shard_timeout_s=2.0,
                                   adaptive_timeout_factor=None)
        results, report = _drive(policy, backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 1, 2]
        assert [f.kind for f in report.failures] == ["timeout"]
        assert "2.000 s deadline" in report.failures[0].detail
        assert len(backend.abandoned) == 1

    def test_poison_shard_is_quarantined(self):
        backend = ScriptedBackend(
            script={(1, a): ("error", 0.1) for a in (1, 2, 3)})
        policy = SupervisionPolicy(max_attempts=3,
                                   on_failure="quarantine",
                                   backoff_base_s=0.01)
        results, report = _drive(policy, backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 2]
        assert report.quarantined == (1,)
        assert report.abandoned == (1,)
        assert report.degraded == ()
        assert report.attempts == 5
        assert report.retries == 2

    def test_fail_mode_raises_after_exhaustion(self):
        backend = ScriptedBackend(
            script={(1, a): ("error", 0.1) for a in (1, 2)})
        supervisor = ShardSupervisor(
            SupervisionPolicy(max_attempts=2, on_failure="fail",
                              backoff_base_s=0.01))
        with pytest.raises(EngineError, match="shard 1 failed 2"):
            list(supervisor.run(backend, _shards()))
        assert supervisor.report is not None  # ledger survives the death
        assert supervisor.report.retries == 1
        assert backend.closed == 1

    def test_degrade_recovers_quarantined_shards_inline(self):
        backend = ScriptedBackend(
            script={(1, a): ("error", 0.1) for a in (1, 2)})
        policy = SupervisionPolicy(max_attempts=2, on_failure="degrade",
                                   backoff_base_s=0.01)
        results, report = _drive(policy, backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 1, 2]
        assert backend.inline_runs == [1]
        assert report.quarantined == (1,)
        assert report.degraded == (1,)
        assert report.abandoned == ()

    def test_degrade_keeps_genuinely_broken_shards_quarantined(self):
        backend = ScriptedBackend(
            script={(1, a): ("error", 0.1) for a in (1, 2)},
            inline_fail={1})
        policy = SupervisionPolicy(max_attempts=2, on_failure="degrade",
                                   backoff_base_s=0.01)
        results, report = _drive(policy, backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 2]
        assert report.abandoned == (1,)
        assert "degrade fallback" in report.failures[-1].detail

    def test_adaptive_deadline_arms_from_completed_runtimes(self):
        # slots=1 serialises the shards: two 1.0 s completions arm the
        # adaptive deadline (factor 4 => 4.0 s) before the hang starts.
        backend = ScriptedBackend(script={(2, 1): ("hang",)}, slots=1)
        policy = SupervisionPolicy(shard_timeout_s=None,
                                   adaptive_timeout_factor=4.0,
                                   adaptive_min_samples=2,
                                   adaptive_floor_s=0.1,
                                   backoff_base_s=0.0)
        results, report = _drive(policy, backend, _shards())
        assert sorted(r.shard_id for r in results) == [0, 1, 2]
        assert [f.kind for f in report.failures] == ["timeout"]
        assert "4.000 s deadline" in report.failures[0].detail
        # 1.0 + 1.0 serial, 4.0 timed-out hang, 1.0 retry
        assert backend.now == pytest.approx(7.0)

    def test_failure_sink_sees_every_failure(self):
        seen = []
        backend = ScriptedBackend(
            script={(0, 1): ("error", 0.1), (2, 1): ("corrupt", 0.1)})
        _drive(SupervisionPolicy(backoff_base_s=0.01), backend,
               _shards(), failure_sink=seen.append)
        assert sorted((f.shard_id, f.kind) for f in seen) \
            == [(0, "error"), (2, "invalid")]

    def test_supervisor_telemetry_counts_the_faults(self):
        tel = Recorder()
        backend = ScriptedBackend(
            script={(0, 1): ("error", 0.1), (1, 1): ("hang",),
                    (2, 1): ("error", 0.1), (2, 2): ("error", 0.1)})
        policy = SupervisionPolicy(max_attempts=2, shard_timeout_s=1.0,
                                   adaptive_timeout_factor=None,
                                   backoff_base_s=0.01,
                                   on_failure="quarantine")
        _drive(policy, backend, _shards(), telemetry=tel)
        counters = {c.name: c.value for c in tel.metrics.counters()}
        assert counters["engine.supervisor.attempts"] == 6
        assert counters["engine.supervisor.failures"] == 4
        assert counters["engine.shard.retries"] == 3
        assert counters["engine.shard.timeouts"] == 1
        assert counters["engine.shard.quarantined"] == 1


NUM_FUZZ_SHARDS = st.integers(min_value=1, max_value=4)

_SCRIPTED_OUTCOME = {
    "crash": ("error", 0.2),
    "hang": ("hang",),
    "slow": ("ok", 1.5),
    "corrupt": ("corrupt", 0.3),
}


class TestSupervisorFuzz:
    """Seeded fault schedules: the supervisor always ends explicitly."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           num_shards=NUM_FUZZ_SHARDS,
           max_faulty=st.integers(min_value=1, max_value=3),
           on_failure=st.sampled_from(["quarantine", "degrade"]))
    def test_terminates_with_full_or_explicit_partial(
            self, seed, num_shards, max_faulty, on_failure):
        schedule = WorkerFaultSchedule.build(
            seed, num_shards, crash=0.3, hang=0.2, slow=0.1,
            corrupt=0.2, max_faulty_attempts=max_faulty)
        script = {key: _SCRIPTED_OUTCOME[fault.kind]
                  for key, fault in schedule.faults.items()}
        shards = _shards(num_trials=2 * num_shards,
                         num_shards=num_shards)
        backend = ScriptedBackend(script=script)
        policy = SupervisionPolicy(max_attempts=3, shard_timeout_s=2.0,
                                   backoff_base_s=0.01,
                                   on_failure=on_failure)
        results, report = _drive(policy, backend, shards)

        yielded = sorted(r.shard_id for r in results)
        assert len(set(yielded)) == len(yielded)  # no duplicates
        # every shard is accounted for: yielded or explicitly abandoned
        assert sorted(yielded + list(report.abandoned)) \
            == list(range(num_shards))
        for result in results:  # nothing invalid ever escapes
            validate_shard_result(result, shards[result.shard_id])
        assert report.attempts == len(backend.submissions)
        assert report.attempts == num_shards + report.retries
        assert backend.closed == 1


class _DyingExecutor:
    """Runs shards serially but dies after ``survive`` of them."""

    def __init__(self, survive):
        self.survive = survive

    def run_shards(self, trial_fn, shards, of_total,
                   record_telemetry=False):
        inner = SerialExecutor().run_shards(
            trial_fn, shards, of_total,
            record_telemetry=record_telemetry)
        for count, result in enumerate(inner):
            if count == self.survive:
                raise KeyboardInterrupt("killed mid-campaign")
            yield result


class TestKillResumeByteIdentity:
    """Satellite: kill at a random shard boundary, resume, compare."""

    @settings(max_examples=12, deadline=None)
    @given(master_seed=st.integers(min_value=0, max_value=2**32 - 1),
           survive=st.integers(min_value=0, max_value=3))
    def test_resumed_campaign_matches_uninterrupted(
            self, tmp_path_factory, master_seed, survive):
        store_path = tmp_path_factory.mktemp("resume") / "campaign.jsonl"

        tel_direct = Recorder()
        direct = run_campaign(uniform_trial, 8, master_seed=master_seed,
                              num_shards=4, telemetry=tel_direct)

        with pytest.raises(KeyboardInterrupt):
            run_campaign(uniform_trial, 8, master_seed=master_seed,
                         num_shards=4,
                         executor=_DyingExecutor(survive=survive),
                         store=store_path, telemetry=Recorder())

        tel_resumed = Recorder()
        resumed = run_campaign(uniform_trial, 8,
                               master_seed=master_seed, num_shards=4,
                               store=store_path, telemetry=tel_resumed)
        assert len(resumed.resumed_shards) == survive
        assert [(r.index, r.seed, r.values) for r in resumed.results] \
            == [(r.index, r.seed, r.values) for r in direct.results]
        assert to_jsonl(tel_resumed) == to_jsonl(tel_direct)


class TestSupervisedPool:
    """The production process backend, end to end (kept tiny)."""

    def test_fault_free_supervised_matches_serial_exactly(self):
        tel_serial = Recorder()
        serial = MonteCarloRunner(5, telemetry=tel_serial).run(
            uniform_trial, 8)
        tel_pool = Recorder()
        pooled = run_campaign(uniform_trial, 8, master_seed=5,
                              num_shards=4,
                              executor=SupervisedPool(jobs=2),
                              telemetry=tel_pool)
        assert not pooled.is_partial
        assert [(r.seed, r.values) for r in pooled.results] \
            == [(r.seed, r.values) for r in serial]
        assert to_jsonl(tel_pool) == to_jsonl(tel_serial)

    def test_injected_crash_is_retried_to_a_full_result(self):
        faults = WorkerFaultSchedule(
            faults={(0, 1): WorkerFault(kind="crash")})
        pool = SupervisedPool(
            jobs=2, faults=faults,
            policy=SupervisionPolicy(max_attempts=2,
                                     backoff_base_s=0.01))
        outcome = run_campaign(uniform_trial, 6, master_seed=3,
                               num_shards=3, executor=pool)
        assert not outcome.is_partial
        reference = run_campaign(uniform_trial, 6, master_seed=3,
                                 num_shards=3)
        assert [r.values for r in outcome.results] \
            == [r.values for r in reference.results]
        assert pool.last_report is not None
        assert pool.last_report.retries == 1
        assert pool.last_report.quarantined == ()

    def test_poison_shard_quarantines_journals_and_resumes(
            self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        faults = WorkerFaultSchedule(
            faults={(1, a): WorkerFault(kind="crash")
                    for a in (1, 2)})
        pool = SupervisedPool(
            jobs=2, faults=faults,
            policy=SupervisionPolicy(max_attempts=2,
                                     backoff_base_s=0.01,
                                     on_failure="quarantine"))
        partial = Campaign(uniform_trial, 6, master_seed=9,
                           num_shards=3, executor=pool,
                           store=store_path).run()
        assert isinstance(partial, PartialCampaignResult)
        assert partial.is_partial
        assert partial.quarantined_shards == (1,)
        assert partial.missing_trials == (2, 3)
        assert [r.index for r in partial.results] == [0, 1, 4, 5]

        store = ResultStore(store_path)
        attempts = store.load_attempts()
        assert [(f.shard_id, f.attempt, f.kind) for f in attempts] \
            == [(1, 1, "error"), (1, 2, "error")]
        assert "InjectedWorkerCrash" in attempts[0].detail
        assert store.load_quarantined() == (1,)

        # A fault-free re-run resumes the journal and completes.
        resumed = Campaign(uniform_trial, 6, master_seed=9,
                           num_shards=3, store=store_path).run()
        assert not resumed.is_partial
        assert resumed.resumed_shards == (0, 2)
        assert resumed.executed_shards == (1,)
        reference = run_campaign(uniform_trial, 6, master_seed=9,
                                 num_shards=3)
        assert [r.values for r in resumed.results] \
            == [r.values for r in reference.results]

    def test_runner_surfaces_partial_results_loudly(self):
        faults = WorkerFaultSchedule(
            faults={(0, 1): WorkerFault(kind="crash")})
        runner = MonteCarloRunner(4)
        pool = SupervisedPool(
            jobs=2, faults=faults,
            policy=SupervisionPolicy(max_attempts=1,
                                     on_failure="quarantine"))
        with pytest.raises(EngineError, match="completed partially"):
            runner.run(uniform_trial, 6, executor=pool, num_shards=3)

        pool = SupervisedPool(
            jobs=2, faults=faults,
            policy=SupervisionPolicy(max_attempts=1,
                                     on_failure="quarantine"))
        surviving = runner.run(uniform_trial, 6, executor=pool,
                               num_shards=3, allow_partial=True)
        assert [r.index for r in surviving] == [2, 3, 4, 5]

    def test_pool_validates_jobs_and_reports_empty_runs(self):
        with pytest.raises(ValueError):
            SupervisedPool(jobs=0)
        pool = SupervisedPool(jobs=2)
        assert list(pool.run_shards(uniform_trial, [], 0)) == []
        assert pool.last_report is not None
        assert pool.last_report.attempts == 0
        assert "on_failure='quarantine'" in repr(pool)
