"""Unit tests for the fault-injection framework (repro.faults)."""

import numpy as np
import pytest

from repro.faults import (
    NO_DISTURBANCE,
    SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    LinkDisturbance,
    scenario_injector,
)
from repro.faults.injector import NLOS_BLOCKAGE_FRACTION
from repro.faults.processes import (
    InterfererProcess,
    NodeDropoutProcess,
    PersistentBlockerProcess,
    SideChannelOutageProcess,
    StuckBeamProcess,
    TransientBlockerProcess,
    VcoDriftProcess,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="gremlins", start_s=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="blockage", start_s=-0.1, duration_s=1.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="blockage", start_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="stuck_beam", start_s=0.0, duration_s=1.0,
                       severity=0.5)
        with pytest.raises(ValueError):
            FaultEvent(kind="interference", start_s=0.0, duration_s=1.0,
                       severity=-60.0)  # no channel named

    def test_active_window_half_open(self):
        event = FaultEvent(kind="blockage", start_s=2.0, duration_s=3.0)
        assert not event.active_at(1.99)
        assert event.active_at(2.0)
        assert event.active_at(4.99)
        assert not event.active_at(5.0)

    def test_rectangular_profile(self):
        event = FaultEvent(kind="blockage", start_s=0.0, duration_s=2.0,
                           severity=30.0)
        assert event.profile(1.0) == 1.0
        assert event.profile(3.0) == 0.0

    def test_drift_profile_is_triangular(self):
        event = FaultEvent(kind="vco_drift", start_s=0.0, duration_s=4.0,
                           severity=1e6)
        assert event.profile(0.0) == 0.0
        assert event.profile(2.0) == pytest.approx(1.0)
        assert event.profile(1.0) == pytest.approx(0.5)
        assert event.profile(3.0) == pytest.approx(0.5)


class TestLinkDisturbance:
    def test_default_is_clear(self):
        assert NO_DISTURBANCE.is_clear
        assert not NO_DISTURBANCE.has_interference

    def test_field_wise_clearness(self):
        assert not LinkDisturbance(node_down=True).is_clear
        assert not LinkDisturbance(stuck_beam=1).is_clear
        assert not LinkDisturbance(side_channel_up=False).is_clear
        assert not LinkDisturbance(interference_dbm=-70.0).is_clear

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkDisturbance(beam1_extra_loss_db=-1.0)
        with pytest.raises(ValueError):
            LinkDisturbance(stuck_beam=2)


class TestFaultSchedule:
    def test_blockage_losses_stack_and_nlos_pays_fraction(self):
        events = [
            FaultEvent(kind="blockage", start_s=0.0, duration_s=10.0,
                       severity=20.0),
            FaultEvent(kind="blockage", start_s=0.0, duration_s=10.0,
                       severity=10.0),
        ]
        d = FaultSchedule(events, duration_s=10.0).disturbance_at(5.0)
        assert d.beam1_extra_loss_db == pytest.approx(30.0)
        assert d.beam0_extra_loss_db == pytest.approx(
            NLOS_BLOCKAGE_FRACTION * 30.0)

    def test_interference_respects_victim_channel(self):
        events = [FaultEvent(kind="interference", start_s=0.0,
                             duration_s=10.0, severity=-60.0,
                             channel_index=0)]
        schedule = FaultSchedule(events, duration_s=10.0)
        assert schedule.disturbance_at(5.0, 0).has_interference
        assert not schedule.disturbance_at(5.0, 1).has_interference
        # None = conservative any-channel view.
        assert schedule.disturbance_at(5.0, None).has_interference

    def test_interference_powers_add_linearly(self):
        events = [FaultEvent(kind="interference", start_s=0.0,
                             duration_s=10.0, severity=-60.0,
                             channel_index=0)] * 2
        d = FaultSchedule(events, duration_s=10.0).disturbance_at(5.0, 0)
        assert d.interference_dbm == pytest.approx(-60.0 + 10 * np.log10(2))

    def test_inactive_instant_is_clear(self):
        events = [FaultEvent(kind="dropout", start_s=5.0, duration_s=1.0)]
        schedule = FaultSchedule(events, duration_s=10.0)
        assert schedule.disturbance_at(2.0) is NO_DISTURBANCE
        assert schedule.disturbance_at(5.5).node_down

    def test_kinds_and_last_end(self):
        events = [
            FaultEvent(kind="dropout", start_s=1.0, duration_s=1.0),
            FaultEvent(kind="blockage", start_s=3.0, duration_s=2.0,
                       severity=20.0),
        ]
        schedule = FaultSchedule(events, duration_s=10.0)
        assert schedule.kinds() == ("blockage", "dropout")
        assert schedule.last_fault_end_s() == pytest.approx(5.0)

    def test_event_after_end_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule([FaultEvent(kind="dropout", start_s=11.0,
                                      duration_s=1.0)], duration_s=10.0)


class TestFaultInjector:
    def test_bit_identical_regeneration(self):
        processes = [TransientBlockerProcess(), NodeDropoutProcess()]
        a = FaultInjector(processes, master_seed=42).schedule(60.0)
        b = FaultInjector(processes, master_seed=42).schedule(60.0)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        processes = [TransientBlockerProcess(rate_per_minute=30.0)]
        a = FaultInjector(processes, master_seed=1).schedule(60.0)
        b = FaultInjector(processes, master_seed=2).schedule(60.0)
        assert a.events != b.events

    def test_per_process_streams_independent(self):
        """Appending a process must not perturb earlier processes' draws
        — the MonteCarloRunner child-stream discipline."""
        base = [TransientBlockerProcess()]
        extended = base + [NodeDropoutProcess()]
        a = FaultInjector(base, master_seed=7).schedule(60.0)
        b = FaultInjector(extended, master_seed=7).schedule(60.0)
        assert tuple(e for e in b.events if e.kind == "blockage") == a.events

    def test_quiet_tail_clips_events(self):
        injector = FaultInjector(
            [TransientBlockerProcess(rate_per_minute=60.0),
             NodeDropoutProcess(rate_per_minute=30.0)], master_seed=3)
        schedule = injector.schedule(30.0, quiet_tail_s=5.0)
        assert schedule.duration_s == 30.0
        assert schedule.last_fault_end_s() <= 25.0 + 1e-9
        assert schedule.disturbance_at(27.0) is NO_DISTURBANCE

    def test_quiet_tail_must_fit(self):
        injector = FaultInjector([SideChannelOutageProcess()], master_seed=0)
        with pytest.raises(ValueError):
            injector.schedule(10.0, quiet_tail_s=10.0)

    def test_scenarios_all_materialise(self):
        for name in SCENARIOS:
            schedule = scenario_injector(name, master_seed=0).schedule(30.0)
            assert isinstance(schedule, FaultSchedule)
            assert len(schedule.kinds()) >= 1

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_injector("earthquake")


class TestProcesses:
    def test_poisson_rate_roughly_respected(self):
        rng = np.random.default_rng(0)
        process = TransientBlockerProcess(rate_per_minute=30.0)
        counts = [len(process.events(rng, 60.0)) for _ in range(50)]
        assert 20.0 < float(np.mean(counts)) < 40.0

    def test_deterministic_windows_ignore_rng(self):
        for process in (PersistentBlockerProcess(), VcoDriftProcess(),
                        StuckBeamProcess(), SideChannelOutageProcess(),
                        InterfererProcess()):
            a = process.events(np.random.default_rng(0), 30.0)
            b = process.events(np.random.default_rng(99), 30.0)
            assert a == b

    def test_window_beyond_duration_yields_nothing(self):
        assert PersistentBlockerProcess(start_s=50.0).events(
            np.random.default_rng(0), 30.0) == []

    def test_dropouts_do_not_overlap(self):
        rng = np.random.default_rng(1)
        events = NodeDropoutProcess(rate_per_minute=20.0).events(rng, 120.0)
        for first, second in zip(events, events[1:]):
            assert second.start_s >= first.end_s


class TestEnergyOutage:
    def test_harvest_scale_validated_and_clear(self):
        with pytest.raises(ValueError):
            LinkDisturbance(harvest_scale=1.5)
        with pytest.raises(ValueError):
            LinkDisturbance(harvest_scale=-0.1)
        assert not LinkDisturbance(harvest_scale=0.5).is_clear
        assert LinkDisturbance(harvest_scale=1.0).is_clear

    def test_severities_compose_multiplicatively(self):
        from repro.faults.processes import EnergyOutageProcess

        injector = FaultInjector(
            [EnergyOutageProcess(start_s=0.0, duration_s=10.0,
                                 severity=0.5),
             EnergyOutageProcess(start_s=5.0, duration_s=10.0,
                                 severity=0.5)],
            master_seed=0)
        schedule = injector.schedule(20.0)
        assert schedule.disturbance_at(2.0).harvest_scale \
            == pytest.approx(0.5)
        assert schedule.disturbance_at(7.0).harvest_scale \
            == pytest.approx(0.25)
        assert schedule.disturbance_at(16.0).harvest_scale == 1.0

    def test_energy_outage_scenario_blacks_out_harvesting(self):
        schedule = scenario_injector("energy-outage",
                                     master_seed=0).schedule(30.0)
        assert "energy_outage" in schedule.kinds()
        scales = [schedule.disturbance_at(t).harvest_scale
                  for t in np.arange(0.0, 30.0, 0.5)]
        assert min(scales) == 0.0  # a true blackout, not a dip
        assert scales[0] == 1.0 and scales[-1] == 1.0

    def test_harvest_outage_leaves_the_link_budget_alone(self):
        """Starving the rectenna must not also fade the data link."""
        from repro.core.ask_fsk import AskFskConfig
        from repro.core.link import perturb_breakdown
        from repro.experiments.chaos import _facing_link

        clean = _facing_link(3.0).snr_breakdown()
        dark = perturb_breakdown(clean,
                                 LinkDisturbance(harvest_scale=0.0),
                                 AskFskConfig())
        assert dark.ask_snr_db == clean.ask_snr_db
        assert dark.fsk_snr_db == clean.fsk_snr_db
