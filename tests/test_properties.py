"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.multipath import ChannelResponse
from repro.channel.pathloss import free_space_path_loss_db
from repro.core.ask_fsk import AskFskConfig
from repro.core.otam import OtamModulator
from repro.core.packet import Packet, PacketCodec
from repro.phy import ber as B
from repro.phy.bits import bits_to_bytes, bytes_to_bits, pack_uint, unpack_uint
from repro.phy.coding import HammingCode74, RepetitionCode, deinterleave, interleave
from repro.phy.envelope import threshold_levels
from repro.phy.preamble import default_preamble_bits, locate_preamble
from repro.sim.geometry import Point, Segment, reflect_point_across_line
from repro.units import db_to_linear, linear_to_db

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=256)


class TestUnitsProperties:
    @given(st.floats(min_value=-200, max_value=200))
    def test_db_roundtrip(self, db):
        assert float(linear_to_db(db_to_linear(db))) == pytest.approx(db,
                                                                      abs=1e-9)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_linear_roundtrip(self, ratio):
        assert float(db_to_linear(linear_to_db(ratio))) == pytest.approx(
            ratio, rel=1e-9)


class TestBitProperties:
    @given(st.binary(min_size=0, max_size=128))
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_pack_unpack_roundtrip(self, value):
        width = max(value.bit_length(), 1)
        assert unpack_uint(pack_uint(value, width)) == value


class TestCodingProperties:
    @given(bit_lists.filter(lambda b: len(b) % 4 == 0 and len(b) > 0))
    def test_hamming_roundtrip(self, bits):
        code = HammingCode74()
        assert np.array_equal(code.decode(code.encode(bits)),
                              np.asarray(bits, dtype=np.uint8))

    @given(bit_lists.filter(lambda b: len(b) % 4 == 0 and len(b) > 0),
           st.integers(min_value=0, max_value=10_000))
    def test_hamming_single_error_correction(self, bits, flip_seed):
        code = HammingCode74()
        coded = code.encode(bits)
        # Flip one bit in one codeword.
        position = flip_seed % coded.size
        coded[position] ^= 1
        assert np.array_equal(code.decode(coded),
                              np.asarray(bits, dtype=np.uint8))

    @given(bit_lists, st.sampled_from([3, 5, 7]))
    def test_repetition_roundtrip(self, bits, reps):
        code = RepetitionCode(reps)
        assert np.array_equal(code.decode(code.encode(bits)),
                              np.asarray(bits, dtype=np.uint8))

    @given(st.lists(st.integers(0, 1), min_size=6, max_size=120)
           .filter(lambda b: len(b) % 6 == 0))
    def test_interleave_is_permutation(self, bits):
        out = interleave(bits, 6)
        assert sorted(out.tolist()) == sorted(bits)
        assert np.array_equal(deinterleave(out, 6),
                              np.asarray(bits, dtype=np.uint8))


class TestPacketProperties:
    @given(st.binary(min_size=0, max_size=200),
           st.integers(min_value=0, max_value=255),
           st.booleans())
    @settings(max_examples=40)
    def test_codec_roundtrip(self, payload, seq, use_fec):
        codec = PacketCodec(use_fec=use_fec)
        decoded = codec.decode(codec.encode(Packet(payload, seq)))
        assert decoded.payload == payload
        assert decoded.sequence == seq


class TestBerProperties:
    @given(st.floats(min_value=-20, max_value=25))
    def test_ber_bounded(self, snr):
        for fn in (B.ber_ook_coherent, B.ber_ook_noncoherent,
                   B.ber_ask_table, B.ber_fsk_noncoherent, B.ber_bpsk):
            value = float(fn(snr))
            assert 0.0 <= value <= 0.5 + 1e-12

    @given(st.floats(min_value=-10, max_value=20),
           st.floats(min_value=0.5, max_value=10.0))
    def test_ber_monotone(self, snr, delta):
        assert float(B.ber_ook_coherent(snr + delta)) <= float(
            B.ber_ook_coherent(snr))


class TestGeometryProperties:
    coords = st.floats(min_value=-50, max_value=50,
                       allow_nan=False, allow_infinity=False)

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=60)
    def test_reflection_preserves_distance_to_line(self, px, py, ax, ay,
                                                   bx, by):
        if math.hypot(bx - ax, by - ay) < 1e-6:
            return
        line = Segment(Point(ax, ay), Point(bx, by))
        p = Point(px, py)
        image = reflect_point_across_line(p, line)
        # Any point on the line is equidistant from p and its image.
        for t in (0.0, 0.5, 1.0):
            on_line = Point(ax + t * (bx - ax), ay + t * (by - ay))
            d1 = math.hypot(p.x - on_line.x, p.y - on_line.y)
            d2 = math.hypot(image.x - on_line.x, image.y - on_line.y)
            assert d1 == pytest.approx(d2, rel=1e-6, abs=1e-6)


class TestChannelProperties:
    # Keep distances above one wavelength (0.3 m at 1 GHz) — FSPL is
    # clamped in the near field, where monotonicity deliberately stops.
    @given(st.floats(min_value=0.5, max_value=1000.0),
           st.floats(min_value=1e9, max_value=100e9))
    def test_fspl_monotone_in_distance(self, d, f):
        assert float(free_space_path_loss_db(d * 2, f)) > float(
            free_space_path_loss_db(d, f))

    amplitude = st.floats(min_value=0.0, max_value=10.0)

    @given(amplitude, amplitude)
    def test_channel_response_invariants(self, a1, a0):
        ch = ChannelResponse(h1=a1, h0=a0, paths=())
        assert ch.difference_gain() == pytest.approx(abs(a1 - a0))
        assert ch.stronger_gain() == pytest.approx(max(a1, a0))
        assert ch.inverted == (a0 > a1)


class TestOtamProperties:
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=64),
           st.floats(min_value=0.05, max_value=2.0),
           st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=30)
    def test_waveform_envelope_tracks_bits(self, bits, a1, a0):
        cfg = AskFskConfig(bit_rate_bps=1e6, sample_rate_hz=8e6)
        mod = OtamModulator(cfg, eirp_dbm=0.0)
        wave = mod.received_waveform(bits,
                                     ChannelResponse(h1=a1, h0=a0, paths=()))
        env = np.abs(wave.samples).reshape(len(bits), 8).mean(axis=1)
        for bit, level in zip(bits, env):
            expected = a1 if bit else a0
            # The switch's finite isolation leaks ~0.07% of the other
            # beam's amplitude into each level; with extreme amplitude
            # ratios that shifts the weak level by a few percent.
            assert level == pytest.approx(expected,
                                          rel=0.02, abs=0.002 * max(a1, a0))


class TestThresholdProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=2, max_size=200))
    def test_threshold_between_extremes(self, values):
        low, high, threshold = threshold_levels(np.asarray(values))
        assert min(values) - 1e-9 <= low <= high <= max(values) + 1e-9
        assert low - 1e-9 <= threshold <= high + 1e-9


class TestPreambleProperties:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=80),
           st.booleans())
    @settings(max_examples=40)
    def test_preamble_always_found_with_correct_polarity(self, tail, invert):
        stream = np.concatenate([default_preamble_bits(),
                                 np.asarray(tail, dtype=np.uint8)])
        if invert:
            stream = (1 - stream).astype(np.uint8)
        soft = 2.0 * stream.astype(float) - 1.0
        detection = locate_preamble(soft)
        assert detection.found
        # Inversion must be reported so the decoder can undo it; a
        # random tail can at worst shift the detection, not hide it.
        if detection.start_index == 0:
            assert detection.inverted == invert
