"""Tests for the FDM channel allocator."""

import pytest

from repro.constants import ISM_24GHZ_HIGH_HZ, ISM_24GHZ_LOW_HZ
from repro.network.fdm import ChannelPlan, FdmAllocator, SpectrumExhausted


class TestChannelPlan:
    def test_edges(self):
        plan = ChannelPlan(node_id=0, center_hz=24.1e9, bandwidth_hz=20e6)
        assert plan.low_hz == pytest.approx(24.09e9)
        assert plan.high_hz == pytest.approx(24.11e9)

    def test_overlap_detection(self):
        a = ChannelPlan(0, 24.10e9, 20e6)
        b = ChannelPlan(1, 24.11e9, 20e6)
        c = ChannelPlan(2, 24.20e9, 20e6)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_adjacent_channels_do_not_overlap(self):
        a = ChannelPlan(0, 24.10e9, 20e6)
        b = ChannelPlan(1, 24.12e9, 20e6)  # edges touch exactly
        assert not a.overlaps(b)


class TestAllocator:
    def test_sizing_scales_with_rate(self):
        alloc = FdmAllocator()
        assert (alloc.channel_bandwidth_for_rate(10e6)
                > alloc.channel_bandwidth_for_rate(1e6))

    def test_min_channel_floor(self):
        alloc = FdmAllocator(min_channel_hz=1e6)
        assert alloc.channel_bandwidth_for_rate(1.0) == 1e6

    def test_allocations_disjoint(self):
        alloc = FdmAllocator()
        plans = [alloc.allocate(i, 10e6) for i in range(5)]
        for i, a in enumerate(plans):
            for b in plans[i + 1:]:
                assert not a.overlaps(b)

    def test_allocations_inside_band(self):
        alloc = FdmAllocator()
        for i in range(8):
            plan = alloc.allocate(i, 10e6)
            assert plan.low_hz >= ISM_24GHZ_LOW_HZ
            assert plan.high_hz <= ISM_24GHZ_HIGH_HZ

    def test_exhaustion_raises(self):
        alloc = FdmAllocator()
        with pytest.raises(SpectrumExhausted):
            for i in range(100):
                alloc.allocate(i, 20e6)

    def test_hd_camera_capacity(self):
        # Footnote 1: HD video needs ~10 Mbps.  The 250 MHz band should
        # host at least 8 such cameras under FDM alone.
        alloc = FdmAllocator()
        count = 0
        try:
            for i in range(100):
                alloc.allocate(i, 10e6)
                count += 1
        except SpectrumExhausted:
            pass
        assert count >= 8

    def test_release_and_reuse(self):
        alloc = FdmAllocator()
        first = alloc.allocate(0, 50e6)
        alloc.release(0)
        again = alloc.allocate(1, 50e6)
        assert again.center_hz == pytest.approx(first.center_hz)

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            FdmAllocator().release(3)

    def test_duplicate_node_rejected(self):
        alloc = FdmAllocator()
        alloc.allocate(1, 1e6)
        with pytest.raises(ValueError):
            alloc.allocate(1, 1e6)

    def test_first_fit_reuses_gaps(self):
        alloc = FdmAllocator(guard_fraction=0.0)
        a = alloc.allocate(0, 10e6)
        b = alloc.allocate(1, 10e6)
        alloc.release(0)
        c = alloc.allocate(2, 5e6)  # smaller request fits the gap
        assert c.low_hz >= a.low_hz - 1.0
        assert c.high_hz <= b.low_hz + 1.0

    def test_plans_sorted(self):
        alloc = FdmAllocator()
        for i in range(4):
            alloc.allocate(i, 10e6)
        centers = [p.center_hz for p in alloc.plans]
        assert centers == sorted(centers)

    def test_plan_lookup(self):
        alloc = FdmAllocator()
        plan = alloc.allocate(7, 10e6)
        assert alloc.plan_for(7) == plan
        with pytest.raises(KeyError):
            alloc.plan_for(8)


class TestRestorePlan:
    def test_exact_reinsertion(self):
        alloc = FdmAllocator()
        plan = ChannelPlan(node_id=3, center_hz=24.2e9, bandwidth_hz=20e6)
        alloc.restore_plan(plan)
        assert alloc.plan_for(3) == plan

    def test_duplicate_rejected(self):
        alloc = FdmAllocator()
        alloc.allocate(1, 10e6)
        with pytest.raises(ValueError):
            alloc.restore_plan(ChannelPlan(1, 24.2e9, 20e6))

    def test_out_of_band_rejected(self):
        alloc = FdmAllocator()
        with pytest.raises(ValueError):
            alloc.restore_plan(ChannelPlan(0, ISM_24GHZ_HIGH_HZ, 20e6))

    def test_overlap_rejected(self):
        alloc = FdmAllocator()
        alloc.restore_plan(ChannelPlan(0, 24.2e9, 20e6))
        with pytest.raises(ValueError):
            alloc.restore_plan(ChannelPlan(1, 24.21e9, 20e6))


class TestExhaustionAndDegradation:
    """Allocator exhaustion and the AP's graceful handling of it."""

    def _full_allocator(self):
        alloc = FdmAllocator()
        node_id = 0
        while True:
            try:
                alloc.allocate(node_id, 20e6)
            except SpectrumExhausted:
                return alloc, node_id
            node_id += 1

    def test_exhausted_allocator_stays_consistent(self):
        alloc, count = self._full_allocator()
        # The failed allocation left no half-committed state behind.
        assert len(alloc.plans) == count
        for i, a in enumerate(alloc.plans):
            for b in alloc.plans[i + 1:]:
                assert not a.overlaps(b)

    def test_mark_interference_on_full_ap(self):
        from repro.node.access_point import MmxAccessPoint

        ap = MmxAccessPoint()
        node_id = 0
        while True:
            try:
                ap.register_node(node_id, 10e6)
            except SpectrumExhausted:
                break
            node_id += 1
        victim = ap.allocator.plan_for(0)
        hit = ap.mark_interference(victim.low_hz, victim.high_hz)
        assert 0 in hit
        # Fully allocated band + a fresh block: no clean channel exists,
        # so the move degrades gracefully instead of raising.
        before = ap.registration(0)
        assert ap.reallocate_node(0) is None
        assert ap.registration(0) == before
        assert ap.stats()["reallocation_failures"] == 1

    def test_reallocation_failure_counter_accumulates(self):
        from repro.node.access_point import MmxAccessPoint

        ap = MmxAccessPoint()
        ap.register_node(0, 10e6)
        # Block the entire band except the victim's own slot.
        ap.allocator.block_range(ISM_24GHZ_LOW_HZ, ISM_24GHZ_HIGH_HZ)
        assert ap.reallocate_node(0) is None
        assert ap.reallocate_node(0) is None
        assert ap.reallocation_failures == 2
