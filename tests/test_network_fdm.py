"""Tests for the FDM channel allocator."""

import pytest

from repro.constants import ISM_24GHZ_HIGH_HZ, ISM_24GHZ_LOW_HZ
from repro.network.fdm import ChannelPlan, FdmAllocator, SpectrumExhausted


class TestChannelPlan:
    def test_edges(self):
        plan = ChannelPlan(node_id=0, center_hz=24.1e9, bandwidth_hz=20e6)
        assert plan.low_hz == pytest.approx(24.09e9)
        assert plan.high_hz == pytest.approx(24.11e9)

    def test_overlap_detection(self):
        a = ChannelPlan(0, 24.10e9, 20e6)
        b = ChannelPlan(1, 24.11e9, 20e6)
        c = ChannelPlan(2, 24.20e9, 20e6)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_adjacent_channels_do_not_overlap(self):
        a = ChannelPlan(0, 24.10e9, 20e6)
        b = ChannelPlan(1, 24.12e9, 20e6)  # edges touch exactly
        assert not a.overlaps(b)


class TestAllocator:
    def test_sizing_scales_with_rate(self):
        alloc = FdmAllocator()
        assert (alloc.channel_bandwidth_for_rate(10e6)
                > alloc.channel_bandwidth_for_rate(1e6))

    def test_min_channel_floor(self):
        alloc = FdmAllocator(min_channel_hz=1e6)
        assert alloc.channel_bandwidth_for_rate(1.0) == 1e6

    def test_allocations_disjoint(self):
        alloc = FdmAllocator()
        plans = [alloc.allocate(i, 10e6) for i in range(5)]
        for i, a in enumerate(plans):
            for b in plans[i + 1:]:
                assert not a.overlaps(b)

    def test_allocations_inside_band(self):
        alloc = FdmAllocator()
        for i in range(8):
            plan = alloc.allocate(i, 10e6)
            assert plan.low_hz >= ISM_24GHZ_LOW_HZ
            assert plan.high_hz <= ISM_24GHZ_HIGH_HZ

    def test_exhaustion_raises(self):
        alloc = FdmAllocator()
        with pytest.raises(SpectrumExhausted):
            for i in range(100):
                alloc.allocate(i, 20e6)

    def test_hd_camera_capacity(self):
        # Footnote 1: HD video needs ~10 Mbps.  The 250 MHz band should
        # host at least 8 such cameras under FDM alone.
        alloc = FdmAllocator()
        count = 0
        try:
            for i in range(100):
                alloc.allocate(i, 10e6)
                count += 1
        except SpectrumExhausted:
            pass
        assert count >= 8

    def test_release_and_reuse(self):
        alloc = FdmAllocator()
        first = alloc.allocate(0, 50e6)
        alloc.release(0)
        again = alloc.allocate(1, 50e6)
        assert again.center_hz == pytest.approx(first.center_hz)

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            FdmAllocator().release(3)

    def test_duplicate_node_rejected(self):
        alloc = FdmAllocator()
        alloc.allocate(1, 1e6)
        with pytest.raises(ValueError):
            alloc.allocate(1, 1e6)

    def test_first_fit_reuses_gaps(self):
        alloc = FdmAllocator(guard_fraction=0.0)
        a = alloc.allocate(0, 10e6)
        b = alloc.allocate(1, 10e6)
        alloc.release(0)
        c = alloc.allocate(2, 5e6)  # smaller request fits the gap
        assert c.low_hz >= a.low_hz - 1.0
        assert c.high_hz <= b.low_hz + 1.0

    def test_plans_sorted(self):
        alloc = FdmAllocator()
        for i in range(4):
            alloc.allocate(i, 10e6)
        centers = [p.center_hz for p in alloc.plans]
        assert centers == sorted(centers)

    def test_plan_lookup(self):
        alloc = FdmAllocator()
        plan = alloc.allocate(7, 10e6)
        assert alloc.plan_for(7) == plan
        with pytest.raises(KeyError):
            alloc.plan_for(8)


class TestRestorePlan:
    def test_exact_reinsertion(self):
        alloc = FdmAllocator()
        plan = ChannelPlan(node_id=3, center_hz=24.2e9, bandwidth_hz=20e6)
        alloc.restore_plan(plan)
        assert alloc.plan_for(3) == plan

    def test_duplicate_rejected(self):
        alloc = FdmAllocator()
        alloc.allocate(1, 10e6)
        with pytest.raises(ValueError):
            alloc.restore_plan(ChannelPlan(1, 24.2e9, 20e6))

    def test_out_of_band_rejected(self):
        alloc = FdmAllocator()
        with pytest.raises(ValueError):
            alloc.restore_plan(ChannelPlan(0, ISM_24GHZ_HIGH_HZ, 20e6))

    def test_overlap_rejected(self):
        alloc = FdmAllocator()
        alloc.restore_plan(ChannelPlan(0, 24.2e9, 20e6))
        with pytest.raises(ValueError):
            alloc.restore_plan(ChannelPlan(1, 24.21e9, 20e6))


class TestExhaustionAndDegradation:
    """Allocator exhaustion and the AP's graceful handling of it."""

    def _full_allocator(self):
        alloc = FdmAllocator()
        node_id = 0
        while True:
            try:
                alloc.allocate(node_id, 20e6)
            except SpectrumExhausted:
                return alloc, node_id
            node_id += 1

    def test_exhausted_allocator_stays_consistent(self):
        alloc, count = self._full_allocator()
        # The failed allocation left no half-committed state behind.
        assert len(alloc.plans) == count
        for i, a in enumerate(alloc.plans):
            for b in alloc.plans[i + 1:]:
                assert not a.overlaps(b)

    def test_mark_interference_on_full_ap(self):
        from repro.node.access_point import MmxAccessPoint

        ap = MmxAccessPoint()
        node_id = 0
        while True:
            try:
                ap.register_node(node_id, 10e6)
            except SpectrumExhausted:
                break
            node_id += 1
        victim = ap.allocator.plan_for(0)
        hit = ap.mark_interference(victim.low_hz, victim.high_hz)
        assert 0 in hit
        # Fully allocated band + a fresh block: no clean channel exists,
        # so the move degrades gracefully instead of raising.
        before = ap.registration(0)
        assert ap.reallocate_node(0) is None
        assert ap.registration(0) == before
        assert ap.stats()["reallocation_failures"] == 1

    def test_reallocation_failure_counter_accumulates(self):
        from repro.node.access_point import MmxAccessPoint

        ap = MmxAccessPoint()
        ap.register_node(0, 10e6)
        # Block the entire band except the victim's own slot.
        ap.allocator.block_range(ISM_24GHZ_LOW_HZ, ISM_24GHZ_HIGH_HZ)
        assert ap.reallocate_node(0) is None
        assert ap.reallocate_node(0) is None
        assert ap.reallocation_failures == 2


class TestFirstFitRegression:
    """Pins the seed scan's placement order, bit for bit.

    The allocator now runs on :class:`repro.admission.SpectrumBook`;
    these exact centers are the contract that refactor must never
    shift.  Derived from the seed algorithm by hand: cursor walks from
    the band floor, each channel lands at ``cursor + width/2`` and
    advances the cursor by ``width * (1 + guard)``.
    """

    def test_sequential_fill_centers(self):
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=1000.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.25,
                             min_channel_hz=1e-9)
        centers = [alloc.allocate(i, 100.0).center_hz for i in range(4)]
        # width 100, guard step 25: starts at 0, 125, 250, 375.
        assert centers == [50.0, 175.0, 300.0, 425.0]

    def test_gap_reuse_prefers_lowest_fit(self):
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=1000.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        for i in range(5):
            alloc.allocate(i, 100.0)
        alloc.release(1)   # hole at [100, 200)
        alloc.release(3)   # hole at [300, 400)
        # 60 fits the first hole; the next 60 needs the cursor past the
        # first hole's tail occupancy, landing in the second hole.
        assert alloc.allocate(10, 60.0).low_hz == 100.0
        assert alloc.allocate(11, 60.0).low_hz == 300.0
        # 90 skips the 40-wide residue of hole one.
        assert alloc.allocate(12, 90.0).low_hz == 500.0

    def test_guard_respected_around_blocks(self):
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=1000.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.5,
                             min_channel_hz=1e-9)
        alloc.block_range(0.0, 100.0)
        plan = alloc.allocate(0, 100.0)
        # Seed scan: cursor = high + width * guard = 100 + 50.
        assert plan.low_hz == 150.0


class TestReallocateDegradation:
    """Graceful-``None`` moves and the SDM-spill telemetry contract."""

    def test_allocator_reallocate_restores_on_exhaustion(self):
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        plan = alloc.allocate(0, 80.0)
        alloc.block_range(0.0, 100.0)
        with pytest.raises(SpectrumExhausted):
            alloc.reallocate(0)
        # The failed move left the old plan exactly in place.
        assert alloc.plan_for(0) == plan
        assert alloc.allocated_bandwidth_hz == pytest.approx(80.0)

    def test_controller_reallocate_returns_none_under_blocked_band(self):
        from repro.admission import AdmissionController

        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        ctrl = AdmissionController(allocator=alloc)
        ctrl.admit(0, 50.0)  # no bearing: the SDM rung cannot catch it
        alloc.block_range(0.0, 100.0)
        old = ctrl.decision_for(0)
        assert ctrl.reallocate(0) is None
        assert ctrl.decision_for(0) == old  # still on the old channel

    def test_reallocate_spills_to_sdm_and_counts_it(self):
        from repro.admission import AdmissionController
        from repro.telemetry import Recorder

        tel = Recorder()
        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        ctrl = AdmissionController(allocator=alloc, sdm_channels=2,
                                   telemetry=tel)
        ctrl.admit(0, 50.0, bearing_rad=0.3)
        alloc.block_range(0.0, 100.0)
        decision = ctrl.reallocate(0)
        assert decision is not None and decision.state == "sdm"
        counters = {c.name: c.value for c in tel.metrics.counters()}
        assert counters["admission.sdm_spill"] == 1
        assert counters["admission.reallocated"] == 1
        # The freed FDM spectrum really was released.
        assert alloc.allocated_bandwidth_hz == pytest.approx(0.0)

    def test_ap_reallocate_node_admission_path_counts_failures(self):
        from repro.admission import AdmissionController
        from repro.node.access_point import MmxAccessPoint

        alloc = FdmAllocator(band_low_hz=0.0, band_high_hz=100.0,
                             bandwidth_per_bps=1.0, guard_fraction=0.0,
                             min_channel_hz=1e-9)
        ap = MmxAccessPoint(admission=AdmissionController(allocator=alloc))
        ap.register_node(0, 50.0)
        alloc.block_range(0.0, 100.0)
        before = ap.registration(0)
        assert ap.reallocate_node(0) is None
        assert ap.registration(0) == before
        assert ap.stats()["reallocation_failures"] == 1
