"""Make ``python tools/reprolint`` and ``python -m reprolint`` both work.

When invoked as ``python tools/reprolint``, this file runs as a bare
script (no package context), so it puts ``tools/`` on ``sys.path`` and
re-imports itself as the ``reprolint`` package before delegating.
"""

import sys

if __package__:
    from .cli import main
else:  # `python tools/reprolint` — bootstrap the package import
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
