"""Finding baselines: park pre-existing debt, gate only what is new.

A baseline is a checked-in JSON file of finding *fingerprints*.  Runs
with ``--baseline`` subtract fingerprinted findings from the report, so
a tree with historical violations can still gate hard on regressions.

Fingerprints must survive unrelated edits, so they deliberately avoid
line numbers and messages: a finding is identified by its rule code,
its (slash-normalised) path, the *stripped text* of the flagged source
line, and an occurrence index to disambiguate identical lines in one
file.  Moving a violation up or down the file keeps its fingerprint;
changing the offending code invalidates it — which is the point.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from .core import Finding

__all__ = ["BASELINE_VERSION", "fingerprint_findings", "load_baseline",
           "write_baseline"]

BASELINE_VERSION = 1


def _norm_path(path: str) -> str:
    return Path(path).as_posix()


def _line_text(source_lines: list[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


def fingerprint_findings(findings: Iterable[Finding]
                         ) -> list[tuple[Finding, str]]:
    """Pair every finding with its stable fingerprint."""
    sources: dict[str, list[str]] = {}
    ordered = sorted(findings,
                     key=lambda f: (f.path, f.line, f.col, f.code))
    counters: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    for finding in ordered:
        if finding.path not in sources:
            try:
                sources[finding.path] = Path(finding.path).read_text(
                    encoding="utf-8").splitlines()
            except OSError:
                sources[finding.path] = []
        text = _line_text(sources[finding.path], finding.line)
        base = (finding.code, _norm_path(finding.path), text)
        index = counters.get(base, 0)
        counters[base] = index + 1
        digest = hashlib.sha256(
            "\x00".join([*base, str(index)]).encode()).hexdigest()
        out.append((finding, digest[:20]))
    return out


def write_baseline(path: Path | str,
                   findings: Iterable[Finding]) -> int:
    """Persist the current findings as the accepted baseline."""
    entries = {}
    for finding, digest in fingerprint_findings(findings):
        entries[digest] = {"code": finding.code,
                           "path": _norm_path(finding.path)}
    payload = {"version": BASELINE_VERSION,
               "entries": dict(sorted(entries.items()))}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def load_baseline(path: Path | str) -> set[str]:
    """The fingerprints a baseline file accepts.

    Raises ``ValueError`` for malformed or wrong-version files — a
    corrupt baseline silently accepting nothing (or everything) is the
    failure mode this guards against.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION \
            or not isinstance(payload.get("entries"), dict):
        raise ValueError(f"malformed baseline {path}")
    return set(payload["entries"])


def apply_baseline(findings: Iterable[Finding],
                   accepted: set[str]) -> list[Finding]:
    """Findings minus everything the baseline accepts."""
    return [finding for finding, digest in fingerprint_findings(findings)
            if digest not in accepted]
