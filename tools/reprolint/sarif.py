"""SARIF 2.1.0 emitter: findings as a Static Analysis Results file.

SARIF is the interchange format code-review UIs (GitHub code scanning,
VS Code SARIF viewer) ingest; CI uploads the report as an artifact so
reviewers see lint findings inline.  The emitter writes the minimal
conforming subset: one run, one driver, the rule catalogue, and one
result per finding.
"""

from __future__ import annotations

from typing import Any, Iterable

from .core import ENGINE_CODES, Finding
from .registry import all_rules

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"

_ENGINE_DESCRIPTIONS = {
    "PARSE001": "file could not be parsed as Python",
    "SUP001": "a # reprolint: disable directive matches no finding",
}


def _rule_catalogue() -> list[dict[str, Any]]:
    rules = []
    for code, cls in sorted(all_rules().items()):
        rules.append({
            "id": code,
            "name": getattr(cls, "name", code),
            "shortDescription": {"text": cls.description},
        })
    for code in sorted(ENGINE_CODES):
        rules.append({
            "id": code,
            "name": code.lower(),
            "shortDescription": {"text": _ENGINE_DESCRIPTIONS[code]},
        })
    return rules


def to_sarif(findings: Iterable[Finding], version: str) -> dict[str, Any]:
    """The findings as a SARIF 2.1.0 log object (JSON-ready)."""
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "version": version,
                    "informationUri":
                        "https://github.com/mmx-repro/mmx-repro/blob/"
                        "main/docs/static-analysis.md",
                    "rules": _rule_catalogue(),
                },
            },
            "results": results,
        }],
    }
