"""reprolint — an AST-based domain linter for the mmX reproduction.

Generic linters check style; *reprolint* checks the invariants this
codebase's correctness actually hangs on:

* dB and linear power must never be mixed in arithmetic (``UNITS001``)
  and every conversion must go through :mod:`repro.units` (``UNITS002``);
* every random draw must be attributable to a seed (``RNG001``) and no
  simulation path may consult wall-clock time or the stdlib ``random``
  module (``DET001``);
* package façades must export exactly what exists (``API001``);
* exception handlers must not swallow injected faults (``EXC001``).

Usage::

    python tools/reprolint [paths...] [--format human|json]
    python -m repro lint [paths...]        # same thing, via the repro CLI

Per-line suppression::

    noise = legacy_noise_db + power_watts  # reprolint: disable=UNITS001

Whole-file suppression (anywhere in the file)::

    # reprolint: disable-file=DET001

See ``docs/static-analysis.md`` for the rule catalogue and how to add a
rule.
"""

from .core import Finding, lint_file, lint_paths
from .registry import all_rules, get_rule, register

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "lint_file",
    "lint_paths",
    "all_rules",
    "get_rule",
    "register",
    "__version__",
]
