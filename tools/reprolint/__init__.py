"""reprolint — a project-graph domain linter for the mmX reproduction.

Generic linters check style; *reprolint* checks the invariants this
codebase's correctness actually hangs on:

* dB and linear power must never be mixed in arithmetic (``UNITS001``)
  and every conversion must go through :mod:`repro.units` (``UNITS002``);
* every random draw must be attributable to a seed (``RNG001``) and no
  simulation path may consult wall-clock time or the stdlib ``random``
  module (``DET001``);
* package façades must export exactly what exists (``API001``);
* exception handlers must not swallow injected faults (``EXC001``);
* persistent artifacts must go through the durability seam (``DUR001``);
* nothing reachable from a campaign worker may touch shared globals,
  wall clocks, the environment, unseeded RNG or raw write-mode I/O,
  and nothing unpicklable may cross the process boundary
  (``PAR001``-``PAR005`` — the parallel-safety race detector).

v2 analyses the *whole project* at once: per-file AST summaries are
cached by content hash (``.reprolint-cache/``), extracted in parallel,
and assembled into a symbol/import/call graph that the interprocedural
rules traverse.

Usage::

    python tools/reprolint [paths...] [--format human|json|sarif]
    python -m repro lint [paths...]        # same thing, via the repro CLI

Per-line suppression (dead directives are reported as ``SUP001``)::

    noise = legacy_noise_db + power_watts  # reprolint: disable=CODE

Whole-file suppression (anywhere in the file)::

    # reprolint: disable-file=CODE

Pre-existing debt can be parked in a baseline
(``--write-baseline`` / ``--baseline``) so new findings still gate.

See ``docs/static-analysis.md`` for the rule catalogue and how to add a
rule.
"""

from .core import Finding, LintRun, lint_file, lint_paths, run_lint
from .registry import all_rules, get_rule, register

__version__ = "2.0.0"

__all__ = [
    "Finding",
    "LintRun",
    "lint_file",
    "lint_paths",
    "run_lint",
    "all_rules",
    "get_rule",
    "register",
    "__version__",
]
