"""Linter engine: discovery, cached analysis, rule dispatch, suppression.

v2 runs in two layers:

* **file scope** — classic rules that see one file at a time.  Their
  findings depend only on the file's bytes, so the engine computes them
  inside the per-file analysis workers and caches them with the
  :class:`reprolint.project.ModuleSummary` under the content hash.
* **project scope** — rules that traverse the whole-project
  :class:`reprolint.project.ProjectGraph` (``API001``, the ``PAR0xx``
  race detectors).  These re-run every invocation; they are cheap once
  the summaries exist.

The engine also owns the two findings no rule emits: ``PARSE001`` for
unparsable files and ``SUP001`` for ``# reprolint: disable=`` comments
that silence nothing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from .registry import all_rules

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ModuleSummary, ProjectGraph

__all__ = ["Finding", "LintRun", "SourceUnit", "Suppressions",
           "collect_files", "file_scope_rules", "lint_file",
           "lint_paths", "project_scope_rules", "run_lint"]

PARSE_ERROR_CODE = "PARSE001"
UNUSED_SUPPRESSION_CODE = "SUP001"

#: Engine-emitted codes: always active, never in the registry.
ENGINE_CODES = frozenset({PARSE_ERROR_CODE, UNUSED_SUPPRESSION_CODE})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` human line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (cache deserialisation)."""
        return cls(code=payload["code"], message=payload["message"],
                   path=payload["path"], line=payload["line"],
                   col=payload["col"])


@dataclass
class _Directive:
    """One ``# reprolint: disable[-file]=...`` comment, with usage."""

    line: int
    kind: str                   # disable | disable-file
    codes: frozenset[str]       # upper-cased; may contain "ALL"
    used: set[str] = field(default_factory=set)


class Suppressions:
    """Per-line and per-file directives, tracking which ones fire.

    ``suppressed`` records usage so the engine can report directives
    that silence nothing (``SUP001``) — dead suppressions otherwise
    accumulate and hide future regressions.
    """

    def __init__(self, source: str):
        self.directives: list[_Directive] = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            kind, codes_text = match.groups()
            codes = frozenset(c.strip().upper()
                              for c in codes_text.split(","))
            self.directives.append(_Directive(line=lineno, kind=kind,
                                              codes=codes))

    def suppressed(self, finding: Finding) -> bool:
        """Whether a finding is silenced by a directive (marks usage)."""
        hit = False
        for directive in self.directives:
            if directive.kind == "disable" \
                    and directive.line != finding.line:
                continue
            matched = {"ALL", finding.code} & directive.codes
            if matched:
                directive.used.update(matched)
                hit = True
        return hit

    def unused(self, executed_codes: frozenset[str]
               ) -> Iterator[tuple[int, str]]:
        """(line, code) pairs for directives that silenced nothing.

        Restricted to codes whose rules actually ran this invocation:
        a ``--select RNG001`` run must not call a DET001 suppression
        dead.  Blanket ``all`` directives are never reported.
        """
        for directive in self.directives:
            for code in sorted(directive.codes - {"ALL"}):
                if code in executed_codes and code not in directive.used:
                    yield directive.line, code


@dataclass
class SourceUnit:
    """Everything a file-scope rule may need for one file."""

    path: Path
    source: str
    tree: ast.Module
    summary: "ModuleSummary | None" = None

    @property
    def filename(self) -> str:
        """Base name of the file under lint (e.g. ``units.py``)."""
        return self.path.name

    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        """Construct a finding anchored at an AST node."""
        return Finding(code=code, message=message, path=str(self.path),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


#: Backwards-compatible alias — v1 rules called this ``LintContext``.
LintContext = SourceUnit


def _instantiate(codes: Iterable[str]) -> list:
    rules = all_rules()
    return [rules[code]() for code in sorted(codes)]


def file_scope_rules() -> list:
    """Instances of every registered file-scope rule."""
    return _instantiate(code for code, cls in all_rules().items()
                        if getattr(cls, "scope", "file") == "file")


def project_scope_rules() -> list:
    """Instances of every registered project-scope rule."""
    return _instantiate(code for code, cls in all_rules().items()
                        if getattr(cls, "scope", "file") == "project")


def _selected_codes(select: Iterable[str] | None,
                    ignore: Iterable[str] | None) -> frozenset[str]:
    rules = all_rules()
    chosen = set(rules) if select is None else {c.upper() for c in select}
    chosen -= {c.upper() for c in (ignore or ())}
    unknown = chosen - set(rules)
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return frozenset(chosen)


def collect_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of .py files."""
    from .project import CACHE_DIR_NAME
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and CACHE_DIR_NAME not in p.parts)
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


@dataclass
class LintRun:
    """The full result of one engine invocation."""

    findings: list[Finding]
    stats: dict[str, Any]


def run_lint(paths: Iterable[Path | str],
             select: Iterable[str] | None = None,
             ignore: Iterable[str] | None = None,
             *,
             jobs: int | None = None,
             cache_dir: Path | None = None,
             report_paths: set[str] | None = None) -> LintRun:
    """Analyze, build the graph, run both rule scopes, filter, sort.

    ``cache_dir=None`` disables the summary cache (the library-call
    default; the CLI turns it on).  ``report_paths``, when given, limits
    *reported* findings to those files while still building the project
    graph over everything — the ``--changed-only`` contract: analysis
    stays whole-project so interprocedural findings do not flicker with
    the diff.
    """
    from .project import ProjectAnalyzer, ProjectGraph

    selected = _selected_codes(select, ignore)
    files = list(collect_files(paths))
    analyzer = ProjectAnalyzer(cache_dir=cache_dir, jobs=jobs)
    analyzed = analyzer.analyze(files)

    suppressions: dict[str, Suppressions] = {}
    raw: list[Finding] = []
    for item in analyzed:
        display = str(item.path)
        suppressions[display] = Suppressions(item.source)
        if item.parse_error is not None:
            err = item.parse_error
            raw.append(Finding(
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {err['msg']}",
                path=display, line=err["line"], col=err["col"]))
            continue
        for payload in item.local_findings:
            finding = Finding.from_dict(payload)
            if finding.code in selected:
                raw.append(finding)

    graph = ProjectGraph(analyzed)
    for rule in project_scope_rules():
        if rule.code not in selected:
            continue
        raw.extend(rule.check_project(graph))

    kept: list[Finding] = []
    for finding in raw:
        if finding.code == PARSE_ERROR_CODE:
            kept.append(finding)     # parse errors are unsuppressable
            continue
        supp = suppressions.get(finding.path)
        if supp is not None and supp.suppressed(finding):
            continue
        kept.append(finding)

    for display, supp in suppressions.items():
        for line, code in supp.unused(selected):
            kept.append(Finding(
                code=UNUSED_SUPPRESSION_CODE,
                message=f"suppression of {code} matches no finding "
                        f"(remove the stale directive)",
                path=display, line=line, col=0))

    if report_paths is not None:
        resolved = {str(Path(p).resolve()) for p in report_paths}
        kept = [f for f in kept
                if str(Path(f.path).resolve()) in resolved]

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    stats = {
        "files": len(files),
        "cache_hits": analyzer.hits,
        "cache_misses": analyzer.misses,
        "rules": len(selected),
        "worker_entries": len(graph.entries),
        "worker_reachable": len(graph.reachable),
        "findings": len(kept),
    }
    return LintRun(findings=kept, stats=stats)


def lint_file(path: Path | str,
              select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None) -> list[Finding]:
    """Run the (selected) rule pack over one file."""
    return run_lint([path], select=select, ignore=ignore).findings


def lint_paths(paths: Iterable[Path | str],
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint every .py file reachable from ``paths``."""
    return run_lint(paths, select=select, ignore=ignore).findings
