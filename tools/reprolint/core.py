"""Linter engine: file discovery, parsing, suppression, rule dispatch.

The engine is deliberately small: it parses each file once, hands the
shared AST to every selected rule, and filters the findings through the
suppression comments before reporting.  All rule logic lives in
:mod:`reprolint.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .registry import all_rules

__all__ = ["Finding", "LintContext", "Suppressions",
           "lint_file", "lint_paths", "collect_files"]

PARSE_ERROR_CODE = "PARSE001"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` human line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col}


class Suppressions:
    """Per-line and per-file ``# reprolint: disable=...`` directives."""

    def __init__(self, source: str):
        self.line_codes: dict[int, set[str]] = {}
        self.file_codes: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            kind, codes_text = match.groups()
            codes = {c.strip().upper() for c in codes_text.split(",")}
            if kind == "disable-file":
                self.file_codes |= codes
            else:
                self.line_codes.setdefault(lineno, set()).update(codes)

    def suppressed(self, finding: Finding) -> bool:
        """Whether a finding is silenced by a directive."""
        if {"ALL", finding.code} & self.file_codes:
            return True
        at_line = self.line_codes.get(finding.line, set())
        return bool({"ALL", finding.code} & at_line)


@dataclass
class LintContext:
    """Everything a rule may need beyond the AST itself."""

    path: Path
    source: str

    @property
    def filename(self) -> str:
        """Base name of the file under lint (e.g. ``units.py``)."""
        return self.path.name

    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        """Construct a finding anchored at an AST node."""
        return Finding(code=code, message=message, path=str(self.path),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


def _selected_rules(select: Iterable[str] | None,
                    ignore: Iterable[str] | None) -> list:
    rules = all_rules()
    chosen = set(rules) if select is None else {c.upper() for c in select}
    chosen -= {c.upper() for c in (ignore or ())}
    unknown = chosen - set(rules)
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [rules[code]() for code in sorted(chosen)]


def lint_file(path: Path | str,
              select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None) -> list[Finding]:
    """Run the (selected) rule pack over one file."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(code=PARSE_ERROR_CODE,
                        message=f"could not parse file: {exc.msg}",
                        path=str(path), line=exc.lineno or 1,
                        col=exc.offset or 0)]
    suppressions = Suppressions(source)
    ctx = LintContext(path=path, source=source)
    findings: list[Finding] = []
    for rule in _selected_rules(select, ignore):
        findings.extend(rule.check(tree, ctx))
    return sorted((f for f in findings if not suppressions.suppressed(f)),
                  key=lambda f: (f.line, f.col, f.code))


def collect_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of .py files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(paths: Iterable[Path | str],
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint every .py file reachable from ``paths``."""
    findings: list[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, select=select, ignore=ignore))
    return findings
