"""Submodule for the API001 positive fixture."""

__all__ = ["exists"]


def exists() -> int:
    """The one genuinely public name."""
    return 1


def semi_private() -> int:
    """Defined, but deliberately not in __all__."""
    return 2
