"""Fixture: API001 positives — a façade that drifted from its submodule."""

from .helpers import exists, missing_name, semi_private
from . import ghost_module

__all__ = ["exists", "missing_name", "unbound_export"]
