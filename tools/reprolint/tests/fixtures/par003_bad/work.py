from .clock import flavor, stamp


def run_trial(trial):
    return middle(trial)


def middle(trial):
    return (stamp(), flavor(), trial)
