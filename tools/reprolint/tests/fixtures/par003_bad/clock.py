import os
import time


def stamp():
    return time.time()


def flavor():
    return os.environ.get("MMX_MODE", "dense")
