"""Raw write-mode I/O on a persistent artifact: DUR001 fires."""

from pathlib import Path


def journal(path, lines):
    with open(path, "w", encoding="utf-8") as fh:  # torn on crash
        fh.writelines(lines)


def journal_kw(path, lines):
    with open(path, encoding="utf-8", mode="a") as fh:  # no fsync
        fh.writelines(lines)


def export(path, text):
    Path(path).write_text(text, encoding="utf-8")  # not atomic
