"""Fixture: DET001 negatives — telemetry stamped from a simulated clock.

The pattern ``repro.telemetry`` uses: the clock is a plain counter that
only moves when a simulation driver advances it, so every timestamp —
and therefore every export — regenerates bit-identically from a seed.
"""


class SimClock:
    """Simulated seconds; advanced explicitly, never read from the host."""

    def __init__(self, start_s=0.0):
        self.now_s = start_s

    def advance(self, dt_s):
        """The only way time moves."""
        self.now_s += dt_s
        return self.now_s


class SimTimeRecorder:
    """Telemetry stamped from the sim clock — exports are replayable."""

    def __init__(self, clock):
        self.clock = clock
        self.events = []

    def event(self, name):
        """Stamp an event with the current simulated instant."""
        self.events.append((name, self.clock.now_s))

    def span_duration(self, start_s):
        """Span edges are simulated seconds, stable across hosts."""
        return self.clock.now_s - start_s
