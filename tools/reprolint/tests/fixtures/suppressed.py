"""Fixture: suppression directives silence findings line- and file-wide."""
# reprolint: disable-file=DET001

import random

lin = 10.0 ** (1.2 / 10.0)  # reprolint: disable=UNITS002

jitter = random.random()    # silenced by the disable-file directive above

loud = 10.0 ** (3.0 / 10.0)  # NOT suppressed: UNITS002 still fires here
