"""Fixture: UNITS002 negatives — conversions through repro.units."""

from repro.units import amplitude_to_db, db_to_linear, linear_to_db

x_db = 12.0
ratio = 4.0

lin = db_to_linear(x_db)
db = linear_to_db(ratio)
db2 = amplitude_to_db(ratio)

# Powers of other bases and other logs are not conversions.
area = 2.0 ** 10
nats = db * 0.23
