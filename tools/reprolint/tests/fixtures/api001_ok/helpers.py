"""Submodule for the API001 negative fixture."""

__all__ = ["exists", "also_exists"]


def exists() -> int:
    """A real export."""
    return 1


def also_exists() -> int:
    """Another real export."""
    return 2
