"""Fixture: API001 negative — a façade in sync with its submodule."""

from .helpers import exists, also_exists

__all__ = ["exists", "also_exists"]
