"""Submodule for the dynamic-__all__ fixture."""

__all__ = ["exists"]


def exists() -> int:
    """A real export."""
    return 1
