"""Fixture: API001 positive — the unauditable dir()-comprehension façade."""

from .helpers import exists

__all__ = [name for name in dir() if not name.startswith("_")]
