import numpy as np


def run_trial(trial):
    rng = np.random.default_rng(trial.seed)
    return draw(rng)


def draw(rng):
    return rng.normal()
