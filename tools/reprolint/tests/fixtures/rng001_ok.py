"""Fixture: RNG001 negatives — seeded or sanctioned randomness."""

from dataclasses import dataclass, field

import numpy as np

from repro.rng import fresh_rng

rng = np.random.default_rng(42)

child = np.random.default_rng(np.random.SeedSequence(7))

sanctioned = fresh_rng()


def run(seed: int) -> np.random.Generator:
    """Seeds may be variables; only literal None / missing is flagged."""
    return np.random.default_rng(seed)


@dataclass
class Config:
    """Sanctioned factory: repro.rng honours REPRO_SEED."""

    rng: np.random.Generator = field(default_factory=fresh_rng)
