"""Fixture: EXC001 negatives — specific catches, or observe-and-reraise."""

import logging


def catch_specific(op):
    """Catching the exact fault type is the intended pattern."""
    try:
        return op()
    except KeyError:
        return None


def observe_and_reraise(op):
    """A broad handler that re-raises observes without swallowing."""
    try:
        return op()
    except Exception:
        logging.getLogger(__name__).exception("op failed")
        raise
