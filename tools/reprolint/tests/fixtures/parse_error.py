"""Fixture: unparsable files surface as PARSE001 findings."""

def broken(:
    pass
