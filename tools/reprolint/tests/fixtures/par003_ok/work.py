def run_trial(trial, now_s):
    return advance(trial, now_s)


def advance(trial, now_s):
    return trial + now_s
