import time

from .work import run_trial


def launch(pool, shards):
    started = time.monotonic()  # reprolint: disable=DET001
    result = pool.run_shards(run_shards_arg, shards)
    return result, time.monotonic() - started  # reprolint: disable=DET001


def run_shards_arg(trial):
    return run_trial(trial, 0.0)
