from .work import run_trial


def launch(pool, shards, report_path):
    results = pool.run_shards(run_trial, shards)
    with open(report_path, "w") as handle:
        handle.write(repr(results))
    return results
