def run_trial(trial):
    return trial * 2
