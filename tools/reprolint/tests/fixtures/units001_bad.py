"""Fixture: UNITS001 positives — dB and linear mixed in arithmetic."""

snr_db = 15.0
power_watts = 0.001
noise_linear = 1e-9
margin_dbm = -60.0

budget = snr_db + power_watts          # add: dB + watts

scaled = margin_dbm * noise_linear     # mult: dBm * linear

snr_db += power_watts                  # augmented assign

clipped = snr_db > noise_linear        # comparison across unit systems
