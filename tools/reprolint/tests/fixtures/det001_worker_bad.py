"""Fixture: DET001 positives — a campaign worker that invents entropy.

The anti-pattern the engine's plan-fixed seeding exists to prevent: a
worker process that consults the wall clock or the stdlib RNG computes
a different shard result on every run (and on every host), so a resumed
campaign silently disagrees with the run it resumes.
"""

import random
import time


def run_shard(trial_fn, indices):
    """Worker entry point seeded from wherever it happens to run."""
    rng_seed = time.time_ns()  # DET001: per-run entropy
    results = []
    for index in indices:
        jitter = random.random()  # DET001: process-local stdlib RNG
        started = time.perf_counter()  # DET001: host timing in results
        values = trial_fn(rng_seed + index, index)
        results.append((index, jitter, time.perf_counter() - started,
                        values))
    return results
