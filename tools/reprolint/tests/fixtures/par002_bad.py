"""Lambdas, closures and bound methods handed across the pool boundary."""


def launch(pool, shards):
    pool.submit(lambda shard: shard + 1, shards)

    def trial(shard):
        return shard

    return pool.run_shards(trial, shards)


class Driver:
    def go(self, pool, shards):
        return pool.run_shards(self.trial, shards)

    def trial(self, shard):
        return shard
