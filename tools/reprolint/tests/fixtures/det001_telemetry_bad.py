"""Fixture: DET001 positives — a telemetry recorder backed by wall time.

The anti-pattern the sim-time telemetry design exists to prevent:
stamping metrics/spans from the host clock makes every export
non-reproducible.
"""

import time


class WallClockRecorder:
    """Telemetry stamped from the host — every export differs per run."""

    def __init__(self):
        self.started_at = time.time()
        self.events = []

    def event(self, name):
        """Stamp an event with wall time (the DET001 violation)."""
        self.events.append((name, time.perf_counter()))

    def span_duration(self, start):
        """Span edges measured on the host clock drift with load."""
        return time.monotonic() - start
