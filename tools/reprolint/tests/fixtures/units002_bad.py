"""Fixture: UNITS002 positives — hand-rolled conversions outside units.py."""

import math

import numpy as np

x_db = 12.0
ratio = 4.0

lin = 10.0 ** (x_db / 10.0)            # dB -> linear by hand

amp = np.power(10.0, x_db / 20.0)      # dB -> amplitude by hand

db = 10.0 * np.log10(ratio)            # linear -> dB by hand

db2 = 20.0 * math.log10(ratio)         # amplitude -> dB by hand
