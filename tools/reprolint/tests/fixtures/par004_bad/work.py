from .noise import thermal


def run_trial(trial):
    return sample(trial)


def sample(trial):
    return thermal((trial, trial))
