import numpy as np


def thermal(shape):
    rng = np.random.default_rng()
    return rng.normal(size=shape)
