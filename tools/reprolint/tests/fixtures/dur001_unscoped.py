"""Raw writes outside engine/cluster/telemetry: out of DUR001 scope.

Experiments rendering figures and ad-hoc tooling may write plain
files; only the modules that persist *durable* artifacts are held to
the durability seam.
"""

from pathlib import Path


def render(path, text):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def render_bytes(path, data):
    Path(path).write_bytes(data)
