"""Fixture: DET001 negatives — a campaign worker driven by its plan.

The pattern ``repro.engine`` uses: every trial's seed is fixed in the
campaign plan before any worker starts, and anything timed is timed in
simulated seconds, so a shard computes the same result on any worker,
any host, any run — which is what makes resume and parallel-vs-serial
parity possible at all.
"""

import numpy as np


class SimClock:
    """Simulated seconds; advanced explicitly, never read from the host."""

    def __init__(self, start_s=0.0):
        self.now_s = start_s

    def advance(self, dt_s):
        """The only way time moves."""
        self.now_s += dt_s
        return self.now_s


def run_shard(trial_fn, trials, time_step_s=0.1):
    """Worker entry point: every input arrives via the shard spec."""
    clock = SimClock()
    results = []
    for index, seed in trials:
        rng = np.random.default_rng(seed)  # seed fixed by the plan
        started_s = clock.now_s
        values = trial_fn(rng, index)
        clock.advance(time_step_s)
        results.append((index, seed, clock.now_s - started_s, values))
    return results
