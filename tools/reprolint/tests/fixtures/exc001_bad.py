"""Fixture: EXC001 positives — handlers that swallow injected faults."""


def swallow_everything(op):
    """The classic chaos-test killer."""
    try:
        return op()
    except:  # noqa: E722
        return None


def swallow_exception(op):
    """Exception-wide catch without a re-raise."""
    try:
        return op()
    except Exception:
        return None


def swallow_in_tuple(op):
    """Hiding BaseException inside a tuple does not help."""
    try:
        return op()
    except (ValueError, BaseException):
        return None
