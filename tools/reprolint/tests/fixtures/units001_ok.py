"""Fixture: UNITS001 negatives — consistent units, or laundered ones."""

from repro.units import db_to_linear, linear_to_db

snr_db = 15.0
gain_db = 3.0
power_watts = 0.001
noise_linear = 1e-9

total_db = snr_db + gain_db                      # dB + dB is fine
total_linear = power_watts / noise_linear        # linear / linear is fine

# Passing through a repro.units converter launders the unit class.
combined = db_to_linear(snr_db) * noise_linear
back_db = linear_to_db(power_watts / noise_linear) + gain_db
