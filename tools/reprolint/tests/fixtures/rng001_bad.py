"""Fixture: RNG001 positives — global state and unseeded generators."""

from dataclasses import dataclass, field

import numpy as np

np.random.seed(0)                      # legacy global-state seeding

draws = np.random.normal(size=8)       # legacy global-state draw

rng = np.random.default_rng()          # unseeded generator

rng_none = np.random.default_rng(None)  # explicitly unseeded


@dataclass
class Config:
    """Unseeded generator hidden behind a default factory."""

    rng: np.random.Generator = field(
        default_factory=np.random.default_rng)
