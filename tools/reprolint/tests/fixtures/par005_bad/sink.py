def record(path, text):
    with open(path, "w") as handle:
        handle.write(text)
