from .work import run_trial


def launch(pool, shards):
    return pool.run_shards(run_trial, shards)
