from .sink import record


def run_trial(trial):
    return persist(trial)


def persist(trial):
    record("trial.out", str(trial))
    return trial
