from .work import run_trial


def launch(executor, shards):
    return executor.run_shards(run_trial, shards)
