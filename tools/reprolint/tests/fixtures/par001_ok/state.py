"""A mutable-literal global that nothing ever writes: safe to read."""

LOOKUP = {"alpha": 1, "beta": 2}
