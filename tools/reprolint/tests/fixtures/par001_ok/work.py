from .state import LOOKUP


def run_trial(trial):
    return resolve(trial)


def resolve(trial):
    return LOOKUP["alpha"] + trial
