"""Fixture: DET001 positives — wall clocks and stdlib random."""

import datetime
import random
import time

from random import choice

jitter = random.random() + 0.5

started_at = time.time()

tick = time.perf_counter()

stamp = datetime.datetime.now()

pick = choice([1, 2, 3])
