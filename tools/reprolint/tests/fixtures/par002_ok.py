"""Picklable handoffs: module-level functions, partials, data attrs."""

import functools


def trial(shard, gain_db=0.0):
    return shard


def launch(pool, shards):
    pool.submit(trial, shards)
    return pool.run_shards(functools.partial(trial, gain_db=3.0), shards)


class Driver:
    def __init__(self, trial_fn):
        self.trial_fn = trial_fn

    def go(self, pool, shards):
        # self.trial_fn is a *data attribute* (whatever the caller
        # passed), not a bound method: not statically decidable.
        return pool.run_shards(self.trial_fn, shards)
