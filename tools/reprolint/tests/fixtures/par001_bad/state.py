"""Module-global mutable state shared (incorrectly) across shards."""

CACHE = {}
TOTALS = []


def remember(key, value):
    CACHE[key] = value


def tally(value):
    TOTALS.append(value)
