"""Parent side: hands run_trial across the worker boundary."""

from .work import run_trial


def launch(executor, shards):
    return executor.run_shards(run_trial, shards)
