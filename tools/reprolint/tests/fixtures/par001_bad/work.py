"""Worker path: the mutation is two call-hops below the entry."""

from .state import remember, tally


def run_trial(trial):
    return step(trial)


def step(trial):
    remember(trial, 1)
    tally(trial)
    return trial
