"""Fixture: DET001 negatives — explicit simulated time, seeded draws."""

import numpy as np


def step(now_s: float, dt_s: float, rng: np.random.Generator) -> float:
    """Simulated time is threaded through as an argument."""
    jitter = rng.uniform(0.0, dt_s)
    return now_s + dt_s + jitter


def airtime(payload_bytes: int, rate_bps: float) -> float:
    """Arithmetic on simulated durations is not a wall-clock read."""
    return payload_bytes * 8.0 / rate_bps
