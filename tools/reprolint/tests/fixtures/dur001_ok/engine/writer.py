"""Durable-seam I/O and read-mode opens: DUR001 stays silent."""

from repro.durability import DurableFile, append_line, atomic_replace


def journal(path, lines):
    with DurableFile(path, create=True) as journal_file:
        for line in lines:
            journal_file.append(line)


def export(path, text):
    atomic_replace(path, text)


def append(path, line):
    append_line(path, line)


def load(path):
    with open(path, encoding="utf-8") as fh:  # reads are fine
        return fh.read()
