"""RNG001: every random draw must be attributable to a seed.

Every fault/chaos result in this repo depends on bit-reproducible
simulations; one ``np.random.default_rng()`` (no seed) or legacy
global-state call (``np.random.normal`` etc.) breaks replay silently.
The sanctioned escape hatch is :func:`repro.rng.fresh_rng`, which
honours the ``REPRO_SEED`` environment variable and is the *only*
place an unseeded generator may be constructed.

File-scope: the transitive variant — unseeded RNG reachable from a
worker entry point — is ``PAR004`` in :mod:`reprolint.rules.parallel`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import (GLOBAL_STATE_CALLS, is_np_random,
                       is_unseeded_rng_call)
from ..core import Finding, SourceUnit
from ..registry import register

#: The one module allowed to construct unseeded generators.
RNG_AUTHORITY_FILES = frozenset({"rng.py"})


@register
class UnseededRandomness:
    """RNG001: global-state numpy RNG use, or an unseeded generator."""

    code = "RNG001"
    name = "unseeded-randomness"
    scope = "file"
    description = ("np.random global-state call or unseeded "
                   "default_rng(); route through repro.rng.fresh_rng")

    def check(self, unit: SourceUnit) -> Iterator[Finding]:
        """Yield a finding per determinism-breaking RNG construction."""
        if unit.filename in RNG_AUTHORITY_FILES:
            return
        call_funcs = {id(n.func) for n in ast.walk(unit.tree)
                      if isinstance(n, ast.Call)}
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and is_np_random(func.value)):
                    if func.attr in GLOBAL_STATE_CALLS:
                        yield unit.finding(
                            self.code,
                            f"np.random.{func.attr} uses hidden global "
                            "state; draw from an explicitly seeded "
                            "np.random.Generator instead",
                            node)
                    elif func.attr == "default_rng" \
                            and is_unseeded_rng_call(node):
                        yield unit.finding(
                            self.code,
                            "unseeded np.random.default_rng(); thread a "
                            "seeded Generator through, or use "
                            "repro.rng.fresh_rng()",
                            node)
                elif (isinstance(func, ast.Name)
                        and func.id == "default_rng"
                        and is_unseeded_rng_call(node)):
                    yield unit.finding(
                        self.code,
                        "unseeded default_rng(); thread a seeded Generator "
                        "through, or use repro.rng.fresh_rng()",
                        node)
            elif (isinstance(node, ast.Attribute)
                    and node.attr == "default_rng"
                    and is_np_random(node.value)
                    and id(node) not in call_funcs):
                # A bare reference (e.g. field(default_factory=
                # np.random.default_rng)) can only ever construct an
                # unseeded generator.
                yield unit.finding(
                    self.code,
                    "reference to np.random.default_rng used as a factory "
                    "constructs unseeded generators; use "
                    "repro.rng.fresh_rng",
                    node)
