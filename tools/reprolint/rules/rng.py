"""RNG001: every random draw must be attributable to a seed.

Every fault/chaos result in this repo depends on bit-reproducible
simulations; one ``np.random.default_rng()`` (no seed) or legacy
global-state call (``np.random.normal`` etc.) breaks replay silently.
The sanctioned escape hatch is :func:`repro.rng.fresh_rng`, which
honours the ``REPRO_SEED`` environment variable and is the *only*
place an unseeded generator may be constructed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, LintContext
from ..registry import register

#: Legacy numpy global-state API: any call is a determinism leak.
GLOBAL_STATE_CALLS = frozenset({
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "ranf", "sample", "choice", "shuffle",
    "permutation", "normal", "uniform", "standard_normal", "poisson",
    "exponential", "binomial", "beta", "gamma", "bytes",
})

#: The one module allowed to construct unseeded generators.
RNG_AUTHORITY_FILES = frozenset({"rng.py"})


def _is_np_random(node: ast.AST) -> bool:
    """Matches the ``np.random`` / ``numpy.random`` attribute chain."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


def _unseeded_call(node: ast.Call) -> bool:
    """Whether a default_rng(...) call provides no usable seed."""
    if node.keywords:
        return any(kw.arg == "seed" and isinstance(kw.value, ast.Constant)
                   and kw.value.value is None for kw in node.keywords)
    if not node.args:
        return True
    first = node.args[0]
    return isinstance(first, ast.Constant) and first.value is None


@register
class UnseededRandomness:
    """RNG001: global-state numpy RNG use, or an unseeded generator."""

    code = "RNG001"
    name = "unseeded-randomness"
    description = ("np.random global-state call or unseeded "
                   "default_rng(); route through repro.rng.fresh_rng")

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        """Yield a finding per determinism-breaking RNG construction."""
        if ctx.filename in RNG_AUTHORITY_FILES:
            return
        call_funcs = {id(n.func) for n in ast.walk(tree)
                      if isinstance(n, ast.Call)}
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and _is_np_random(func.value)):
                    if func.attr in GLOBAL_STATE_CALLS:
                        yield ctx.finding(
                            self.code,
                            f"np.random.{func.attr} uses hidden global "
                            "state; draw from an explicitly seeded "
                            "np.random.Generator instead",
                            node)
                    elif func.attr == "default_rng" and _unseeded_call(node):
                        yield ctx.finding(
                            self.code,
                            "unseeded np.random.default_rng(); thread a "
                            "seeded Generator through, or use "
                            "repro.rng.fresh_rng()",
                            node)
                elif (isinstance(func, ast.Name)
                        and func.id == "default_rng"
                        and _unseeded_call(node)):
                    yield ctx.finding(
                        self.code,
                        "unseeded default_rng(); thread a seeded Generator "
                        "through, or use repro.rng.fresh_rng()",
                        node)
            elif (isinstance(node, ast.Attribute)
                    and node.attr == "default_rng"
                    and _is_np_random(node.value)
                    and id(node) not in call_funcs):
                # A bare reference (e.g. field(default_factory=
                # np.random.default_rng)) can only ever construct an
                # unseeded generator.
                yield ctx.finding(
                    self.code,
                    "reference to np.random.default_rng used as a factory "
                    "constructs unseeded generators; use "
                    "repro.rng.fresh_rng",
                    node)
