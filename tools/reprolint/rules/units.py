"""Dimensional-discipline rules: keep dB and linear power apart.

OTAM's whole premise is per-beam gain differences of 10-20 dB; one
``snr_db + power_watts`` slip corrupts every downstream benchmark
trajectory silently.  Two rules enforce the discipline:

* ``UNITS001`` — arithmetic that mixes dB-suffixed identifiers with
  linear-suffixed ones without passing through a :mod:`repro.units`
  converter.
* ``UNITS002`` — hand-rolled conversions (``10 ** (x / 10)``,
  ``10 * log10(x)``, ``np.power(10, ...)``) anywhere outside
  ``units.py``, the single conversion authority.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, SourceUnit
from ..registry import register

DB_NAMES = frozenset({"db", "dbm", "dbi"})
DB_SUFFIXES = ("_db", "_dbm", "_dbi")
LINEAR_NAMES = frozenset({"watts", "linear", "lin", "mw", "milliwatts"})
LINEAR_SUFFIXES = ("_watts", "_linear", "_lin", "_mw", "_milliwatts")

#: Calls through these names launder units: their result is trusted.
CONVERTER_NAMES = frozenset({
    "db_to_linear", "linear_to_db", "dbm_to_watts", "watts_to_dbm",
    "dbm_to_milliwatts", "milliwatts_to_dbm", "dbm_to_db_ratio",
    "amplitude_to_db", "db_to_amplitude",
})

#: Files allowed to hand-roll conversions (the conversion authority).
CONVERSION_AUTHORITY_FILES = frozenset({"units.py"})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)


def unit_class(identifier: str) -> str | None:
    """Classify an identifier as ``"db"``, ``"linear"`` or neither."""
    name = identifier.lower()
    if name in DB_NAMES or name.endswith(DB_SUFFIXES):
        return "db"
    if name in LINEAR_NAMES or name.endswith(LINEAR_SUFFIXES):
        return "linear"
    return None


def _operand_classes(node: ast.AST) -> set[str]:
    """Unit classes reachable in an operand without crossing a call.

    A :class:`ast.Call` is a trust boundary: whatever units its
    arguments carried, the callee defines the units of the result, so
    the walk does not descend into calls (that is exactly how passing a
    value through ``repro.units`` converters silences UNITS001).
    """
    classes: set[str] = set()
    if isinstance(node, ast.Name):
        cls = unit_class(node.id)
        if cls:
            classes.add(cls)
    elif isinstance(node, ast.Attribute):
        cls = unit_class(node.attr)
        if cls:
            classes.add(cls)
    elif isinstance(node, ast.BinOp):
        classes |= _operand_classes(node.left)
        classes |= _operand_classes(node.right)
    elif isinstance(node, ast.UnaryOp):
        classes |= _operand_classes(node.operand)
    elif isinstance(node, ast.Subscript):
        classes |= _operand_classes(node.value)
    elif isinstance(node, ast.Starred):
        classes |= _operand_classes(node.value)
    return classes


@register
class MixedUnitArithmetic:
    """UNITS001: dB-named and linear-named values mixed in arithmetic."""

    code = "UNITS001"
    name = "mixed-unit-arithmetic"
    scope = "file"
    description = ("Arithmetic mixes *_db/*_dbm identifiers with "
                   "*_watts/*_linear ones without a repro.units converter")

    def check(self, unit: SourceUnit) -> Iterator[Finding]:
        """Yield a finding for every mixed-unit arithmetic expression."""
        for node in ast.walk(unit.tree):
            pairs: list[tuple[ast.AST, ast.AST]] = []
            if (isinstance(node, ast.BinOp)
                    and isinstance(node.op, _ARITH_OPS)):
                pairs.append((node.left, node.right))
            elif (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, _ARITH_OPS)):
                pairs.append((node.target, node.value))
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                pairs.extend(zip(operands, operands[1:]))
            for left, right in pairs:
                left_cls = _operand_classes(left)
                right_cls = _operand_classes(right)
                if (left_cls | right_cls) >= {"db", "linear"} \
                        and left_cls != right_cls:
                    yield unit.finding(
                        self.code,
                        "dB-scale and linear-scale values mixed in "
                        "arithmetic; convert through repro.units first",
                        node)
                    break  # one finding per expression is enough


def _is_log10_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "log10"
    if isinstance(func, ast.Attribute):
        return func.attr == "log10"
    return False


def _is_ten(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and float(node.value) == 10.0)


def _contains_log10(node: ast.AST) -> bool:
    """Whether a multiplicative subtree contains a log10 call."""
    if _is_log10_call(node):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return _contains_log10(node.left) or _contains_log10(node.right)
    if isinstance(node, ast.UnaryOp):
        return _contains_log10(node.operand)
    return False


@register
class HandRolledConversion:
    """UNITS002: dB conversions hand-rolled outside ``units.py``."""

    code = "UNITS002"
    name = "hand-rolled-conversion"
    scope = "file"
    description = ("10**(x/10) / 10*log10(x) written outside repro.units, "
                   "the single conversion authority")

    def check(self, unit: SourceUnit) -> Iterator[Finding]:
        """Yield a finding per hand-rolled dB<->linear conversion."""
        if unit.filename in CONVERSION_AUTHORITY_FILES:
            return
        for node in ast.walk(unit.tree):
            if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow)
                    and _is_ten(node.left)):
                yield unit.finding(
                    self.code,
                    "hand-rolled dB->linear conversion (10 ** ...); use "
                    "repro.units (db_to_linear / db_to_amplitude / "
                    "dbm_to_milliwatts)",
                    node)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "power"
                    and node.args and _is_ten(node.args[0])):
                yield unit.finding(
                    self.code,
                    "hand-rolled dB->linear conversion (np.power(10, ...)); "
                    "use repro.units",
                    node)
            elif _is_log10_call(node):
                yield unit.finding(
                    self.code,
                    "hand-rolled linear->dB conversion (log10); use "
                    "repro.units (linear_to_db / amplitude_to_db / "
                    "milliwatts_to_dbm)",
                    node)
