"""DUR001: persistent artifacts must go through the durability seam.

PR 7 built ``repro.durability`` so that every persistent artifact —
campaign journals, AP checkpoints, telemetry exports — is written
atomically (write-temp → fsync → rename → fsync parent dir) or
appended with fsync.  A raw ``open(path, "w")`` or
``Path.write_text`` in :mod:`repro.engine`, :mod:`repro.cluster` or
:mod:`repro.telemetry` reintroduces exactly the failure modes the seam
closed: a crash mid-write tears the file, an unsynced directory entry
loses it entirely, and the fault-injection harness
(:class:`repro.durability.FaultyFs`) can no longer see the write.

Read-mode opens are fine — torn *reads* are what the scanners verify —
and the rest of the tree (experiments rendering figures, tools) is out
of scope: the rule only fires under an ``engine``, ``cluster`` or
``telemetry`` path segment.  The dataflow-aware variant — any raw
write *reachable from a worker*, regardless of path — is ``PAR005``
in :mod:`reprolint.rules.parallel`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..astutil import WRITE_METHODS, write_mode
from ..core import Finding, SourceUnit
from ..registry import register

SCOPED_DIRS = frozenset({"engine", "cluster", "telemetry"})
"""Path segments whose files persist durable artifacts."""


@register
class RawArtifactWrite:
    """DUR001: raw write-mode I/O on a persistent-artifact module."""

    code = "DUR001"
    name = "raw-artifact-write"
    scope = "file"
    description = ("write-mode open()/write_text()/write_bytes() in "
                   "engine/cluster/telemetry; route persistent "
                   "artifacts through repro.durability "
                   "(atomic_replace / DurableFile)")

    def check(self, unit: SourceUnit) -> Iterator[Finding]:
        """Yield a finding per raw write on a scoped module."""
        if not SCOPED_DIRS & set(Path(unit.path).parts):
            return
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = write_mode(node)
                if mode is not None:
                    yield unit.finding(
                        self.code,
                        f"open(..., {mode!r}) writes a persistent "
                        "artifact without atomicity or fsync; use "
                        "repro.durability.atomic_replace or "
                        "DurableFile",
                        node)
            elif isinstance(func, ast.Attribute) \
                    and func.attr in WRITE_METHODS:
                yield unit.finding(
                    self.code,
                    f".{func.attr}() is not atomic and never fsyncs; "
                    "use repro.durability.atomic_replace",
                    node)
