"""DUR001: persistent artifacts must go through the durability seam.

PR 7 built ``repro.durability`` so that every persistent artifact —
campaign journals, AP checkpoints, telemetry exports — is written
atomically (write-temp → fsync → rename → fsync parent dir) or
appended with fsync.  A raw ``open(path, "w")`` or
``Path.write_text`` in :mod:`repro.engine`, :mod:`repro.cluster` or
:mod:`repro.telemetry` reintroduces exactly the failure modes the seam
closed: a crash mid-write tears the file, an unsynced directory entry
loses it entirely, and the fault-injection harness
(:class:`repro.durability.FaultyFs`) can no longer see the write.

Read-mode opens are fine — torn *reads* are what the scanners verify —
and the rest of the tree (experiments rendering figures, tools) is out
of scope: the rule only fires under an ``engine``, ``cluster`` or
``telemetry`` path segment.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..core import Finding, LintContext
from ..registry import register

SCOPED_DIRS = frozenset({"engine", "cluster", "telemetry"})
"""Path segments whose files persist durable artifacts."""

WRITE_METHODS = frozenset({"write_text", "write_bytes"})

_WRITE_MODE_CHARS = set("wax+")


def _write_mode(call: ast.Call) -> str | None:
    """The write-ish mode string an ``open()`` call passes, if any."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str) \
            and _WRITE_MODE_CHARS & set(mode.value):
        return mode.value
    return None


@register
class RawArtifactWrite:
    """DUR001: raw write-mode I/O on a persistent-artifact module."""

    code = "DUR001"
    name = "raw-artifact-write"
    description = ("write-mode open()/write_text()/write_bytes() in "
                   "engine/cluster/telemetry; route persistent "
                   "artifacts through repro.durability "
                   "(atomic_replace / DurableFile)")

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        """Yield a finding per raw write on a scoped module."""
        if not SCOPED_DIRS & set(Path(ctx.path).parts):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(node)
                if mode is not None:
                    yield ctx.finding(
                        self.code,
                        f"open(..., {mode!r}) writes a persistent "
                        "artifact without atomicity or fsync; use "
                        "repro.durability.atomic_replace or "
                        "DurableFile",
                        node)
            elif isinstance(func, ast.Attribute) \
                    and func.attr in WRITE_METHODS:
                yield ctx.finding(
                    self.code,
                    f".{func.attr}() is not atomic and never fsyncs; "
                    "use repro.durability.atomic_replace",
                    node)
