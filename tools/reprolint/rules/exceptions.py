"""EXC001: overbroad exception handlers swallow injected faults.

The fault-injection layer (PR 1-2) communicates through exceptions —
``SpectrumExhausted``, ``CircuitOpenError``, ``CheckpointError``.  A
``except:`` or ``except Exception:`` between the injector and the
assertion quietly converts "the fault propagated" into "nothing
happened", which is the worst possible failure mode for a chaos gate.
A broad handler that *re-raises* (bare ``raise``) is fine: it observes
without swallowing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, SourceUnit
from ..registry import register

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: ast.AST | None) -> str | None:
    """The overbroad class name an except clause matches, if any."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in BROAD_NAMES:
        return node.attr
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name:
                return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(isinstance(n, ast.Raise) and n.exc is None
               for body_node in handler.body
               for n in ast.walk(body_node))


@register
class OverbroadExcept:
    """EXC001: ``except:`` / ``except Exception:`` without a re-raise."""

    code = "EXC001"
    name = "overbroad-except"
    scope = "file"
    description = ("bare or Exception-wide except clause that would "
                   "swallow injected faults; catch the specific error")

    def check(self, unit: SourceUnit) -> Iterator[Finding]:
        """Yield a finding per swallowing broad handler."""
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(node.type)
            if name and not _reraises(node):
                yield unit.finding(
                    self.code,
                    f"{name} swallows injected faults silently; catch the "
                    "specific exception (or re-raise)",
                    node)
