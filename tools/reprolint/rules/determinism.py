"""DET001: simulation code must not consult wall clocks or ``random``.

Simulated time is explicit everywhere in this repo (``now_s`` wanders
through the transport, breaker and chaos layers as an argument).  A
``time.time()`` or stdlib-``random`` call hidden in a sim/experiment
path makes a trajectory unreproducible in a way no seed can fix.

File-scope: the matching is purely local.  The transitive variant —
wall clocks reachable *from a worker* through any number of calls — is
``PAR003`` in :mod:`reprolint.rules.parallel`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import (WALL_CLOCK_DATETIME_ATTRS, WALL_CLOCK_TIME_ATTRS,
                       attr_chain)
from ..core import Finding, SourceUnit
from ..registry import register


@register
class NonDeterministicSource:
    """DET001: wall-clock or stdlib-``random`` use in simulation code."""

    code = "DET001"
    name = "non-deterministic-source"
    scope = "file"
    description = ("wall-clock (time.time & co.) or stdlib random module "
                   "use; simulations must be replayable from a seed")

    def check(self, unit: SourceUnit) -> Iterator[Finding]:
        """Yield a finding per wall-clock call or ``random`` import."""
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield unit.finding(
                            self.code,
                            "stdlib random module imported; use a seeded "
                            "np.random.Generator instead",
                            node)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module \
                        and node.module.split(".")[0] == "random":
                    yield unit.finding(
                        self.code,
                        "import from stdlib random; use a seeded "
                        "np.random.Generator instead",
                        node)
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if len(chain) < 2:
                    continue
                root, leaf = chain[0], chain[-1]
                if root == "time" and leaf in WALL_CLOCK_TIME_ATTRS:
                    yield unit.finding(
                        self.code,
                        f"wall-clock call time.{leaf}(); pass simulated "
                        "time (now_s) explicitly",
                        node)
                elif leaf in WALL_CLOCK_DATETIME_ATTRS \
                        and chain[-2] in ("datetime", "date"):
                    yield unit.finding(
                        self.code,
                        f"wall-clock call {'.'.join(chain)}(); pass "
                        "simulated time explicitly",
                        node)
