"""DET001: simulation code must not consult wall clocks or ``random``.

Simulated time is explicit everywhere in this repo (``now_s`` wanders
through the transport, breaker and chaos layers as an argument).  A
``time.time()`` or stdlib-``random`` call hidden in a sim/experiment
path makes a trajectory unreproducible in a way no seed can fix.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, LintContext
from ..registry import register

WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
})

WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"] (empty list when not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


@register
class NonDeterministicSource:
    """DET001: wall-clock or stdlib-``random`` use in simulation code."""

    code = "DET001"
    name = "non-deterministic-source"
    description = ("wall-clock (time.time & co.) or stdlib random module "
                   "use; simulations must be replayable from a seed")

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        """Yield a finding per wall-clock call or ``random`` import."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield ctx.finding(
                            self.code,
                            "stdlib random module imported; use a seeded "
                            "np.random.Generator instead",
                            node)
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module \
                        and node.module.split(".")[0] == "random":
                    yield ctx.finding(
                        self.code,
                        "import from stdlib random; use a seeded "
                        "np.random.Generator instead",
                        node)
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) < 2:
                    continue
                root, leaf = chain[0], chain[-1]
                if root == "time" and leaf in WALL_CLOCK_TIME_ATTRS:
                    yield ctx.finding(
                        self.code,
                        f"wall-clock call time.{leaf}(); pass simulated "
                        "time (now_s) explicitly",
                        node)
                elif leaf in WALL_CLOCK_DATETIME_ATTRS \
                        and chain[-2] in ("datetime", "date"):
                    yield ctx.finding(
                        self.code,
                        f"wall-clock call {'.'.join(chain)}(); pass "
                        "simulated time explicitly",
                        node)
