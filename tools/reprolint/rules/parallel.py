"""PAR0xx: the static race/determinism detector for the parallel engine.

The engine's contract (PRs 5-7) is that a campaign sharded over N
worker processes is *byte-identical* to the serial run.  The file-scope
rules (DET001/RNG001/DUR001) police the obvious local violations, but
a trial function that merely *calls into* a module with hidden state
sails through them.  These five rules close that hole: they operate on
the :class:`reprolint.project.ProjectGraph`, compute everything
reachable from a worker entry point (any callable handed to
``run_shards`` / executor ``submit`` / ``pool.map`` / ``Campaign``),
and flag the hazards transitively.

==========  =============================================================
PAR001      module-global mutable state read or written in
            worker-reachable code (each process owns a copy; updates
            diverge from the serial run)
PAR002      lambdas, nested closures and bound methods handed across
            the process boundary (they do not pickle — and even on the
            serial executor they violate the swap-in contract)
PAR003      wall-clock (``time.time`` & co., ``datetime.now``) or
            ``os.environ`` reads reachable from workers
PAR004      unseeded / global-state RNG reachable from workers
            (``RNG001`` made transitive)
PAR005      raw write-mode I/O reachable from workers (``DUR001``
            upgraded from path-scoped to dataflow-aware)
==========  =============================================================

:mod:`repro.rng` is the sanctioned seed authority (it owns the
``REPRO_SEED`` environment read and the one legal unseeded
constructor), so ``rng.py`` is exempt from PAR003-env and PAR004 —
mirroring the RNG001 authority carve-out.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..core import Finding
from ..registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..project import FnKey, ProjectGraph

#: The seed-authority module: exempt from env/RNG reachability rules.
RNG_AUTHORITY_FILES = frozenset({"rng.py"})

#: Handoff-argument flavors that cannot cross a pickle boundary.
_UNPICKLABLE_FLAVORS = {
    "lambda": "a lambda",
    "bound-method": "a bound method (self.…)",
    "nested": "a nested function (closure)",
}


def _chain_text(graph: "ProjectGraph", key: "FnKey") -> str:
    """``entry -> ... -> fn`` display path for diagnostic messages."""
    return " -> ".join(graph.chain_to_entry(key))


def _in_authority(key: "FnKey") -> bool:
    return Path(key[0]).name in RNG_AUTHORITY_FILES


class _ReachabilityRule:
    """Shared shape: walk worker-reachable functions, match impurities."""

    code = "PAR000"
    scope = "project"
    kinds: frozenset[str] = frozenset()

    def message(self, detail: str, kind: str, chain: str) -> str:
        raise NotImplementedError

    def exempt(self, key: "FnKey", kind: str) -> bool:
        """Hook: suppress one impurity kind in a sanctioned module."""
        return False

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        """Yield a finding per matched impurity in worker-reachable code."""
        for key, fn in graph.worker_reachable():
            chain = _chain_text(graph, key)
            display = graph.display[key[0]]
            for impurity in fn.impurities:
                if impurity.kind not in self.kinds \
                        or self.exempt(key, impurity.kind):
                    continue
                yield Finding(
                    code=self.code,
                    message=self.message(impurity.detail, impurity.kind,
                                         chain),
                    path=display, line=impurity.line, col=impurity.col)


@register
class WorkerSharedState(_ReachabilityRule):
    """PAR001: module-global mutable state touched by worker code."""

    code = "PAR001"
    name = "worker-shared-state"
    description = ("module-global mutable state read or written in "
                   "worker-reachable code; each shard process owns a "
                   "private copy, so updates diverge from the serial run")

    _VERBS = {"read": "reads", "write": "rebinds",
              "mutate": "mutates"}

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        """Flag reads of written-somewhere globals, and all writes."""
        for key, fn in graph.worker_reachable():
            chain = _chain_text(graph, key)
            display = graph.display[key[0]]
            for use in fn.global_uses:
                if use.access == "read" \
                        and (key[0], use.name) not in graph.mutable_state:
                    continue  # never-written constants are safe to read
                verb = self._VERBS[use.access]
                yield Finding(
                    code=self.code,
                    message=(f"worker-reachable code {verb} module-global "
                             f"{use.name!r}; shard processes each own a "
                             "copy, so shared-state updates diverge from "
                             f"the serial run [via {chain}]"),
                    path=display, line=use.line, col=use.col)


@register
class UnpicklableHandoff:
    """PAR002: closures/lambdas/bound methods cross the process boundary."""

    code = "PAR002"
    name = "unpicklable-handoff"
    scope = "project"
    description = ("lambda, nested closure or bound method handed to an "
                   "executor/Campaign; it cannot cross the pickle "
                   "boundary a process pool requires")

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        """Flag every handoff whose argument cannot pickle."""
        for key, handoff, target in graph.handoffs():
            flavor = handoff.arg_flavor
            if flavor == "name" and target is not None \
                    and graph.functions[target].kind in ("nested",
                                                         "lambda"):
                flavor = "nested"
            if flavor == "bound-method" and target is None:
                # `self.x` where x is not a method of the class: a data
                # attribute holding some callable — not decidable here.
                continue
            noun = _UNPICKLABLE_FLAVORS.get(flavor or "")
            if noun is None:
                continue
            yield Finding(
                code=self.code,
                message=(f"{noun} is handed to {handoff.callee}(); it "
                         "cannot cross the process boundary (pickle) — "
                         "pass a module-level function (use "
                         "functools.partial for bound arguments)"),
                path=graph.display[key[0]], line=handoff.line,
                col=handoff.col)


@register
class WorkerWallClock(_ReachabilityRule):
    """PAR003: wall-clock or environment reads reachable from workers."""

    code = "PAR003"
    name = "worker-wall-clock"
    kinds = frozenset({"wallclock", "env"})
    description = ("wall-clock (time.time & co., datetime.now) or "
                   "os.environ read reachable from a worker entry "
                   "point; workers must see only simulated time and "
                   "explicit arguments")

    def exempt(self, key: "FnKey", kind: str) -> bool:
        """The seed authority may read ``REPRO_SEED`` from the env."""
        return kind == "env" and _in_authority(key)

    def message(self, detail: str, kind: str, chain: str) -> str:
        if kind == "env":
            return (f"worker-reachable environment read {detail}; spawn "
                    "pools snapshot the parent env, so workers must "
                    f"receive configuration as arguments [via {chain}]")
        return (f"worker-reachable wall-clock read {detail}; pass "
                f"simulated time (now_s) through the trial args "
                f"[via {chain}]")


@register
class WorkerUnseededRng(_ReachabilityRule):
    """PAR004: unseeded or global-state RNG reachable from workers."""

    code = "PAR004"
    name = "worker-unseeded-rng"
    kinds = frozenset({"rng-global", "rng-unseeded", "stdlib-random"})
    description = ("unseeded default_rng(), np.random global-state call "
                   "or stdlib random reachable from a worker entry "
                   "point; every draw in a shard must derive from the "
                   "trial seed (RNG001, made transitive)")

    def exempt(self, key: "FnKey", kind: str) -> bool:
        """``repro.rng`` is the one sanctioned generator factory."""
        return _in_authority(key)

    def message(self, detail: str, kind: str, chain: str) -> str:
        return (f"worker-reachable nondeterministic RNG {detail}; every "
                "draw inside a shard must derive from trial.seed "
                f"[via {chain}]")


@register
class WorkerRawWrite(_ReachabilityRule):
    """PAR005: raw write-mode I/O reachable from workers."""

    code = "PAR005"
    name = "worker-raw-write"
    kinds = frozenset({"raw-write"})
    description = ("raw write-mode open()/write_text()/write_bytes() "
                   "reachable from a worker entry point; concurrent "
                   "shard writes tear files — route artifacts through "
                   "repro.durability (DUR001, made dataflow-aware)")

    def message(self, detail: str, kind: str, chain: str) -> str:
        return (f"worker-reachable raw write {detail}; concurrent shards "
                "tearing the same file breaks replay — use "
                f"repro.durability.atomic_replace [via {chain}]")
