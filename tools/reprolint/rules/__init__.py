"""The reprolint rule pack.

Importing this package registers every rule; add a new module here (and
import it below) to extend the pack.  See ``docs/static-analysis.md``
for the rule-authoring walkthrough.
"""

from . import api, determinism, durability, exceptions, rng, units

__all__ = ["api", "determinism", "durability", "exceptions", "rng",
           "units"]
