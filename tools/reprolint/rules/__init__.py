"""The reprolint rule pack.

Importing this package registers every rule; add a new module here (and
import it below) to extend the pack.  See ``docs/static-analysis.md``
for the rule-authoring walkthrough — file-scope rules implement
``check(unit)``, project-scope rules implement ``check_project(graph)``.
"""

from . import (api, determinism, durability, exceptions, parallel, rng,
               units)

__all__ = ["api", "determinism", "durability", "exceptions", "parallel",
           "rng", "units"]
