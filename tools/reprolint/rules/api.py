"""API001: package façades must export exactly what exists.

The ``repro.*`` packages re-export their submodules' public names from
``__init__.py``.  Drift creeps in three ways: a façade ``__all__``
computed dynamically (``dir()`` tricks also leak submodule names), a
façade exporting a name nothing binds, and a re-import of a name the
submodule no longer defines (or no longer declares public).  This rule
cross-checks ``__init__.py`` files against the submodules they import
from, on disk, at lint time.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..core import Finding, LintContext
from ..registry import register


def _literal_all(node: ast.AST) -> list[str] | None:
    """The string elements of a literal list/tuple, else None."""
    if isinstance(node, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts):
        return [e.value for e in node.elts]
    return None


def _find_all_assignment(tree: ast.Module) -> ast.Assign | ast.AugAssign | None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets):
            return node
        if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name) and node.target.id == "__all__":
            return node
    return None


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (imports, defs, assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            names |= _top_level_bindings(node)  # type: ignore[arg-type]
    return names


def _resolve_relative(path: Path, level: int, module: str | None
                      ) -> Path | None:
    """Directory/file a relative import refers to, if inside the tree."""
    base = path.parent
    for _ in range(level - 1):
        base = base.parent
    if module:
        for part in module.split("."):
            base = base / part
    if (base.with_suffix(".py")).is_file():
        return base.with_suffix(".py")
    if (base / "__init__.py").is_file():
        return base / "__init__.py"
    return None


def _module_exports(module_file: Path) -> tuple[set[str] | None, set[str]]:
    """(static __all__ or None, top-level bindings) of a module file."""
    try:
        tree = ast.parse(module_file.read_text(encoding="utf-8"),
                         filename=str(module_file))
    except (OSError, SyntaxError):
        return None, set()
    declared: set[str] | None = None
    assignment = _find_all_assignment(tree)
    if assignment is not None and isinstance(assignment, ast.Assign):
        literal = _literal_all(assignment.value)
        if literal is not None:
            declared = set(literal)
    bindings = _top_level_bindings(tree)
    # Sibling submodules are importable attributes of a package too.
    if module_file.name == "__init__.py":
        for sibling in module_file.parent.iterdir():
            if sibling.suffix == ".py" and sibling.name != "__init__.py":
                bindings.add(sibling.stem)
            elif (sibling / "__init__.py").is_file():
                bindings.add(sibling.name)
    return declared, bindings


@register
class FacadeExportDrift:
    """API001: ``__init__`` façade exports drifted from the submodules."""

    code = "API001"
    name = "facade-export-drift"
    description = ("package __init__ exports a name that does not exist, "
                   "is not public in its submodule, or uses a dynamic "
                   "__all__ that cannot be audited")

    def check(self, tree: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        """Cross-check an ``__init__.py`` against its submodules."""
        if ctx.filename != "__init__.py":
            return
        assert isinstance(tree, ast.Module)
        assignment = _find_all_assignment(tree)
        exported: list[str] = []
        if assignment is not None:
            literal = (_literal_all(assignment.value)
                       if isinstance(assignment, ast.Assign) else None)
            if literal is None:
                yield ctx.finding(
                    self.code,
                    "__all__ is not a literal list of strings; dynamic "
                    "exports cannot be audited (and dir()-based lists "
                    "leak submodule names)",
                    assignment)
            else:
                exported = literal
        bindings = _top_level_bindings(tree)
        for name in exported:
            if name not in bindings and name != "__version__":
                node = assignment if assignment is not None else tree
                yield ctx.finding(
                    self.code,
                    f"__all__ exports {name!r} but nothing in this "
                    "module binds it",
                    node)
        for node in tree.body:
            if not isinstance(node, ast.ImportFrom) or node.level == 0:
                continue
            target = _resolve_relative(ctx.path, node.level, node.module)
            if target is None:
                continue
            if node.module is None:
                # `from . import sub`: each alias must be a submodule.
                for alias in node.names:
                    if _resolve_relative(ctx.path, node.level,
                                         alias.name) is None:
                        yield ctx.finding(
                            self.code,
                            f"re-export of submodule {alias.name!r} that "
                            "does not exist",
                            node)
                continue
            declared, sub_bindings = _module_exports(target)
            for alias in node.names:
                if alias.name == "*":
                    continue
                if declared is not None and alias.name not in declared \
                        and alias.name not in sub_bindings:
                    yield ctx.finding(
                        self.code,
                        f"{alias.name!r} imported from .{node.module} "
                        "exists nowhere in that module",
                        node)
                elif declared is not None and alias.name not in declared:
                    yield ctx.finding(
                        self.code,
                        f"{alias.name!r} imported from .{node.module} is "
                        "not in that module's __all__ (private API leak)",
                        node)
                elif declared is None and alias.name not in sub_bindings:
                    yield ctx.finding(
                        self.code,
                        f"{alias.name!r} imported from .{node.module} "
                        "does not exist there",
                        node)
