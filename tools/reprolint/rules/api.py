"""API001: package façades must export exactly what exists.

The ``repro.*`` packages re-export their submodules' public names from
``__init__.py``.  Drift creeps in three ways: a façade ``__all__``
computed dynamically (``dir()`` tricks also leak submodule names), a
façade exporting a name nothing binds, and a re-import of a name the
submodule no longer defines (or no longer declares public).

v2 port: this is now a *project-scope* rule.  It reads the façade and
its submodules from the :class:`reprolint.project.ProjectGraph`
summaries the engine already extracted (no re-parsing), falling back
to a one-off disk parse only for submodules outside the lint roots —
which keeps single-file invocations (``reprolint pkg/__init__.py``)
behaving exactly as v1 did.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..core import Finding
from ..registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..project import ProjectGraph


def _literal_all(node: ast.AST) -> list[str] | None:
    """The string elements of a literal list/tuple, else None."""
    if isinstance(node, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts):
        return [e.value for e in node.elts]
    return None


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (imports, defs, assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            names |= _top_level_bindings(node)  # type: ignore[arg-type]
    return names


def _resolve_relative(path: Path, level: int, module: str | None
                      ) -> Path | None:
    """Directory/file a relative import refers to, if inside the tree."""
    base = path.parent
    for _ in range(level - 1):
        base = base.parent
    if module:
        for part in module.split("."):
            base = base / part
    if (base.with_suffix(".py")).is_file():
        return base.with_suffix(".py")
    if (base / "__init__.py").is_file():
        return base / "__init__.py"
    return None


def _disk_exports(module_file: Path) -> tuple[set[str] | None, set[str]]:
    """(static __all__ or None, top-level bindings), parsed from disk."""
    try:
        tree = ast.parse(module_file.read_text(encoding="utf-8"),
                         filename=str(module_file))
    except (OSError, SyntaxError):
        return None, set()
    declared: set[str] | None = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets):
            literal = _literal_all(node.value)
            if literal is not None:
                declared = set(literal)
    return declared, _top_level_bindings(tree)


def _sibling_submodules(init_file: Path) -> set[str]:
    """Importable submodule attributes of a package directory."""
    names: set[str] = set()
    for sibling in init_file.parent.iterdir():
        if sibling.suffix == ".py" and sibling.name != "__init__.py":
            names.add(sibling.stem)
        elif (sibling / "__init__.py").is_file():
            names.add(sibling.name)
    return names


@register
class FacadeExportDrift:
    """API001: ``__init__`` façade exports drifted from the submodules."""

    code = "API001"
    name = "facade-export-drift"
    scope = "project"
    description = ("package __init__ exports a name that does not exist, "
                   "is not public in its submodule, or uses a dynamic "
                   "__all__ that cannot be audited")

    def _target_exports(self, graph: "ProjectGraph", target: Path
                        ) -> tuple[set[str] | None, set[str]]:
        """Exports of a submodule: summary when analyzed, disk otherwise."""
        item = graph.files.get(str(target.resolve()))
        if item is not None and item.summary is not None:
            summary = item.summary
            declared = (set(summary.all_literal)
                        if summary.all_literal is not None else None)
            bindings = set(summary.top_bindings)
        else:
            declared, bindings = _disk_exports(target)
        if target.name == "__init__.py":
            bindings |= _sibling_submodules(target)
        return declared, bindings

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        """Cross-check every analyzed ``__init__.py`` façade."""
        for abs_path in sorted(graph.files):
            item = graph.files[abs_path]
            summary = item.summary
            if summary is None or Path(abs_path).name != "__init__.py":
                continue
            display = graph.display[abs_path]
            path = Path(abs_path)

            def finding(message: str, line: int, col: int = 0) -> Finding:
                return Finding(code=self.code, message=message,
                               path=display, line=max(line, 1), col=col)

            if summary.all_dynamic:
                yield finding(
                    "__all__ is not a literal list of strings; dynamic "
                    "exports cannot be audited (and dir()-based lists "
                    "leak submodule names)",
                    summary.all_line, summary.all_col)
            elif summary.all_literal is not None:
                for name in summary.all_literal:
                    if name not in summary.top_bindings \
                            and name != "__version__":
                        yield finding(
                            f"__all__ exports {name!r} but nothing in "
                            "this module binds it",
                            summary.all_line, summary.all_col)
            for imp in summary.relative_imports:
                target = _resolve_relative(path, imp.level, imp.module)
                if target is None:
                    continue
                if imp.module is None:
                    # `from . import sub`: each alias must be a submodule.
                    for name, _ in imp.names:
                        if _resolve_relative(path, imp.level,
                                             name) is None:
                            yield finding(
                                f"re-export of submodule {name!r} that "
                                "does not exist",
                                imp.line, imp.col)
                    continue
                declared, sub_bindings = self._target_exports(graph,
                                                              target)
                for name, _ in imp.names:
                    if name == "*":
                        continue
                    if declared is not None and name not in declared \
                            and name not in sub_bindings:
                        yield finding(
                            f"{name!r} imported from .{imp.module} "
                            "exists nowhere in that module",
                            imp.line, imp.col)
                    elif declared is not None and name not in declared:
                        yield finding(
                            f"{name!r} imported from .{imp.module} is "
                            "not in that module's __all__ (private API "
                            "leak)",
                            imp.line, imp.col)
                    elif declared is None and name not in sub_bindings:
                        yield finding(
                            f"{name!r} imported from .{imp.module} "
                            "does not exist there",
                            imp.line, imp.col)
