"""Rule registry: every lint rule self-registers under its code.

A rule is a class with three class attributes — ``code`` (the stable
identifier findings and suppressions use), ``name`` (a short slug) and
``description`` (one sentence for ``--list-rules``) — plus a
``check(tree, ctx)`` method yielding :class:`reprolint.core.Finding`
objects.  Decorate the class with :func:`register` and it becomes part
of the default rule pack; no other wiring is needed.
"""

from __future__ import annotations

CODE_RE = r"^[A-Z]{2,10}\d{3}$"

_RULES: dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator: add a rule to the global registry by its code."""
    import re

    code = getattr(rule_cls, "code", None)
    if not code or not re.match(CODE_RE, code):
        raise ValueError(
            f"rule {rule_cls.__name__} needs a code matching {CODE_RE}")
    if code in _RULES:
        raise ValueError(f"duplicate rule code {code}")
    _RULES[code] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type]:
    """All registered rules, keyed by code (import side effect included)."""
    _ensure_loaded()
    # Safe shared read: the registry is populated by @register at import
    # time and is immutable afterwards, so every analysis worker sees
    # the same snapshot.
    return dict(_RULES)  # reprolint: disable=PAR001


def get_rule(code: str) -> type:
    """Look one rule up by code; raises ``KeyError`` for unknown codes."""
    _ensure_loaded()
    return _RULES[code]


def _ensure_loaded() -> None:
    """Import the rule pack so every @register decorator has run."""
    from . import rules  # noqa: F401  (import triggers registration)
