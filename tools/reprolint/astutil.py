"""Shared AST matchers: the vocabulary rules and the extractor agree on.

The project analyzer (:mod:`reprolint.project`) extracts per-function
facts — wall-clock calls, RNG constructions, raw writes — that the
PAR0xx rules consume transitively, while the classic file-scope rules
(``DET001``, ``RNG001``, ``DUR001``) match the same patterns locally.
Keeping the matchers here, in one module, guarantees the local and the
interprocedural view of "what is an impurity" can never drift apart.
"""

from __future__ import annotations

import ast

__all__ = [
    "GLOBAL_STATE_CALLS",
    "MUTABLE_CONSTRUCTORS",
    "MUTATING_METHODS",
    "WALL_CLOCK_DATETIME_ATTRS",
    "WALL_CLOCK_TIME_ATTRS",
    "WRITE_METHODS",
    "attr_chain",
    "is_env_read",
    "is_mutable_literal",
    "is_np_random",
    "is_unseeded_rng_call",
    "write_mode",
]

WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
})

WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Legacy numpy global-state API: any call is a determinism leak.
GLOBAL_STATE_CALLS = frozenset({
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "ranf", "sample", "choice", "shuffle",
    "permutation", "normal", "uniform", "standard_normal", "poisson",
    "exponential", "binomial", "beta", "gamma", "bytes",
})

#: Method calls that mutate a container in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
})

#: Constructor names whose result is a mutable container.
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
})

WRITE_METHODS = frozenset({"write_text", "write_bytes"})

_WRITE_MODE_CHARS = set("wax+")


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"] (empty list when not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def is_np_random(node: ast.AST) -> bool:
    """Matches the ``np.random`` / ``numpy.random`` attribute chain."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


def is_unseeded_rng_call(node: ast.Call) -> bool:
    """Whether a default_rng(...) call provides no usable seed."""
    if node.keywords:
        return any(kw.arg == "seed" and isinstance(kw.value, ast.Constant)
                   and kw.value.value is None for kw in node.keywords)
    if not node.args:
        return True
    first = node.args[0]
    return isinstance(first, ast.Constant) and first.value is None


def write_mode(call: ast.Call) -> str | None:
    """The write-ish mode string an ``open()`` call passes, if any."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str) \
            and _WRITE_MODE_CHARS & set(mode.value):
        return mode.value
    return None


def is_env_read(node: ast.AST) -> bool:
    """``os.environ[...]`` / ``os.environ.get(...)`` / ``os.getenv(...)``.

    Any of the three is a read of parent-process state a worker cannot
    rely on (the parent may mutate its environment after the fork, and
    spawn-based pools inherit a snapshot).
    """
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return chain in (["os", "getenv"], ["os", "environ", "get"])
    if isinstance(node, ast.Subscript):
        return attr_chain(node.value) == ["os", "environ"]
    return False


def is_mutable_literal(node: ast.AST) -> bool:
    """Whether an expression definitely builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in MUTABLE_CONSTRUCTORS
    return False
