"""reprolint command line: discovery, selection, output, exit codes.

Exit codes follow the same contract as ``python -m repro fsck``:

* ``0`` — no findings (the tree is clean);
* ``1`` — at least one finding;
* ``2`` — fatal error (unknown rule code, missing path, bad baseline).

v2 additions: SARIF output (``--format sarif``), baselines
(``--baseline`` / ``--write-baseline``), the parallel summary cache
(``--cache-dir`` / ``--no-cache`` / ``--jobs``), diff-scoped reporting
(``--changed-only``) and ``--statistics``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from .core import run_lint
from .registry import all_rules

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".reprolint-cache"
DEFAULT_BASELINE = ".reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The reprolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("Project-graph domain linter for the mmX "
                     "reproduction: unit discipline, RNG/determinism "
                     "discipline, façade exports, exception hygiene, "
                     "durability, and the PAR0xx parallel-safety race "
                     "detector."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human", help="output format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="analysis worker processes "
                             "(default: CPU count, capped at 8)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="per-file summary cache location "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the summary cache entirely")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="subtract findings fingerprinted in FILE "
                             f"(see --write-baseline; default file: "
                             f"{DEFAULT_BASELINE})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--changed-only", action="store_true",
                        help="report findings only for files changed "
                             "vs git HEAD (analysis still covers the "
                             "whole project)")
    parser.add_argument("--statistics", action="store_true",
                        help="print cache/graph statistics to stderr")
    return parser


def _split_codes(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [c.strip() for c in text.split(",") if c.strip()]


def _print_rules() -> None:
    for code, rule in sorted(all_rules().items()):
        scope = getattr(rule, "scope", "file")
        print(f"{code}  {rule.name}  [{scope}]")
        print(f"    {rule.description}")


def _changed_files() -> set[str] | None:
    """Files changed vs HEAD plus untracked files, or None on failure."""
    changed: set[str] = set()
    try:
        for args in (["git", "diff", "--name-only", "HEAD"],
                     ["git", "ls-files", "--others",
                      "--exclude-standard"]):
            proc = subprocess.run(args, capture_output=True, text=True,
                                  check=True)
            changed.update(line.strip()
                           for line in proc.stdout.splitlines()
                           if line.strip())
    except (OSError, subprocess.CalledProcessError):
        return None
    return {path for path in changed if path.endswith(".py")}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    report_paths: set[str] | None = None
    if args.changed_only:
        report_paths = _changed_files()
        if report_paths is None:
            print("reprolint: error: --changed-only needs a git "
                  "checkout", file=sys.stderr)
            return 2

    cache_dir = None if args.no_cache else Path(args.cache_dir)
    try:
        run = run_lint(args.paths,
                       select=_split_codes(args.select),
                       ignore=_split_codes(args.ignore),
                       jobs=args.jobs,
                       cache_dir=cache_dir,
                       report_paths=report_paths)
    except (KeyError, FileNotFoundError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    findings = run.findings

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        from .baseline import write_baseline
        count = write_baseline(baseline_path, findings)
        print(f"reprolint: baseline {baseline_path} accepts {count} "
              f"finding{'s' if count != 1 else ''}")
        return 0
    if args.baseline is not None:
        from .baseline import apply_baseline, load_baseline
        try:
            accepted = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, accepted)

    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "sarif":
        from . import __version__
        from .sarif import to_sarif
        print(json.dumps(to_sarif(findings, __version__), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            count = len(findings)
            print(f"reprolint: {count} finding{'s' if count != 1 else ''}")
    if args.statistics:
        stats = dict(run.stats, findings=len(findings))
        print("reprolint: " + ", ".join(f"{k}={v}"
                                        for k, v in sorted(stats.items())),
              file=sys.stderr)
    return 1 if findings else 0
