"""reprolint command line: discovery, selection, output, exit codes.

Exit codes follow the convention CI gates expect:

* ``0`` — no findings (the tree is clean);
* ``1`` — at least one finding;
* ``2`` — usage error (unknown rule code, missing path, ...).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .core import lint_paths
from .registry import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The reprolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("AST-based domain linter for the mmX reproduction: "
                     "unit discipline, RNG/determinism discipline, façade "
                     "exports, exception hygiene."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_codes(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [c.strip() for c in text.split(",") if c.strip()]


def _print_rules() -> None:
    for code, rule in sorted(all_rules().items()):
        print(f"{code}  {rule.name}")
        print(f"    {rule.description}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    try:
        findings = lint_paths(args.paths,
                              select=_split_codes(args.select),
                              ignore=_split_codes(args.ignore))
    except (KeyError, FileNotFoundError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            count = len(findings)
            print(f"reprolint: {count} finding{'s' if count != 1 else ''}")
    return 1 if findings else 0
