"""Whole-project analysis: summaries, the content-hash cache, the graph.

reprolint v1 saw one file at a time, so a worker trial function that
*calls into* a module using global RNG or wall-clock time sailed
through.  v2 fixes that with a three-stage pipeline:

1. **Extraction** — each file is parsed once and distilled into a
   :class:`ModuleSummary`: imports and aliases, every function with its
   call sites, worker handoffs, module-global reads/writes, and
   impurity sites (wall clock, env, RNG, raw writes).  Summaries are
   plain JSON-serialisable facts, which makes them cacheable and cheap
   to ship across process boundaries.
2. **Caching / parallelism** — summaries (and the file-scope rule
   findings) are cached under a content hash; unchanged files are never
   re-parsed.  Cold runs fan extraction out over a process pool.
3. **Graph assembly** — :class:`ProjectGraph` indexes the summaries
   into a symbol/import/call graph, resolves call edges through import
   aliases, collects worker *entry points* (anything handed to
   ``run_shard`` / ``run_shards`` / executor ``submit`` /
   ``Campaign`` / ``run_campaign``, unwrapping ``functools.partial``),
   and computes the worker-reachable closure the PAR0xx rules walk.

Known static limits (documented in ``docs/static-analysis.md``): calls
through instance attributes other than ``self`` are not resolved, and
module top-level statements are summarised but never considered
worker-reachable.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from .astutil import (
    GLOBAL_STATE_CALLS,
    MUTATING_METHODS,
    WALL_CLOCK_DATETIME_ATTRS,
    WALL_CLOCK_TIME_ATTRS,
    attr_chain,
    is_env_read,
    is_mutable_literal,
    is_np_random,
    is_unseeded_rng_call,
    write_mode,
)

__all__ = [
    "CACHE_DIR_NAME",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectAnalyzer",
    "ProjectGraph",
    "default_jobs",
    "extract_summary",
]

#: Bump to invalidate every cached summary (format change).
SUMMARY_VERSION = 2

CACHE_DIR_NAME = ".reprolint-cache"

#: Call-site names that hand a function across the worker boundary.
#: ``submit`` covers ``ProcessPoolExecutor``/backend submission;
#: ``run_shards`` the executor protocol; ``Campaign``/``run_campaign``
#: the engine driver.  The *first positional* argument (or the
#: ``trial_fn`` keyword) is the handed-off callable.
HANDOFF_CALLEES = frozenset({
    "run_shards", "submit", "Campaign", "run_campaign",
})

def default_jobs() -> int:
    """Worker count for parallel extraction: bounded CPU affinity."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        cpus = os.cpu_count() or 1
    return max(1, min(8, cpus))


# ---------------------------------------------------------------------------
# Summary data model (plain data, JSON round-trippable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Impurity:
    """One nondeterminism/IO site inside a function body."""

    kind: str       # wallclock | env | rng-global | rng-unseeded |
                    # stdlib-random | raw-write
    detail: str
    line: int
    col: int


@dataclass(frozen=True)
class SymbolUse:
    """A read/write/mutate of a module-level name from function scope."""

    name: str
    access: str     # read | write | mutate
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """One call expression, recorded as its raw attribute chain."""

    chain: tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class Handoff:
    """A worker-boundary call site and the callable it hands over."""

    callee: str                 # the matched name (run_shards, submit, ...)
    arg_flavor: str | None      # name | attr | lambda | nested |
                                # bound-method | opaque | None (no arg)
    arg_ref: str | None         # name / dotted chain / lambda qualname
    line: int
    col: int


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the graph needs to know about one function."""

    qualname: str
    name: str
    kind: str                   # function | method | nested | lambda | module
    owner_class: str | None
    line: int
    col: int
    calls: tuple[CallSite, ...] = ()
    handoffs: tuple[Handoff, ...] = ()
    global_uses: tuple[SymbolUse, ...] = ()
    impurities: tuple[Impurity, ...] = ()


@dataclass(frozen=True)
class RelativeImport:
    """One ``from .x import a, b`` statement (API001 feeds on these)."""

    level: int
    module: str | None
    names: tuple[tuple[str, str | None], ...]   # (name, asname)
    line: int
    col: int


@dataclass
class ModuleSummary:
    """The distilled, cacheable view of one source file."""

    top_bindings: frozenset[str] = frozenset()
    top_functions: frozenset[str] = frozenset()
    top_classes: frozenset[str] = frozenset()
    mutable_globals: frozenset[str] = frozenset()
    import_aliases: dict[str, str] = field(default_factory=dict)
    from_absolute: dict[str, tuple[str, str]] = field(default_factory=dict)
    from_relative: dict[str, tuple[int, str | None, str]] = \
        field(default_factory=dict)
    relative_imports: tuple[RelativeImport, ...] = ()
    all_literal: tuple[str, ...] | None = None
    all_dynamic: bool = False
    all_line: int = 0
    all_col: int = 0
    class_methods: dict[str, tuple[str, ...]] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (cache payload)."""
        payload = asdict(self)
        for key in ("top_bindings", "top_functions", "top_classes",
                    "mutable_globals"):
            payload[key] = sorted(payload[key])
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleSummary":
        """Rebuild a summary from its cached JSON form."""
        def _tt(items: Iterable[Iterable[Any]]) -> tuple[tuple[Any, ...], ...]:
            return tuple(tuple(item) for item in items)

        functions = {}
        for qualname, fn in payload["functions"].items():
            functions[qualname] = FunctionSummary(
                qualname=fn["qualname"], name=fn["name"], kind=fn["kind"],
                owner_class=fn["owner_class"], line=fn["line"],
                col=fn["col"],
                calls=tuple(CallSite(tuple(c["chain"]), c["line"], c["col"])
                            for c in fn["calls"]),
                handoffs=tuple(Handoff(h["callee"], h["arg_flavor"],
                                       h["arg_ref"], h["line"], h["col"])
                               for h in fn["handoffs"]),
                global_uses=tuple(SymbolUse(u["name"], u["access"],
                                            u["line"], u["col"])
                                  for u in fn["global_uses"]),
                impurities=tuple(Impurity(i["kind"], i["detail"],
                                          i["line"], i["col"])
                                 for i in fn["impurities"]))
        return cls(
            top_bindings=frozenset(payload["top_bindings"]),
            top_functions=frozenset(payload["top_functions"]),
            top_classes=frozenset(payload["top_classes"]),
            mutable_globals=frozenset(payload["mutable_globals"]),
            import_aliases=dict(payload["import_aliases"]),
            from_absolute={k: (v[0], v[1])
                           for k, v in payload["from_absolute"].items()},
            from_relative={k: (v[0], v[1], v[2])
                           for k, v in payload["from_relative"].items()},
            relative_imports=tuple(
                RelativeImport(r["level"], r["module"], _tt(r["names"]),
                               r["line"], r["col"])
                for r in payload["relative_imports"]),
            all_literal=(None if payload["all_literal"] is None
                         else tuple(payload["all_literal"])),
            all_dynamic=payload["all_dynamic"],
            all_line=payload["all_line"], all_col=payload["all_col"],
            class_methods={k: tuple(v)
                           for k, v in payload["class_methods"].items()},
            functions=functions)


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


import builtins as _builtins

_BUILTIN_NAMES = frozenset(dir(_builtins))


def _local_bindings(body: Iterable[ast.stmt]) -> set[str]:
    """Names bound by a sequence of statements (one function's locals).

    Descends into control flow but *not* into nested function or class
    bodies (their assignments bind in their own scope); nested def /
    class names themselves do bind locally.
    """
    names: set[str] = set()

    def bind_target(target: ast.AST) -> None:
        # Only genuine binding forms: `x[i] = v` / `x.a = v` mutate an
        # existing object, they do not bind `x` in this scope.
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)

    def visit(stmts: Iterable[ast.stmt]) -> None:
        for node in stmts:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
                continue
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    bind_target(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                bind_target(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bind_target(node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        bind_target(item.optional_vars)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            # Recurse into compound statements (but not nested scopes).
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(node, attr, None)
                if inner:
                    visit(inner)
            for handler in getattr(node, "handlers", ()) or ():
                if handler.name:
                    names.add(handler.name)
                visit(handler.body)
    visit(body)
    return names


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef
                     | ast.Lambda) -> set[str]:
    args = node.args
    params = {a.arg for a in args.args + args.posonlyargs + args.kwonlyargs}
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)
    return params


def _unwrap_partial(node: ast.expr) -> ast.expr:
    """Peel ``functools.partial(f, ...)`` wrappers down to ``f``."""
    while isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain and chain[-1] == "partial" and node.args:
            node = node.args[0]
        else:
            break
    return node


class _FunctionExtractor(ast.NodeVisitor):
    """Collects one function's calls, handoffs, global uses, impurities.

    Nested functions and lambdas are handed back to the module extractor
    (they become their own :class:`FunctionSummary`); this visitor does
    not descend into them.
    """

    def __init__(self, extractor: "_ModuleExtractor", qualname: str,
                 name: str, kind: str, owner_class: str | None,
                 node: ast.AST, enclosing_locals: set[str]) -> None:
        self.extractor = extractor
        self.qualname = qualname
        self.name = name
        self.kind = kind
        self.owner_class = owner_class
        self.node = node
        self.enclosing_locals = enclosing_locals
        self.calls: list[CallSite] = []
        self.handoffs: list[Handoff] = []
        self.global_uses: list[SymbolUse] = []
        self.impurities: list[Impurity] = []
        self.global_names: set[str] = set()
        self._mutated: set[tuple[str, int]] = set()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            self.locals = (_function_params(node)
                           | (_local_bindings(node.body)
                              if not isinstance(node, ast.Lambda)
                              else set()))
        else:  # "<module>": top-level statements, everything is global
            self.locals = set()

    # -- scope plumbing ---------------------------------------------------

    def _is_module_name(self, name: str) -> bool:
        return (name in self.extractor.top_bindings
                and name not in self.locals
                and name not in self.enclosing_locals
                and name not in _BUILTIN_NAMES)

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)
        self.locals -= set(node.names)

    def visit_Import(self, node: ast.Import) -> None:
        self.extractor.record_import(node, top_level=False)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.extractor.record_import(node, top_level=False)

    def _enter_nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                      | ast.Lambda, qualname: str, name: str,
                      kind: str) -> None:
        self.extractor.extract_function(
            node, qualname, name, kind, self.owner_class,
            self.enclosing_locals | self.locals)
        # A nested callable's impurities matter whenever its parent
        # runs (it is defined to be called); model that as a call edge.
        self.calls.append(CallSite(chain=("", qualname),
                                   line=node.lineno, col=node.col_offset))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_nested(node, f"{self.qualname}.{node.name}",
                           node.name, "nested")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_nested(node, f"{self.qualname}.{node.name}",
                           node.name, "nested")

    def visit_Lambda(self, node: ast.Lambda) -> None:
        qualname = f"{self.qualname}.<lambda:{node.lineno}:{node.col_offset}>"
        self._enter_nested(node, qualname, "<lambda>", "lambda")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # A class defined inside a function: treat its methods as nested
        # functions of this scope (rare; keeps the walker total).
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._enter_nested(
                    stmt, f"{self.qualname}.{node.name}.{stmt.name}",
                    stmt.name, "nested")

    # -- facts ------------------------------------------------------------

    def _record_impurity(self, kind: str, detail: str,
                         node: ast.AST) -> None:
        self.impurities.append(Impurity(
            kind=kind, detail=detail, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0)))

    def _classify_handoff_arg(self, arg: ast.expr
                              ) -> tuple[str, str | None]:
        arg = _unwrap_partial(arg)
        if isinstance(arg, ast.Lambda):
            qualname = (f"{self.qualname}."
                        f"<lambda:{arg.lineno}:{arg.col_offset}>")
            return "lambda", qualname
        if isinstance(arg, ast.Name):
            return "name", arg.id
        if isinstance(arg, ast.Attribute):
            chain = attr_chain(arg)
            if len(chain) == 2 and chain[0] == "self":
                return "bound-method", chain[1]
            if chain:
                return "attr", ".".join(chain)
        return "opaque", None

    def visit_Call(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        if chain:
            self.calls.append(CallSite(chain=tuple(chain),
                                       line=node.lineno,
                                       col=node.col_offset))
            root, leaf = chain[0], chain[-1]
            # Worker handoffs.  ``map`` counts only as a *method*
            # (pool.map / executor.map): builtin map() stays local.
            if leaf in HANDOFF_CALLEES \
                    or (leaf == "map" and len(chain) >= 2):
                arg: ast.expr | None = None
                if node.args:
                    arg = node.args[0]
                for kw in node.keywords:
                    if kw.arg == "trial_fn":
                        arg = kw.value
                if arg is not None:
                    flavor, ref = self._classify_handoff_arg(arg)
                    self.handoffs.append(Handoff(
                        callee=leaf, arg_flavor=flavor, arg_ref=ref,
                        line=node.lineno, col=node.col_offset))
            # Impurities.
            if root == "time" and leaf in WALL_CLOCK_TIME_ATTRS:
                self._record_impurity("wallclock", f"time.{leaf}()", node)
            elif (leaf in WALL_CLOCK_DATETIME_ATTRS and len(chain) >= 2
                    and chain[-2] in ("datetime", "date")):
                self._record_impurity("wallclock",
                                      f"{'.'.join(chain)}()", node)
            elif root == "random" and len(chain) == 2:
                self._record_impurity("stdlib-random",
                                      f"random.{leaf}()", node)
            if is_env_read(node):
                self._record_impurity("env", f"{'.'.join(chain)}()", node)
            if isinstance(node.func, ast.Attribute):
                func = node.func
                if is_np_random(func.value):
                    if func.attr in GLOBAL_STATE_CALLS:
                        self._record_impurity(
                            "rng-global", f"np.random.{func.attr}()",
                            node)
                    elif func.attr == "default_rng" \
                            and is_unseeded_rng_call(node):
                        self._record_impurity(
                            "rng-unseeded",
                            "unseeded np.random.default_rng()", node)
                if func.attr in self.extractor.write_methods:
                    self._record_impurity(
                        "raw-write", f".{func.attr}()", node)
                # In-place mutation of a module-level container.
                if (func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and self._is_module_name(func.value.id)):
                    self.global_uses.append(SymbolUse(
                        name=func.value.id, access="mutate",
                        line=node.lineno, col=node.col_offset))
                    self._mutated.add((func.value.id, node.lineno))
            elif isinstance(node.func, ast.Name):
                if node.func.id == "open":
                    mode = write_mode(node)
                    if mode is not None:
                        self._record_impurity(
                            "raw-write", f"open(..., {mode!r})", node)
                elif node.func.id == "default_rng" \
                        and is_unseeded_rng_call(node):
                    self._record_impurity(
                        "rng-unseeded", "unseeded default_rng()", node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if is_env_read(node):
            self._record_impurity("env", "os.environ[...]", node)
        if (isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and self._is_module_name(node.value.id)):
            self.global_uses.append(SymbolUse(
                name=node.value.id, access="mutate",
                line=node.lineno, col=node.col_offset))
            self._mutated.add((node.value.id, node.lineno))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        name = node.id
        if name in self.global_names:
            if isinstance(node.ctx, ast.Store):
                self.global_uses.append(SymbolUse(
                    name=name, access="write", line=node.lineno,
                    col=node.col_offset))
            elif isinstance(node.ctx, ast.Load):
                self.global_uses.append(SymbolUse(
                    name=name, access="read", line=node.lineno,
                    col=node.col_offset))
        elif (isinstance(node.ctx, ast.Load)
                and self._is_module_name(name)
                and (name, node.lineno) not in self._mutated):
            self.global_uses.append(SymbolUse(
                name=name, access="read", line=node.lineno,
                col=node.col_offset))
        self.generic_visit(node)

    def run(self) -> FunctionSummary:
        """Walk the body and assemble the summary."""
        if isinstance(self.node, ast.Lambda):
            self.visit(self.node.body)
        elif isinstance(self.node, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
            for stmt in self.node.body:
                self.visit(stmt)
        else:  # module body: skip nested scopes, summarise the rest
            assert isinstance(self.node, ast.Module)
            for stmt in self.node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                self.visit(stmt)
        return FunctionSummary(
            qualname=self.qualname, name=self.name, kind=self.kind,
            owner_class=self.owner_class,
            line=getattr(self.node, "lineno", 1),
            col=getattr(self.node, "col_offset", 0),
            calls=tuple(self.calls), handoffs=tuple(self.handoffs),
            global_uses=tuple(self.global_uses),
            impurities=tuple(self.impurities))


class _ModuleExtractor:
    """Drives extraction for one parsed module."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.top_bindings: set[str] = set()
        self.write_methods = frozenset({"write_text", "write_bytes"})
        self.functions: dict[str, FunctionSummary] = {}
        # Shared alias maps: top-level imports bind here, and
        # *function-local* imports (the cycle-breaking idiom) are merged
        # in too so call resolution can follow them.  Top level wins on
        # collision.
        self.import_aliases: dict[str, str] = {}
        self.from_absolute: dict[str, tuple[str, str]] = {}
        self.from_relative: dict[str, tuple[int, str | None, str]] = {}

    def record_import(self, node: ast.Import | ast.ImportFrom,
                      top_level: bool) -> None:
        """Merge one import statement into the shared alias maps."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self._bind_alias(alias.asname, alias.name, top_level)
                else:
                    # `import a.b.c` binds `a`.
                    root = alias.name.split(".")[0]
                    self._bind_alias(root, root, top_level)
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            if node.level > 0:
                if top_level or local not in self.from_relative:
                    self.from_relative[local] = (node.level, node.module,
                                                 alias.name)
            elif node.module:
                if top_level or local not in self.from_absolute:
                    self.from_absolute[local] = (node.module, alias.name)

    def _bind_alias(self, local: str, dotted: str,
                    top_level: bool) -> None:
        if top_level or local not in self.import_aliases:
            self.import_aliases[local] = dotted

    def extract_function(self, node: ast.FunctionDef
                         | ast.AsyncFunctionDef | ast.Lambda
                         | ast.Module, qualname: str, name: str,
                         kind: str, owner_class: str | None,
                         enclosing_locals: set[str]) -> None:
        """Summarise one callable (and, recursively, its nested defs)."""
        extractor = _FunctionExtractor(self, qualname, name, kind,
                                       owner_class, node,
                                       enclosing_locals)
        self.functions[qualname] = extractor.run()

    def run(self) -> ModuleSummary:
        """Extract the whole module summary."""
        relative_imports: list[RelativeImport] = []
        top_functions: set[str] = set()
        top_classes: set[str] = set()
        mutable_globals: set[str] = set()
        class_methods: dict[str, tuple[str, ...]] = {}
        all_literal: tuple[str, ...] | None = None
        all_dynamic = False
        all_line = all_col = 0

        def bind_top(tree_body: Iterable[ast.stmt]) -> None:
            nonlocal all_literal, all_dynamic, all_line, all_col
            for node in tree_body:
                if isinstance(node, ast.Import):
                    self.record_import(node, top_level=True)
                    for alias in node.names:
                        self.top_bindings.add(
                            alias.asname or alias.name.split(".")[0])
                elif isinstance(node, ast.ImportFrom):
                    self.record_import(node, top_level=True)
                    if node.level > 0:
                        relative_imports.append(RelativeImport(
                            level=node.level, module=node.module,
                            names=tuple((alias.name, alias.asname)
                                        for alias in node.names),
                            line=node.lineno, col=node.col_offset))
                    for alias in node.names:
                        if alias.name != "*":
                            self.top_bindings.add(
                                alias.asname or alias.name)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self.top_bindings.add(node.name)
                    top_functions.add(node.name)
                elif isinstance(node, ast.ClassDef):
                    self.top_bindings.add(node.name)
                    top_classes.add(node.name)
                elif isinstance(node, ast.Assign):
                    # `X[k] = v` / `X.a = v` mutate, they do not bind:
                    # only Store-context names count as new bindings.
                    for target in node.targets:
                        for leaf in ast.walk(target):
                            if not isinstance(leaf, ast.Name) \
                                    or not isinstance(leaf.ctx, ast.Store):
                                continue
                            self.top_bindings.add(leaf.id)
                            if leaf.id == "__all__":
                                literal = _literal_strings(node.value)
                                if literal is None:
                                    all_dynamic = True
                                else:
                                    all_literal = tuple(literal)
                                all_line = node.lineno
                                all_col = node.col_offset
                            elif is_mutable_literal(node.value):
                                mutable_globals.add(leaf.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Name):
                    self.top_bindings.add(node.target.id)
                    if node.value is not None \
                            and is_mutable_literal(node.value):
                        mutable_globals.add(node.target.id)
                elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Name):
                    self.top_bindings.add(node.target.id)
                    if node.target.id == "__all__":
                        all_dynamic = all_literal is None
                        all_line = node.lineno
                        all_col = node.col_offset
                elif isinstance(node, (ast.If, ast.Try)):
                    bind_top(node.body)
                    bind_top(getattr(node, "orelse", ()) or ())
                    for handler in getattr(node, "handlers", ()) or ():
                        bind_top(handler.body)

        bind_top(self.tree.body)

        # Function bodies (top-level defs, methods, nested, lambdas).
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(node, node.name, node.name,
                                      "function", None, set())
            elif isinstance(node, ast.ClassDef):
                methods: list[str] = []
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        methods.append(stmt.name)
                        self.extract_function(
                            stmt, f"{node.name}.{stmt.name}", stmt.name,
                            "method", node.name, set())
                class_methods[node.name] = tuple(methods)
        # Module top level (handoffs at import time still register
        # entry points; its impurities are never worker-reachable).
        self.extract_function(self.tree, "<module>", "<module>",
                              "module", None, set())

        summary = ModuleSummary(
            top_bindings=frozenset(self.top_bindings),
            top_functions=frozenset(top_functions),
            top_classes=frozenset(top_classes),
            mutable_globals=frozenset(mutable_globals),
            import_aliases=self.import_aliases,
            from_absolute=self.from_absolute,
            from_relative=self.from_relative,
            relative_imports=tuple(relative_imports),
            all_literal=all_literal, all_dynamic=all_dynamic,
            all_line=all_line, all_col=all_col,
            class_methods=class_methods,
            functions=self.functions)
        return summary


def _literal_strings(node: ast.AST) -> list[str] | None:
    """The string elements of a literal list/tuple, else None."""
    if isinstance(node, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts):
        return [e.value for e in node.elts]
    return None


def extract_summary(tree: ast.Module) -> ModuleSummary:
    """Distil one parsed module into its :class:`ModuleSummary`."""
    return _ModuleExtractor(tree).run()


# ---------------------------------------------------------------------------
# Cache + parallel analysis
# ---------------------------------------------------------------------------


def _content_key(display_path: str, source: str) -> str:
    digest = hashlib.sha256()
    digest.update(display_path.encode())
    digest.update(b"\x00")
    digest.update(source.encode())
    return digest.hexdigest()


def _analyze_one(display_path: str, source: str,
                 pack_signature: str) -> dict[str, Any]:
    """Worker entry point: parse, extract, run the file-scope rules.

    Returns a JSON-serialisable payload (exactly what the cache
    stores).  Parse failures come back as a ``parse_error`` payload so
    the parent can turn them into ``PARSE001`` findings.
    """
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as exc:
        return {"version": SUMMARY_VERSION, "pack": pack_signature,
                "parse_error": {"msg": exc.msg or "syntax error",
                                "line": exc.lineno or 1,
                                "col": exc.offset or 0},
                "summary": None, "findings": []}
    summary = extract_summary(tree)
    from .core import SourceUnit, file_scope_rules
    unit = SourceUnit(path=Path(display_path), source=source, tree=tree,
                      summary=summary)
    findings = []
    for rule in file_scope_rules():
        for finding in rule.check(unit):
            findings.append(finding.to_dict())
    return {"version": SUMMARY_VERSION, "pack": pack_signature,
            "parse_error": None, "summary": summary.to_dict(),
            "findings": findings}


@dataclass
class AnalyzedFile:
    """One file's analysis products, cache-hit or freshly computed."""

    path: Path                   # as given on the command line
    source: str
    summary: ModuleSummary | None
    local_findings: list[dict[str, Any]]
    parse_error: dict[str, Any] | None
    from_cache: bool


class ProjectAnalyzer:
    """Cached, parallel per-file analysis over a set of source files.

    ``cache_dir=None`` disables the cache entirely.  ``jobs`` bounds
    the extraction pool; serial below ``parallel_threshold`` files to
    dodge pool spin-up for small runs.
    """

    def __init__(self, cache_dir: Path | None, jobs: int | None = None,
                 parallel_threshold: int = 24) -> None:
        self.cache_dir = cache_dir
        self.jobs = jobs if jobs is not None else default_jobs()
        self.parallel_threshold = parallel_threshold
        self.hits = 0
        self.misses = 0

    def _pack_signature(self) -> str:
        from .core import file_scope_rules
        codes = ",".join(sorted(rule.code for rule in file_scope_rules()))
        return f"{SUMMARY_VERSION}|{codes}"

    def _cache_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key[:2]}" / f"{key}.json"

    def _load_cached(self, key: str,
                     signature: str) -> dict[str, Any] | None:
        path = self._cache_path(key)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != SUMMARY_VERSION \
                or payload.get("pack") != signature:
            return None
        return payload

    def _store(self, key: str, payload: dict[str, Any]) -> None:
        path = self._cache_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass  # a cold cache next run beats failing the lint

    def analyze(self, files: Iterable[Path]) -> list[AnalyzedFile]:
        """Analyze every file, via cache where possible, pool otherwise."""
        signature = self._pack_signature()
        ordered: list[tuple[Path, str, str]] = []
        results: dict[str, dict[str, Any]] = {}
        misses: list[tuple[Path, str, str]] = []
        for path in files:
            source = Path(path).read_text(encoding="utf-8")
            key = _content_key(str(path), source)
            ordered.append((Path(path), source, key))
            cached = self._load_cached(key, signature)
            if cached is not None:
                results[key] = cached
                self.hits += 1
            else:
                misses.append((Path(path), source, key))
                self.misses += 1
        if misses:
            if self.jobs > 1 and len(misses) >= self.parallel_threshold:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    payloads = list(pool.map(
                        _analyze_one,
                        [str(p) for p, _, _ in misses],
                        [s for _, s, _ in misses],
                        [signature] * len(misses),
                        chunksize=8))
            else:
                payloads = [_analyze_one(str(p), s, signature)
                            for p, s, _ in misses]
            for (path, _, key), payload in zip(misses, payloads):
                results[key] = payload
                self._store(key, payload)
        analyzed: list[AnalyzedFile] = []
        fresh_keys = {key for _, _, key in misses}
        for path, source, key in ordered:
            payload = results[key]
            summary = (None if payload["summary"] is None
                       else ModuleSummary.from_dict(payload["summary"]))
            analyzed.append(AnalyzedFile(
                path=path, source=source, summary=summary,
                local_findings=list(payload["findings"]),
                parse_error=payload["parse_error"],
                from_cache=key not in fresh_keys))
        return analyzed


# ---------------------------------------------------------------------------
# The project graph
# ---------------------------------------------------------------------------


FnKey = tuple[str, str]
"""(resolved absolute file path, function qualname)."""


@dataclass(frozen=True)
class EntryPoint:
    """One worker entry: the function plus the handoff that created it."""

    fn: FnKey
    callee: str
    flavor: str
    site_path: str
    line: int
    col: int


class ProjectGraph:
    """Symbol/import/call graph over a set of analyzed files.

    Built once per lint run from :class:`ModuleSummary` objects; the
    project-scope rules (``API001``, the ``PAR0xx`` family) traverse it
    instead of re-reading source.
    """

    def __init__(self, analyzed: Iterable[AnalyzedFile],
                 roots: Iterable[Path] = ()) -> None:
        self.files: dict[str, AnalyzedFile] = {}
        self.display: dict[str, str] = {}
        self.module_name: dict[str, str | None] = {}
        self.by_module: dict[str, str] = {}
        for item in analyzed:
            abs_path = str(Path(item.path).resolve())
            self.files[abs_path] = item
            self.display[abs_path] = str(item.path)
        self._index_module_names(roots)
        self.functions: dict[FnKey, FunctionSummary] = {}
        for abs_path, item in self.files.items():
            if item.summary is None:
                continue
            for qualname, fn in item.summary.functions.items():
                self.functions[(abs_path, qualname)] = fn
        self.edges: dict[FnKey, list[FnKey]] = {}
        for key in self.functions:
            self.edges[key] = self._resolve_edges(key)
        self.entries: list[EntryPoint] = self._collect_entries()
        self.reachable: dict[FnKey, tuple[EntryPoint, FnKey | None]] = {}
        self._compute_reachability()
        self.mutable_state: set[tuple[str, str]] = \
            self._collect_mutable_state()

    # -- naming -----------------------------------------------------------

    def _index_module_names(self, roots: Iterable[Path]) -> None:
        """Dotted module names derived from the package structure.

        Walk up from each file while ``__init__.py`` markers continue —
        the same resolution the interpreter performs — so names come
        out identical no matter which directory the lint was rooted at.
        """
        del roots  # kept for signature stability; names are structural
        for abs_path in self.files:
            path = Path(abs_path)
            if path.name == "__init__.py":
                parts: list[str] = []
                package_dir = path.parent
            else:
                parts = [path.stem]
                package_dir = path.parent
            while (package_dir / "__init__.py").exists():
                parts.insert(0, package_dir.name)
                package_dir = package_dir.parent
            name = ".".join(parts) if parts else None
            self.module_name[abs_path] = name
            if name is not None:
                self.by_module.setdefault(name, abs_path)

    def fn_display(self, key: FnKey) -> str:
        """Human name for one function: ``module.qualname``."""
        abs_path, qualname = key
        module = self.module_name.get(abs_path)
        if module is None:
            module = Path(abs_path).stem
        return f"{module}.{qualname}" if module else qualname

    # -- resolution -------------------------------------------------------

    def resolve_relative(self, abs_path: str, level: int,
                         module: str | None) -> str | None:
        """Resolve a relative import to an analyzed file's abs path."""
        base = Path(abs_path).parent
        for _ in range(level - 1):
            base = base.parent
        if module:
            for part in module.split("."):
                base = base / part
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            resolved = str(candidate.resolve())
            if resolved in self.files:
                return resolved
        return None

    def _module_file(self, dotted: str) -> str | None:
        return self.by_module.get(dotted)

    def _function_in(self, abs_path: str | None, name: str
                     ) -> FnKey | None:
        """A top-level function/class target inside one module file."""
        if abs_path is None:
            return None
        item = self.files.get(abs_path)
        if item is None or item.summary is None:
            return None
        summary = item.summary
        if name in summary.functions and \
                summary.functions[name].kind == "function":
            return (abs_path, name)
        if name in summary.top_classes:
            for init in ("__init__", "__post_init__"):
                if f"{name}.{init}" in summary.functions:
                    return (abs_path, f"{name}.{init}")
        return None

    def _imported_target(self, abs_path: str, name: str) -> FnKey | None:
        """Resolve a bare imported name to a function in the project."""
        item = self.files[abs_path]
        summary = item.summary
        assert summary is not None
        if name in summary.from_absolute:
            module, orig = summary.from_absolute[name]
            return self._function_in(self._module_file(module), orig)
        if name in summary.from_relative:
            level, module, orig = summary.from_relative[name]
            target = self.resolve_relative(abs_path, level, module)
            if target is not None:
                resolved = self._function_in(target, orig)
                if resolved is not None:
                    return resolved
                # `from . import sibling`-style module import.
                sibling = self.resolve_relative(
                    abs_path, level,
                    f"{module}.{orig}" if module else orig)
                if sibling is not None:
                    return None
        return None

    def _imported_module_file(self, abs_path: str,
                              name: str) -> str | None:
        """The analyzed file a local name refers to, if it is a module."""
        item = self.files[abs_path]
        summary = item.summary
        assert summary is not None
        if name in summary.import_aliases:
            return self._module_file(summary.import_aliases[name])
        if name in summary.from_absolute:
            module, orig = summary.from_absolute[name]
            return self._module_file(f"{module}.{orig}")
        if name in summary.from_relative:
            level, module, orig = summary.from_relative[name]
            return self.resolve_relative(
                abs_path, level, f"{module}.{orig}" if module else orig)
        return None

    def resolve_call(self, key: FnKey, chain: tuple[str, ...]
                     ) -> FnKey | None:
        """Best-effort static resolution of one call chain."""
        abs_path, qualname = key
        summary = self.files[abs_path].summary
        assert summary is not None
        fn = summary.functions[qualname]
        if not chain:
            return None
        # Synthetic edge to a nested def/lambda recorded by extraction.
        if chain[0] == "" and len(chain) == 2:
            nested = (abs_path, chain[1])
            return nested if nested in self.functions else None
        root = chain[0]
        if root == "self" and fn.owner_class and len(chain) == 2:
            method = (abs_path, f"{fn.owner_class}.{chain[1]}")
            return method if method in self.functions else None
        if len(chain) == 1:
            local = self._function_in(abs_path, root)
            if local is not None:
                return local
            nested_name = f"{qualname}.{root}"
            if (abs_path, nested_name) in self.functions:
                return (abs_path, nested_name)
            return self._imported_target(abs_path, root)
        # Dotted chains: Class.method / module.func / pkg.mod.func.
        if root in summary.top_classes:
            method = (abs_path, f"{root}.{chain[1]}")
            return method if method in self.functions else None
        module_file = self._imported_module_file(abs_path, root)
        rest = chain[1:]
        while module_file is not None and rest:
            target = self._function_in(module_file, rest[0])
            if target is not None and len(rest) == 1:
                return target
            deeper: str | None = None
            item = self.files.get(module_file)
            if item is not None and item.summary is not None:
                deeper_name = rest[0]
                deeper = self._imported_module_file(module_file,
                                                    deeper_name)
                if deeper is None:
                    module = self.module_name.get(module_file)
                    if module is not None:
                        deeper = self._module_file(
                            f"{module}.{deeper_name}")
            if len(rest) >= 2 and deeper is None:
                # Class attribute chain inside the target module.
                if item is not None and item.summary is not None \
                        and rest[0] in item.summary.top_classes:
                    method = (module_file, f"{rest[0]}.{rest[1]}")
                    if method in self.functions:
                        return method
            module_file, rest = deeper, rest[1:]
        return None

    def _resolve_edges(self, key: FnKey) -> list[FnKey]:
        fn = self.functions[key]
        targets: list[FnKey] = []
        seen: set[FnKey] = set()
        for call in fn.calls:
            target = self.resolve_call(key, call.chain)
            if target is not None and target not in seen:
                seen.add(target)
                targets.append(target)
        return targets

    # -- worker reachability ---------------------------------------------

    def _handoff_target(self, key: FnKey, handoff: Handoff
                        ) -> FnKey | None:
        abs_path, qualname = key
        summary = self.files[abs_path].summary
        assert summary is not None
        fn = summary.functions[qualname]
        ref = handoff.arg_ref
        if ref is None:
            return None
        if handoff.arg_flavor == "lambda":
            lam = (abs_path, ref)
            return lam if lam in self.functions else None
        if handoff.arg_flavor == "bound-method":
            if fn.owner_class:
                method = (abs_path, f"{fn.owner_class}.{ref}")
                return method if method in self.functions else None
            return None
        if handoff.arg_flavor == "name":
            nested = (abs_path, f"{qualname}.{ref}")
            if nested in self.functions:
                return nested
            local = self._function_in(abs_path, ref)
            if local is not None:
                return local
            return self._imported_target(abs_path, ref)
        if handoff.arg_flavor == "attr":
            return self.resolve_call(key, tuple(ref.split(".")))
        return None

    def handoffs(self) -> Iterator[tuple[FnKey, Handoff, FnKey | None]]:
        """Every worker handoff site: (owner, handoff, resolved target)."""
        for key in sorted(self.functions):
            for handoff in self.functions[key].handoffs:
                yield key, handoff, self._handoff_target(key, handoff)

    def _collect_entries(self) -> list[EntryPoint]:
        entries: list[EntryPoint] = []
        for key, handoff, target in self.handoffs():
            if target is None:
                continue
            flavor = handoff.arg_flavor or "opaque"
            if flavor == "name" \
                    and self.functions[target].kind == "nested":
                flavor = "nested"
            entries.append(EntryPoint(
                fn=target, callee=handoff.callee, flavor=flavor,
                site_path=key[0], line=handoff.line, col=handoff.col))
        return entries

    def _compute_reachability(self) -> None:
        queue: deque[FnKey] = deque()
        for entry in self.entries:
            if entry.fn not in self.reachable:
                self.reachable[entry.fn] = (entry, None)
                queue.append(entry.fn)
        while queue:
            current = queue.popleft()
            entry, _ = self.reachable[current]
            for target in self.edges.get(current, ()):  # already sorted
                if target not in self.reachable:
                    self.reachable[target] = (entry, current)
                    queue.append(target)

    def worker_reachable(self) -> Iterator[tuple[FnKey, FunctionSummary]]:
        """Every function reachable from a worker entry, sorted."""
        for key in sorted(self.reachable):
            yield key, self.functions[key]

    def chain_to_entry(self, key: FnKey, limit: int = 5) -> list[str]:
        """Display names from the worker entry down to ``key``."""
        names: list[str] = []
        current: FnKey | None = key
        while current is not None and len(names) <= limit:
            names.append(self.fn_display(current))
            _, parent = self.reachable[current]
            current = parent
        return names[::-1]

    # -- shared mutable state --------------------------------------------

    def _collect_mutable_state(self) -> set[tuple[str, str]]:
        """Module-level names with write evidence anywhere in the project.

        A name qualifies when it is bound at module level and some
        function *writes* it (``global`` rebinding) or *mutates* it in
        place.  Reads of never-written module constants stay clean.
        """
        state: set[tuple[str, str]] = set()
        for abs_path, item in self.files.items():
            if item.summary is None:
                continue
            bindings = item.summary.top_bindings
            for fn in item.summary.functions.values():
                for use in fn.global_uses:
                    if use.access in ("write", "mutate") \
                            and (use.name in bindings
                                 or use.access == "write"):
                        state.add((abs_path, use.name))
        return state
