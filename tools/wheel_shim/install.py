"""Install the wheel shim into the running interpreter's site-packages.

Run once in offline environments where `pip install -e .` fails with
"invalid command 'bdist_wheel'" or "It is not possible to use
--no-use-pep517 without setuptools and wheel installed":

    python tools/wheel_shim/install.py
"""

from __future__ import annotations

import os
import shutil
import site
import sys

DIST_INFO = "wheel-0.43.0+shim.dist-info"
METADATA = """Metadata-Version: 2.1
Name: wheel
Version: 0.43.0+shim
Summary: Minimal offline shim of the wheel package (editable installs only)
"""
ENTRY_POINTS = """[distutils.commands]
bdist_wheel = wheel.bdist_wheel:bdist_wheel
"""


def main() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    source = os.path.join(here, "wheel")
    target_root = site.getsitepackages()[0]
    package_target = os.path.join(target_root, "wheel")
    if os.path.exists(package_target):
        print(f"a 'wheel' package already exists at {package_target}; "
              "nothing to do")
        return 0
    shutil.copytree(source, package_target)
    dist_info = os.path.join(target_root, DIST_INFO)
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w") as handle:
        handle.write(METADATA)
    with open(os.path.join(dist_info, "entry_points.txt"), "w") as handle:
        handle.write(ENTRY_POINTS)
    with open(os.path.join(dist_info, "top_level.txt"), "w") as handle:
        handle.write("wheel\n")
    with open(os.path.join(dist_info, "INSTALLER"), "w") as handle:
        handle.write("wheel-shim\n")
    with open(os.path.join(dist_info, "RECORD"), "w") as handle:
        handle.write("")
    print(f"wheel shim installed into {target_root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
