"""Minimal pure-Python shim of the `wheel` package (offline bootstrap).

Offline environments sometimes carry setuptools but not `wheel`, which
blocks ``pip install -e .`` (setuptools' PEP 660 editable builds import
``wheel.wheelfile`` and the ``bdist_wheel`` command).  This shim
implements exactly the surface setuptools>=64 needs to build editable
wheels: :class:`wheel.wheelfile.WheelFile` and a ``bdist_wheel``
distutils command exposing ``get_tag()`` and ``write_wheelfile()``.

It is NOT a general replacement for the real `wheel` project — it only
supports pure-Python wheels and the editable-install path.  Install by
copying ``wheel/`` and ``wheel-*.dist-info/`` into site-packages (see
tools/wheel_shim/install.py).
"""

__version__ = "0.43.0+shim"
