"""Minimal ``bdist_wheel`` distutils command (editable installs only)."""

from __future__ import annotations

import os
import sys

from distutils.core import Command

from . import __version__


def _python_tag() -> str:
    return f"py{sys.version_info[0]}"


class bdist_wheel(Command):
    """Just enough of the real command for setuptools' editable wheels.

    setuptools' PEP 660 implementation only calls :meth:`get_tag` and
    :meth:`write_wheelfile`; building a regular (non-editable) wheel is
    intentionally unsupported here.
    """

    description = "minimal bdist_wheel shim (editable installs only)"
    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("plat-name=", "p", "platform name (ignored; pure wheels only)"),
    ]

    def initialize_options(self):
        """distutils hook: declare the options the shim accepts."""
        self.dist_dir = None
        self.plat_name = None

    def finalize_options(self):
        """distutils hook: defaults for unset options."""
        if self.dist_dir is None:
            self.dist_dir = "dist"

    def get_tag(self):
        """(python, abi, platform) — always a pure-Python tag."""
        return (_python_tag(), "none", "any")

    def write_wheelfile(self, wheelfile_base,
                        generator=f"wheel-shim ({__version__})"):
        """Write the dist-info WHEEL metadata file."""
        tag = "-".join(self.get_tag())
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {tag}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)

    def run(self):
        raise NotImplementedError(
            "this is a minimal shim for editable installs; install the real "
            "'wheel' package to build distributable wheels")


def _requires_to_requires_dist(requirement: str) -> str:
    return requirement.strip()


def _convert_requires_txt(requires_path: str) -> list[str]:
    """Translate egg-info requires.txt into Requires-Dist/Provides-Extra."""
    lines: list[str] = []
    extras: list[str] = []
    section = ""
    with open(requires_path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("[") and line.endswith("]"):
                section = line[1:-1]
                extra = section.split(":", 1)[0]
                if extra and extra not in extras:
                    extras.append(extra)
                continue
            requirement = _requires_to_requires_dist(line)
            if not section:
                lines.append(f"Requires-Dist: {requirement}")
                continue
            extra, _, condition = section.partition(":")
            markers = []
            if condition:
                markers.append(f"({condition})" if extra else condition)
            if extra:
                markers.append(f'extra == "{extra}"')
            lines.append(
                f"Requires-Dist: {requirement}; {' and '.join(markers)}")
    return ([f"Provides-Extra: {name}" for name in extras]) + lines


def _egg2dist(egginfo_path: str, distinfo_path: str) -> None:
    """Convert an .egg-info directory into a .dist-info directory."""
    import shutil

    if os.path.isdir(distinfo_path):
        shutil.rmtree(distinfo_path)
    os.makedirs(distinfo_path)

    pkg_info = os.path.join(egginfo_path, "PKG-INFO")
    with open(pkg_info, encoding="utf-8") as handle:
        metadata = handle.read()
    # Split headers from the (optional) long-description body.
    if "\n\n" in metadata:
        headers, body = metadata.split("\n\n", 1)
    else:
        headers, body = metadata.rstrip("\n"), ""
    requires = os.path.join(egginfo_path, "requires.txt")
    extra_headers: list[str] = []
    if os.path.exists(requires):
        existing = {line.split(":", 1)[0] for line in headers.splitlines()}
        if "Requires-Dist" not in existing:
            extra_headers = _convert_requires_txt(requires)
    merged = headers
    if extra_headers:
        merged += "\n" + "\n".join(extra_headers)
    content = merged + ("\n\n" + body if body else "\n")
    with open(os.path.join(distinfo_path, "METADATA"), "w",
              encoding="utf-8") as handle:
        handle.write(content)

    for name in ("entry_points.txt", "top_level.txt"):
        source = os.path.join(egginfo_path, name)
        if os.path.exists(source):
            shutil.copy2(source, os.path.join(distinfo_path, name))


# Attach as a method so setuptools' dist_info command can call it.
bdist_wheel.egg2dist = staticmethod(_egg2dist)
