"""A minimal WheelFile: a ZipFile that maintains the wheel RECORD."""

from __future__ import annotations

import base64
import hashlib
import os
import re
import stat
import zipfile

_DIST_INFO_RE = re.compile(
    r"^(?P<namever>(?P<name>[^\s-]+?)-(?P<ver>[^\s-]+?))"
    r"(-(?P<build>\d[^\s-]*))?-(?P<pyver>[^\s-]+?)"
    r"-(?P<abi>[^\s-]+?)-(?P<plat>[^\s-]+?)\.whl$")


def _urlsafe_b64(digest: bytes) -> str:
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Write-capable wheel archive with automatic RECORD generation."""

    def __init__(self, file, mode="r",
                 compression=zipfile.ZIP_DEFLATED):
        basename = os.path.basename(str(file))
        match = _DIST_INFO_RE.match(basename)
        if not match:
            raise ValueError(f"bad wheel filename {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = (f"{match.group('namever')}.dist-info")
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._record_entries = {}
        super().__init__(file, mode=mode, compression=compression,
                         allowZip64=True)

    # -- writing ----------------------------------------------------------

    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as handle:
            data = handle.read()
        name = arcname if arcname is not None else filename
        name = str(name).replace(os.sep, "/")
        mode = os.stat(filename).st_mode
        info = zipfile.ZipInfo(name)
        info.external_attr = (mode & 0xFFFF) << 16
        if stat.S_ISDIR(mode):
            info.external_attr |= 0x10
        self.writestr(info, data, compress_type)

    def write_files(self, base_dir):
        """Add every file under ``base_dir``, RECORD last."""
        deferred = []
        for root, dirnames, filenames in os.walk(base_dir):
            dirnames.sort()
            for name in sorted(filenames):
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname == self.record_path:
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        for path, arcname in deferred:
            self.write(path, arcname)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, compress_type)
        name = (zinfo_or_arcname.filename
                if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
                else str(zinfo_or_arcname))
        if name != self.record_path:
            digest = hashlib.sha256(data).digest()
            self._record_entries[name] = (
                f"sha256={_urlsafe_b64(digest)}", len(data))

    def close(self):
        if self.mode == "w" and self._record_entries is not None:
            lines = [f"{name},{hash_},{size}"
                     for name, (hash_, size)
                     in sorted(self._record_entries.items())]
            lines.append(f"{self.record_path},,")
            payload = "\n".join(lines) + "\n"
            entries = self._record_entries
            self._record_entries = None
            super().writestr(self.record_path, payload.encode("utf-8"))
            self._record_entries = entries
        super().close()
