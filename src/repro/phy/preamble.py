"""Preamble design, detection and polarity resolution.

OTAM has an inherent polarity ambiguity: when the LoS path is blocked the
roles of the strong/weak beams swap and *all bits invert* (section 6.1,
Fig. 4b).  The paper resolves this with known training bits at the start of
every packet.  We use a Barker-13 sequence — its autocorrelation sidelobes
are at most 1/13 of the peak, so both timing and polarity fall out of a
single correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bits import as_bit_array

__all__ = [
    "BARKER13",
    "default_preamble_bits",
    "correlate_preamble",
    "locate_preamble",
    "PreambleDetection",
]

BARKER13 = np.array([1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=np.uint8)
"""Barker-13 code in bit form (+1 -> 1, -1 -> 0)."""


def default_preamble_bits(repeats: int = 2) -> np.ndarray:
    """The mmX packet preamble: ``repeats`` Barker-13 sequences."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return np.tile(BARKER13, repeats)


def _bipolar(bits) -> np.ndarray:
    return 2.0 * as_bit_array(bits).astype(float) - 1.0


def correlate_preamble(soft_bits: np.ndarray, preamble) -> np.ndarray:
    """Normalised sliding correlation of soft bit values with a preamble.

    ``soft_bits`` are real values (e.g. envelope samples mapped to
    [-1, 1]); the output at index i is the correlation of the window
    starting at i, in [-1, 1].  A strongly *negative* peak means the
    preamble was found with inverted polarity.
    """
    x = np.asarray(soft_bits, dtype=float)
    p = _bipolar(preamble)
    if x.size < p.size:
        return np.zeros(0)
    windows = np.lib.stride_tricks.sliding_window_view(x, p.size)
    norms = np.linalg.norm(windows, axis=1) * np.linalg.norm(p)
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = windows @ p / norms
    return np.nan_to_num(corr)


@dataclass(frozen=True)
class PreambleDetection:
    """Result of searching a bit stream for the packet preamble."""

    start_index: int
    inverted: bool
    correlation: float

    @property
    def found(self) -> bool:
        """Whether the correlation cleared the detection threshold."""
        return self.start_index >= 0


def locate_preamble(soft_bits: np.ndarray, preamble=None,
                    threshold: float = 0.6) -> PreambleDetection:
    """Find the preamble in a soft bit stream and resolve OTAM polarity.

    Searches both polarities: the strongest |correlation| above
    ``threshold`` wins, and its sign reports whether the channel inverted
    the bits (blocked-LoS case).  Returns a detection with
    ``start_index = -1`` when nothing clears the threshold.
    """
    if preamble is None:
        preamble = default_preamble_bits()
    corr = correlate_preamble(soft_bits, preamble)
    if corr.size == 0:
        return PreambleDetection(start_index=-1, inverted=False, correlation=0.0)
    best = int(np.argmax(np.abs(corr)))
    value = float(corr[best])
    if abs(value) < threshold:
        return PreambleDetection(start_index=-1, inverted=False, correlation=value)
    return PreambleDetection(start_index=best, inverted=value < 0.0,
                             correlation=value)
