"""Bit-level utilities shared by modulators, coders and framers.

Bits are represented throughout the library as 1-D ``numpy`` arrays of
``uint8`` values in {0, 1}, most-significant bit first within each byte.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng

__all__ = [
    "as_bit_array",
    "bits_to_bytes",
    "bytes_to_bits",
    "bit_errors",
    "bit_error_rate",
    "random_bits",
    "pack_uint",
    "unpack_uint",
]


def as_bit_array(bits) -> np.ndarray:
    """Coerce a bit sequence into the canonical uint8 {0,1} array form.

    Accepts lists, tuples, strings of '0'/'1', and numpy arrays.  Raises
    ``ValueError`` for anything that is not strictly binary.
    """
    if isinstance(bits, str):
        bits = [int(c) for c in bits]
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bit array may only contain 0 and 1")
    return arr


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand a byte string into a bit array, MSB first."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits) -> bytes:
    """Pack a bit array (length must be a multiple of 8) into bytes."""
    arr = as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ValueError(f"bit length {arr.size} is not a multiple of 8")
    return np.packbits(arr).tobytes()


def bit_errors(sent, received) -> int:
    """Number of positions where two equal-length bit arrays differ."""
    a = as_bit_array(sent)
    b = as_bit_array(received)
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    return int(np.count_nonzero(a != b))


def bit_error_rate(sent, received) -> float:
    """Fraction of differing bits between two equal-length bit arrays."""
    a = as_bit_array(sent)
    if a.size == 0:
        return 0.0
    return bit_errors(sent, received) / a.size


def random_bits(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Generate ``n`` uniform random bits."""
    if n < 0:
        raise ValueError("bit count must be non-negative")
    rng = ensure_rng(rng)
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def pack_uint(value: int, width: int) -> np.ndarray:
    """Encode a non-negative integer as ``width`` bits, MSB first."""
    if width <= 0:
        raise ValueError("width must be positive")
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=np.uint8)


def unpack_uint(bits) -> int:
    """Decode an MSB-first bit array into a non-negative integer."""
    arr = as_bit_array(bits)
    value = 0
    for b in arr:
        value = (value << 1) | int(b)
    return value
