"""Complex-baseband waveform synthesis.

The reproduction simulates the mmX air interface at complex baseband: the
24 GHz carrier is removed analytically and what remains is the envelope and
the small FSK offsets that the AP's USRP would digitise after
down-conversion (section 8.2).  A :class:`Waveform` couples the sample
array to its sample rate so downstream DSP can't silently mix rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..rng import ensure_rng
from ..units import FloatArray, db_to_linear

__all__ = [
    "Waveform",
    "carrier",
    "ook_waveform",
    "two_level_waveform",
    "awgn_noise",
    "add_awgn",
]

ComplexArray = npt.NDArray[np.complex128]


@dataclass(frozen=True)
class Waveform:
    """Complex baseband samples tagged with their sample rate."""

    samples: ComplexArray
    sample_rate_hz: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.complex128)
        object.__setattr__(self, "samples", samples)
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if samples.ndim != 1:
            raise ValueError("waveform samples must be one-dimensional")

    def __len__(self) -> int:
        return self.samples.size

    @property
    def duration_s(self) -> float:
        """Duration of the waveform in seconds."""
        return self.samples.size / self.sample_rate_hz

    def time_axis(self) -> FloatArray:
        """Sample timestamps [s], starting at zero."""
        axis: FloatArray = np.arange(self.samples.size) / self.sample_rate_hz
        return axis

    def power(self) -> float:
        """Mean power of the samples (linear units)."""
        if self.samples.size == 0:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    def scaled(self, amplitude: complex) -> Waveform:
        """Return a copy scaled by a (possibly complex) amplitude factor."""
        return Waveform(self.samples * amplitude, self.sample_rate_hz)

    def concatenated(self, other: Waveform) -> Waveform:
        """Concatenate two waveforms at identical sample rates."""
        if other.sample_rate_hz != self.sample_rate_hz:
            raise ValueError("cannot concatenate waveforms at different rates")
        return Waveform(np.concatenate([self.samples, other.samples]),
                        self.sample_rate_hz)


def carrier(frequency_hz: float, duration_s: float, sample_rate_hz: float,
            amplitude: float = 1.0, phase_rad: float = 0.0) -> Waveform:
    """A pure complex tone — what the mmX node's VCO emits at baseband.

    ``frequency_hz`` is the *offset from the nominal carrier*; 0 means the
    tone sits exactly at the channel centre.
    """
    n = int(round(duration_s * sample_rate_hz))
    t = np.arange(n) / sample_rate_hz
    samples = amplitude * np.exp(1j * (2.0 * np.pi * frequency_hz * t + phase_rad))
    return Waveform(samples, sample_rate_hz)


def _samples_per_bit(bit_rate_bps: float, sample_rate_hz: float) -> int:
    sps = sample_rate_hz / bit_rate_bps
    if sps < 2:
        raise ValueError(
            f"sample rate {sample_rate_hz} too low for bit rate {bit_rate_bps}")
    if abs(sps - round(sps)) > 1e-9:
        raise ValueError("sample rate must be an integer multiple of bit rate")
    return int(round(sps))


def ook_waveform(bits: npt.ArrayLike, bit_rate_bps: float,
                 sample_rate_hz: float,
                 frequency_hz: float = 0.0, high: float = 1.0,
                 low: float = 0.0) -> Waveform:
    """Classic on-off-keyed tone: bit 1 -> ``high`` amplitude, 0 -> ``low``.

    This is the signal a *conventional* (non-OTAM) ASK node would radiate —
    the paper's "without OTAM" baseline, where modulation happens at the
    node before the antenna.
    """
    bit_array = np.asarray(bits, dtype=float).ravel()
    sps = _samples_per_bit(bit_rate_bps, sample_rate_hz)
    levels = np.where(bit_array > 0.5, high, low)
    envelope = np.repeat(levels, sps)
    t = np.arange(envelope.size) / sample_rate_hz
    tone = np.exp(1j * 2.0 * np.pi * frequency_hz * t)
    return Waveform(envelope * tone, sample_rate_hz)


def two_level_waveform(bits: npt.ArrayLike, bit_rate_bps: float,
                       sample_rate_hz: float,
                       amp_one: complex, amp_zero: complex,
                       freq_one_hz: float = 0.0,
                       freq_zero_hz: float = 0.0) -> Waveform:
    """Per-bit amplitude *and* frequency keying with continuous phase.

    This is the general waveform OTAM produces at the AP: each bit selects a
    beam, hence a channel amplitude (``amp_one`` / ``amp_zero``), and
    optionally a slightly different VCO frequency (joint ASK-FSK,
    section 6.3).  Phase is kept continuous across bit boundaries, as a free
    running VCO would.
    """
    bit_array = np.asarray(bits, dtype=np.uint8).ravel()
    sps = _samples_per_bit(bit_rate_bps, sample_rate_hz)
    n = bit_array.size * sps
    amps = np.where(np.repeat(bit_array, sps) == 1, amp_one, amp_zero)
    freqs = np.where(np.repeat(bit_array, sps) == 1, freq_one_hz,
                     freq_zero_hz)
    # Continuous phase: integrate the instantaneous frequency.
    dt = 1.0 / sample_rate_hz
    phase = 2.0 * np.pi * np.cumsum(freqs) * dt
    phase = np.concatenate([[0.0], phase[:-1]])
    samples = amps * np.exp(1j * phase)
    assert samples.size == n
    return Waveform(samples, sample_rate_hz)


def awgn_noise(n: int, noise_power: float,
               rng: np.random.Generator | None = None) -> ComplexArray:
    """Complex AWGN samples with total (I+Q) power ``noise_power``."""
    if n < 0:
        raise ValueError("sample count must be non-negative")
    if noise_power < 0:
        raise ValueError("noise power must be non-negative")
    generator = ensure_rng(rng)
    sigma = np.sqrt(noise_power / 2.0)
    noise: ComplexArray = sigma * (generator.standard_normal(n)
                                   + 1j * generator.standard_normal(n))
    return noise


def add_awgn(wave: Waveform, snr_db: float,
             rng: np.random.Generator | None = None,
             reference_power: float | None = None) -> Waveform:
    """Add white Gaussian noise at a target SNR relative to signal power.

    ``reference_power`` overrides the measured waveform power when the SNR
    should be defined against a known level (e.g. the strong ASK level)
    rather than the empirical average.
    """
    power = wave.power() if reference_power is None else reference_power
    if power <= 0:
        raise ValueError("cannot set SNR for a zero-power waveform")
    noise_power = power / float(db_to_linear(snr_db))
    noise = awgn_noise(len(wave), noise_power, rng)
    return Waveform(wave.samples + noise, wave.sample_rate_hz)
