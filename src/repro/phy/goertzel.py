"""Goertzel single-tone power detection — the FSK half of the demodulator.

Per-bit the AP must decide which of two closely spaced tones was present
(section 6.3).  A full FFT per bit is wasteful; the Goertzel recursion
computes one bin in O(N) with O(1) state, which is the textbook choice for
two-tone FSK discrimination and mirrors what a low-cost baseband would do.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..units import FloatArray

__all__ = ["goertzel_power", "goertzel_block_powers"]


def goertzel_power(samples: npt.ArrayLike, frequency_hz: float,
                   sample_rate_hz: float) -> float:
    """Power of ``samples`` at a single frequency via the Goertzel DFT.

    Works on complex baseband input (negative frequencies allowed).
    Returns ``|X(f)|^2 / N^2`` so a unit-amplitude tone at exactly
    ``frequency_hz`` yields 1.0 regardless of length.
    """
    x = np.asarray(samples, dtype=np.complex128)
    n = x.size
    if n == 0:
        raise ValueError("empty sample block")
    if sample_rate_hz <= 0:
        raise ValueError("sample rate must be positive")
    # Complex Goertzel == projection onto the tone; vectorised dot product
    # is the numerically cleanest equivalent of the classic recursion.
    k = np.exp(-2j * np.pi * frequency_hz / sample_rate_hz * np.arange(n))
    bin_value = np.dot(x, k)
    return float(np.abs(bin_value) ** 2) / (n * n)


def goertzel_block_powers(samples: npt.ArrayLike, block_size: int,
                          frequencies_hz: npt.ArrayLike,
                          sample_rate_hz: float) -> FloatArray:
    """Per-block tone powers: shape ``(num_blocks, num_frequencies)``.

    Splits ``samples`` into consecutive ``block_size`` chunks (one per bit
    in the demodulator) and evaluates each candidate tone in each chunk.
    Trailing samples that do not fill a block are dropped.
    """
    x = np.asarray(samples, dtype=np.complex128)
    if block_size < 1:
        raise ValueError("block size must be >= 1")
    freqs = np.atleast_1d(np.asarray(frequencies_hz, dtype=float))
    num_blocks = x.size // block_size
    blocks = x[: num_blocks * block_size].reshape(num_blocks, block_size)
    t = np.arange(block_size) / sample_rate_hz
    # (num_freqs, block_size) conjugated tone matrix.
    tones = np.exp(-2j * np.pi * np.outer(freqs, t))
    spectra = blocks @ tones.T  # (num_blocks, num_freqs)
    powers: FloatArray = (np.abs(spectra) ** 2) / (block_size * block_size)
    return powers
