"""Channel coding: CRC-16, repetition and Hamming(7,4) codes.

Section 9.3 notes mmX's physical BER "can be reduced even further by using
an error correction coding scheme"; these codes make that concrete and give
the packet layer an integrity check (CRC) and two simple FEC options.
"""

from __future__ import annotations

import numpy as np

from .bits import as_bit_array

__all__ = [
    "crc16_ccitt",
    "crc16_ccitt_bits",
    "RepetitionCode",
    "HammingCode74",
    "interleave",
    "deinterleave",
]


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over a byte string (poly 0x1021)."""
    crc = initial
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc16_ccitt_bits(bits) -> int:
    """CRC-16 over a bit array whose length is a multiple of 8."""
    arr = as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ValueError("CRC input must be whole bytes")
    return crc16_ccitt(np.packbits(arr).tobytes())


class RepetitionCode:
    """Rate-1/n repetition code with majority-vote decoding."""

    def __init__(self, repetitions: int = 3):
        if repetitions < 1 or repetitions % 2 == 0:
            raise ValueError("repetitions must be a positive odd number")
        self.repetitions = repetitions

    @property
    def rate(self) -> float:
        """Code rate (information bits per channel bit)."""
        return 1.0 / self.repetitions

    def encode(self, bits) -> np.ndarray:
        """Repeat every information bit ``repetitions`` times."""
        return np.repeat(as_bit_array(bits), self.repetitions)

    def decode(self, coded) -> np.ndarray:
        """Majority vote over each group of ``repetitions`` channel bits."""
        arr = as_bit_array(coded)
        if arr.size % self.repetitions != 0:
            raise ValueError("coded length not a multiple of the repetition factor")
        groups = arr.reshape(-1, self.repetitions)
        return (groups.sum(axis=1) > self.repetitions // 2).astype(np.uint8)


class HammingCode74:
    """Hamming(7,4): corrects any single bit error per 7-bit codeword."""

    # Generator in systematic form [I | P]; parity P chosen to match the
    # classic H = [P^T | I] parity-check matrix.
    _P = np.array([
        [1, 1, 0],
        [1, 0, 1],
        [0, 1, 1],
        [1, 1, 1],
    ], dtype=np.uint8)

    codeword_length = 7
    message_length = 4

    @property
    def rate(self) -> float:
        """Code rate (4 information bits per 7 channel bits)."""
        return self.message_length / self.codeword_length

    def encode(self, bits) -> np.ndarray:
        """Encode; input length must be a multiple of 4."""
        arr = as_bit_array(bits)
        if arr.size % 4 != 0:
            raise ValueError("Hamming(7,4) input length must be a multiple of 4")
        msgs = arr.reshape(-1, 4)
        parity = (msgs @ self._P) % 2
        return np.hstack([msgs, parity]).astype(np.uint8).ravel()

    def decode(self, coded) -> np.ndarray:
        """Decode with single-error correction per codeword."""
        arr = as_bit_array(coded)
        if arr.size % 7 != 0:
            raise ValueError("Hamming(7,4) coded length must be a multiple of 7")
        words = arr.reshape(-1, 7).astype(np.uint8)
        data, parity = words[:, :4], words[:, 4:]
        syndrome = (data @ self._P + parity) % 2  # (n, 3)
        # Columns of H indexed by bit position: data bits map to rows of P,
        # parity bits map to identity columns.
        h_columns = np.vstack([self._P, np.eye(3, dtype=np.uint8)])  # (7, 3)
        corrected = words.copy()
        for i, s in enumerate(syndrome):
            if not s.any():
                continue
            matches = np.where((h_columns == s).all(axis=1))[0]
            if matches.size:
                corrected[i, matches[0]] ^= 1
        return corrected[:, :4].ravel()


def interleave(bits, depth: int) -> np.ndarray:
    """Block interleaver: write row-wise into ``depth`` rows, read column-wise.

    Spreads burst errors (e.g. a blocker transiting the beam) across
    codewords.  Length must be a multiple of ``depth``.
    """
    arr = as_bit_array(bits)
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if arr.size % depth != 0:
        raise ValueError("bit length must be a multiple of the depth")
    return arr.reshape(depth, -1).T.ravel().astype(np.uint8)


def deinterleave(bits, depth: int) -> np.ndarray:
    """Inverse of :func:`interleave` for the same depth."""
    arr = as_bit_array(bits)
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if arr.size % depth != 0:
        raise ValueError("bit length must be a multiple of the depth")
    return arr.reshape(-1, depth).T.ravel().astype(np.uint8)
