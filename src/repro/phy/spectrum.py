"""Spectral analysis: PSD, occupied bandwidth, emission-mask checks.

The FDM design (§7a) hands each node a channel "depending on the data
rate requirement"; whether neighbours actually coexist comes down to the
OTAM waveform's occupied bandwidth and out-of-channel leakage.  These
utilities measure both from sampled waveforms, so tests can verify that
(a) a node's emission fits the channel the allocator sized for it and
(b) the adjacent-channel rejection numbers used by the interference
model are consistent with the waveform's actual skirt.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..units import linear_to_db
from .waveform import Waveform

__all__ = [
    "power_spectral_density",
    "occupied_bandwidth_hz",
    "power_in_band_fraction",
    "adjacent_channel_leakage_db",
    "check_emission_mask",
]


def power_spectral_density(wave: Waveform,
                           nperseg: int | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Welch PSD of a complex baseband capture.

    Returns ``(freqs_hz, psd)`` sorted by frequency, two-sided (complex
    input), density-normalised so ``sum(psd) * df == mean power``.
    """
    if len(wave) < 8:
        raise ValueError("capture too short for a PSD estimate")
    if nperseg is None:
        nperseg = min(1024, len(wave))
    freqs, psd = sp_signal.welch(wave.samples, fs=wave.sample_rate_hz,
                                 nperseg=nperseg, return_onesided=False,
                                 detrend=False)
    order = np.argsort(freqs)
    return freqs[order], psd[order]


def occupied_bandwidth_hz(wave: Waveform, fraction: float = 0.99) -> float:
    """x%-power occupied bandwidth (the regulatory OBW definition).

    The narrowest symmetric-in-energy interval containing ``fraction``
    of the total power, found by trimming equal power off both spectrum
    tails.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    freqs, psd = power_spectral_density(wave)
    total = float(np.sum(psd))
    if total <= 0.0:
        return 0.0
    tail = (1.0 - fraction) / 2.0
    cumulative = np.cumsum(psd) / total
    low_idx = int(np.searchsorted(cumulative, tail))
    high_idx = int(np.searchsorted(cumulative, 1.0 - tail))
    high_idx = min(high_idx, freqs.size - 1)
    return float(freqs[high_idx] - freqs[low_idx])


def power_in_band_fraction(wave: Waveform, low_hz: float,
                           high_hz: float) -> float:
    """Fraction of total power inside ``[low_hz, high_hz]``."""
    if high_hz <= low_hz:
        raise ValueError("band edges out of order")
    freqs, psd = power_spectral_density(wave)
    total = float(np.sum(psd))
    if total <= 0.0:
        return 0.0
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    return float(np.sum(psd[mask]) / total)


def adjacent_channel_leakage_db(wave: Waveform,
                                channel_bandwidth_hz: float) -> float:
    """ACLR-style ratio: in-channel power over first-adjacent power [dB].

    Both bands are ``channel_bandwidth_hz`` wide and centred at 0 and at
    ±one channel spacing (the worse of the two neighbours is reported).
    """
    if channel_bandwidth_hz <= 0:
        raise ValueError("channel bandwidth must be positive")
    half = channel_bandwidth_hz / 2.0
    in_channel = power_in_band_fraction(wave, -half, half)
    upper = power_in_band_fraction(wave, channel_bandwidth_hz - half,
                                   channel_bandwidth_hz + half)
    lower = power_in_band_fraction(wave, -channel_bandwidth_hz - half,
                                   -channel_bandwidth_hz + half)
    worst_neighbour = max(upper, lower, 1e-15)
    if in_channel <= 0.0:
        return float("-inf")
    return float(linear_to_db(in_channel / worst_neighbour))


def check_emission_mask(wave: Waveform, mask: list[tuple[float, float]],
                        reference_bandwidth_hz: float = 1e5) -> bool:
    """Whether a capture meets a stepped emission mask.

    ``mask`` is ``[(offset_hz, max_rel_db), ...]``: beyond each offset
    from the carrier, the power in any reference bandwidth must sit at
    least ``-max_rel_db`` below the in-channel reference level.  This is
    the shape of FCC-style out-of-band emission rules.
    """
    if not mask:
        raise ValueError("empty mask")
    freqs, psd = power_spectral_density(wave)
    df = float(freqs[1] - freqs[0])
    bins_per_ref = max(int(round(reference_bandwidth_hz / df)), 1)

    def band_power(center: float) -> float:
        idx = int(np.argmin(np.abs(freqs - center)))
        lo = max(idx - bins_per_ref // 2, 0)
        hi = min(idx + bins_per_ref // 2 + 1, psd.size)
        return float(np.sum(psd[lo:hi]))

    reference = band_power(0.0)
    if reference <= 0.0:
        return False
    for offset, max_rel_db in sorted(mask):
        for sign in (+1.0, -1.0):
            level = band_power(sign * offset)
            rel_db = float(linear_to_db(max(level, 1e-30) / reference))
            if rel_db > -abs(max_rel_db):
                return False
    return True
