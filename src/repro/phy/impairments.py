"""Receiver/transmitter impairments: CFO, phase noise, quantisation.

The mmX node's VCO is free-running (no PLL — that is half the cost
saving), so the AP sees a carrier frequency offset of tens to hundreds
of kHz plus phase noise; the USRP's ADC quantises.  These models let the
sample-level pipeline be exercised under realistic hardware dirt, and
the tests pin down how much of each the joint ASK-FSK demodulator
tolerates — the robustness argument behind using such coarse
modulations in the first place.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng
from ..units import db_to_amplitude
from .waveform import Waveform

__all__ = [
    "apply_cfo",
    "apply_phase_noise",
    "quantize",
    "apply_iq_imbalance",
    "cfo_tolerance_hz",
]


def apply_cfo(wave: Waveform, offset_hz: float) -> Waveform:
    """Shift a waveform by a carrier frequency offset.

    A free-running HMC533 drifts with temperature and supply; 10 ppm at
    24 GHz is 240 kHz.  OTAM tolerates this because the FSK decision
    compares *two tone powers* whose frequencies drift together, and
    the ASK decision ignores frequency entirely.
    """
    t = wave.time_axis()
    shifted = wave.samples * np.exp(2j * np.pi * offset_hz * t)
    return Waveform(shifted, wave.sample_rate_hz)


def apply_phase_noise(wave: Waveform, linewidth_hz: float,
                      rng: np.random.Generator | None = None) -> Waveform:
    """Apply Wiener (random-walk) phase noise with a given 3 dB linewidth.

    The standard oscillator model: phase increments are Gaussian with
    variance ``2 pi * linewidth / fs`` per sample.
    """
    if linewidth_hz < 0:
        raise ValueError("linewidth cannot be negative")
    if linewidth_hz == 0:
        return Waveform(wave.samples.copy(), wave.sample_rate_hz)
    rng = ensure_rng(rng)
    sigma = np.sqrt(2.0 * np.pi * linewidth_hz / wave.sample_rate_hz)
    phase = np.cumsum(sigma * rng.standard_normal(len(wave)))
    return Waveform(wave.samples * np.exp(1j * phase), wave.sample_rate_hz)


def quantize(wave: Waveform, bits: int,
             full_scale: float | None = None) -> Waveform:
    """Quantise I and Q to a ``bits``-bit ADC.

    ``full_scale`` defaults to the waveform's peak magnitude (an ideal
    AGC); smaller values clip, larger values waste dynamic range — both
    faithful failure modes of a real capture.
    """
    if bits < 1:
        raise ValueError("need at least 1 bit")
    x = wave.samples
    if full_scale is None:
        peak = float(np.max(np.abs(x))) if x.size else 1.0
        full_scale = peak if peak > 0 else 1.0
    levels = 2 ** (bits - 1)
    step = full_scale / levels

    def q(component: np.ndarray) -> np.ndarray:
        clipped = np.clip(component, -full_scale, full_scale - step)
        return np.round(clipped / step) * step

    return Waveform(q(x.real) + 1j * q(x.imag), wave.sample_rate_hz)


def apply_iq_imbalance(wave: Waveform, gain_db: float = 0.5,
                       phase_deg: float = 2.0) -> Waveform:
    """Apply receiver I/Q gain and phase imbalance.

    The standard model: ``y = mu * x + nu * conj(x)`` with mu/nu derived
    from the gain/phase mismatch.  Creates an image tone — which for
    two-tone FSK lands on the *other* tone's frequency, so the tests
    check the demodulator survives typical (fractional-dB) imbalance.
    """
    g = float(db_to_amplitude(gain_db))
    phi = np.radians(phase_deg)
    mu = 0.5 * (1.0 + g * np.exp(1j * phi))
    nu = 0.5 * (1.0 - g * np.exp(1j * phi))
    return Waveform(mu * wave.samples + nu * np.conj(wave.samples),
                    wave.sample_rate_hz)


def cfo_tolerance_hz(bit_rate_bps: float, fsk_deviation_hz: float) -> float:
    """How much CFO the joint demodulator can absorb by design.

    The FSK discriminator compares powers at ±deviation; a CFO moves
    both tones equally, and the decision survives until the weaker
    tone's energy leaks across the midpoint — roughly half the tone
    separation minus half a bit-rate of spectral width.
    """
    if bit_rate_bps <= 0 or fsk_deviation_hz <= 0:
        raise ValueError("rates must be positive")
    return max(fsk_deviation_hz - bit_rate_bps / 2.0, 0.0)
