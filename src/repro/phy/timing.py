"""Symbol-timing recovery for the AP's baseband (a real-receiver gap).

The joint demodulator consumes per-bit sample blocks, which presumes the
capture starts exactly on a bit boundary.  A real USRP capture starts at
an arbitrary sample; this module estimates the bit-boundary offset so
the rest of the pipeline can stay block-aligned.

Two estimators are provided:

* :func:`estimate_timing_offset` — transition-energy search: OTAM's
  envelope (and tone) switches exactly at bit edges, so the sample
  offset whose block boundaries minimise intra-block variance is the
  bit phase.  Works blind, no preamble needed.
* :func:`align_to_bits` — convenience wrapper returning a trimmed,
  aligned waveform.
"""

from __future__ import annotations

import numpy as np

from .waveform import Waveform

__all__ = ["estimate_timing_offset", "align_to_bits", "timing_metric"]


def timing_metric(envelope: np.ndarray, samples_per_bit: int,
                  offset: int) -> float:
    """Alignment score for one candidate offset (higher is better).

    Score = negative mean within-block variance.  OTAM's envelope is
    constant within a bit and switches only at bit edges, so at the true
    offset every block is internally flat (score 0, minus noise) while
    any misaligned block straddling a level transition absorbs it as
    within-block variance and scores strictly lower.

    (An earlier version added the variance of per-block means as a
    "contrast" reward, but that term can *prefer* misalignment: a block
    averaging across a transition lands between the two level clusters
    and can spread the block means more than the smearing penalty costs.)
    """
    if samples_per_bit < 2:
        raise ValueError("need at least 2 samples per bit")
    if not 0 <= offset < samples_per_bit:
        raise ValueError("offset must lie within one bit period")
    usable = envelope[offset:]
    blocks = usable[: usable.size - usable.size % samples_per_bit]
    if blocks.size == 0:
        return float("-inf")
    shaped = blocks.reshape(-1, samples_per_bit)
    return -float(np.mean(shaped.var(axis=1)))


def estimate_timing_offset(wave: Waveform, samples_per_bit: int) -> int:
    """Blind bit-phase estimate: the offset with the best timing metric.

    Requires at least a few bits of signal with level transitions (any
    packet's preamble provides both).  For a constant-envelope capture
    (all-equal OTAM levels) every offset scores equally on amplitude —
    the tone discriminator is phase-insensitive to timing at the
    half-bit level anyway — so ties resolve to offset 0.
    """
    env = np.abs(np.asarray(wave.samples))
    scores = [timing_metric(env, samples_per_bit, k)
              for k in range(samples_per_bit)]
    best = int(np.argmax(scores))
    if scores[best] <= scores[0] + 1e-15:
        return 0
    return best


def align_to_bits(wave: Waveform, samples_per_bit: int,
                  offset: int | None = None) -> tuple[Waveform, int]:
    """Trim a capture so it starts on a bit boundary.

    Returns the aligned waveform (whole bits only) and the offset that
    was removed.  ``offset=None`` runs the blind estimator.
    """
    if offset is None:
        offset = estimate_timing_offset(wave, samples_per_bit)
    if not 0 <= offset < samples_per_bit:
        raise ValueError("offset must lie within one bit period")
    samples = wave.samples[offset:]
    usable = samples.size - samples.size % samples_per_bit
    return Waveform(samples[:usable], wave.sample_rate_hz), offset
