"""Physical-layer substrate: DSP, modulation math, coding and link budgets.

This subpackage contains everything below the mmX-specific logic: generic
signal processing (waveforms, filters, envelope detection, tone detection),
closed-form error-rate theory, channel coding, and noise/link-budget math.
The mmX core in :mod:`repro.core` composes these pieces.
"""

from .ber import (
    qfunc,
    qfunc_inv,
    ber_ook_coherent,
    ber_ook_noncoherent,
    ber_ask_coherent,
    ber_fsk_noncoherent,
    ber_bpsk,
    snr_db_for_target_ber,
)
from .bits import (
    bits_to_bytes,
    bytes_to_bits,
    bit_errors,
    bit_error_rate,
    random_bits,
    pack_uint,
    unpack_uint,
)
from .coding import (
    crc16_ccitt,
    RepetitionCode,
    HammingCode74,
    interleave,
    deinterleave,
)
from .envelope import envelope_detect, automatic_gain_control, threshold_levels
from .filters import (
    moving_average,
    fir_lowpass,
    apply_fir,
    decimate,
    exponential_smooth,
)
from .goertzel import goertzel_power, goertzel_block_powers
from .impairments import (
    apply_cfo,
    apply_phase_noise,
    apply_iq_imbalance,
    quantize,
    cfo_tolerance_hz,
)
from .preamble import (
    BARKER13,
    default_preamble_bits,
    correlate_preamble,
    locate_preamble,
)
from .snr import (
    thermal_noise_dbm,
    noise_figure_cascade_db,
    LinkBudget,
    estimate_snr_two_level,
    estimate_snr_from_evm,
)
from .spectrum import (
    adjacent_channel_leakage_db,
    check_emission_mask,
    occupied_bandwidth_hz,
    power_in_band_fraction,
    power_spectral_density,
)
from .timing import estimate_timing_offset, align_to_bits, timing_metric
from .waveform import (
    Waveform,
    carrier,
    ook_waveform,
    two_level_waveform,
    add_awgn,
    awgn_noise,
)

__all__ = [
    "BARKER13",
    "HammingCode74",
    "LinkBudget",
    "RepetitionCode",
    "Waveform",
    "add_awgn",
    "adjacent_channel_leakage_db",
    "align_to_bits",
    "apply_cfo",
    "apply_fir",
    "apply_iq_imbalance",
    "apply_phase_noise",
    "automatic_gain_control",
    "awgn_noise",
    "ber_ask_coherent",
    "ber_bpsk",
    "ber_fsk_noncoherent",
    "ber_ook_coherent",
    "ber_ook_noncoherent",
    "bit_error_rate",
    "bit_errors",
    "bits_to_bytes",
    "bytes_to_bits",
    "carrier",
    "cfo_tolerance_hz",
    "check_emission_mask",
    "correlate_preamble",
    "crc16_ccitt",
    "decimate",
    "default_preamble_bits",
    "deinterleave",
    "envelope_detect",
    "estimate_snr_from_evm",
    "estimate_snr_two_level",
    "estimate_timing_offset",
    "exponential_smooth",
    "fir_lowpass",
    "goertzel_block_powers",
    "goertzel_power",
    "interleave",
    "locate_preamble",
    "moving_average",
    "noise_figure_cascade_db",
    "occupied_bandwidth_hz",
    "ook_waveform",
    "pack_uint",
    "power_in_band_fraction",
    "power_spectral_density",
    "qfunc",
    "qfunc_inv",
    "quantize",
    "random_bits",
    "snr_db_for_target_ber",
    "thermal_noise_dbm",
    "threshold_levels",
    "timing_metric",
    "two_level_waveform",
    "unpack_uint",
]
