"""Physical-layer substrate: DSP, modulation math, coding and link budgets.

This subpackage contains everything below the mmX-specific logic: generic
signal processing (waveforms, filters, envelope detection, tone detection),
closed-form error-rate theory, channel coding, and noise/link-budget math.
The mmX core in :mod:`repro.core` composes these pieces.
"""

from .bits import (
    bits_to_bytes,
    bytes_to_bits,
    bit_errors,
    bit_error_rate,
    random_bits,
    pack_uint,
    unpack_uint,
)
from .ber import (
    qfunc,
    qfunc_inv,
    ber_ook_coherent,
    ber_ook_noncoherent,
    ber_ask_coherent,
    ber_fsk_noncoherent,
    ber_bpsk,
    snr_db_for_target_ber,
)
from .snr import (
    thermal_noise_dbm,
    noise_figure_cascade_db,
    LinkBudget,
    estimate_snr_two_level,
    estimate_snr_from_evm,
)
from .waveform import (
    Waveform,
    carrier,
    ook_waveform,
    two_level_waveform,
    add_awgn,
    awgn_noise,
)
from .filters import (
    moving_average,
    fir_lowpass,
    apply_fir,
    decimate,
    exponential_smooth,
)
from .envelope import envelope_detect, automatic_gain_control, threshold_levels
from .goertzel import goertzel_power, goertzel_block_powers
from .coding import (
    crc16_ccitt,
    RepetitionCode,
    HammingCode74,
    interleave,
    deinterleave,
)
from .impairments import (
    apply_cfo,
    apply_phase_noise,
    apply_iq_imbalance,
    quantize,
    cfo_tolerance_hz,
)
from .spectrum import (
    adjacent_channel_leakage_db,
    check_emission_mask,
    occupied_bandwidth_hz,
    power_in_band_fraction,
    power_spectral_density,
)
from .timing import estimate_timing_offset, align_to_bits, timing_metric
from .preamble import (
    BARKER13,
    default_preamble_bits,
    correlate_preamble,
    locate_preamble,
)

__all__ = [name for name in dir() if not name.startswith("_")]
