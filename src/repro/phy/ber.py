"""Closed-form bit-error-rate theory for the modulations mmX uses.

The paper (section 9.3) computes BER by substituting measured SNR into
"standard BER tables based on the ASK modulation" [Tang et al. 2005].  This
module provides those closed forms for on-off keying (OOK/ASK), binary FSK
and BPSK, plus the Gaussian Q function and its inverse so experiments can go
back and forth between SNR and BER.

Conventions
-----------
``snr_db`` is the ratio of *average* received signal power to noise power in
the signal bandwidth, in dB, matching how the paper's heatmaps report SNR.
For OOK with equiprobable bits the "on" level carries twice the average
power.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy import special

from ..units import FloatArray, db_to_linear, linear_to_db

__all__ = [
    "qfunc",
    "qfunc_inv",
    "ber_ook_coherent",
    "ber_ook_noncoherent",
    "ber_ask_coherent",
    "ber_ask_table",
    "ber_fsk_noncoherent",
    "ber_fsk_coherent",
    "ber_bpsk",
    "snr_db_for_target_ber",
]


def qfunc(x: npt.ArrayLike) -> FloatArray:
    """Gaussian tail probability Q(x) = P[N(0,1) > x]."""
    tail: FloatArray = special.erfc(
        np.asarray(x, dtype=np.float64) / np.sqrt(2.0))
    return 0.5 * tail


def qfunc_inv(p: npt.ArrayLike) -> FloatArray:
    """Inverse of :func:`qfunc`; valid for 0 < p < 1."""
    inv: FloatArray = special.erfcinv(2.0 * np.asarray(p, dtype=np.float64))
    return np.sqrt(2.0) * inv


def _snr_linear(snr_db: npt.ArrayLike) -> FloatArray:
    return db_to_linear(snr_db)


def ber_ook_coherent(snr_db: npt.ArrayLike) -> FloatArray:
    """BER of coherently detected on-off keying.

    With average SNR ``gamma`` the two levels are 0 and ``sqrt(2 gamma)``
    (in normalised noise units), the threshold sits midway, and
    ``BER = Q(sqrt(gamma / 2) * sqrt(2)) = Q(sqrt(gamma/2) ... )``.

    Using the standard result BER = Q( d / (2 sigma) ) with level distance
    d = sqrt(2*gamma)*sigma_unit this reduces to ``Q(sqrt(gamma / 2))``.
    """
    gamma = _snr_linear(snr_db)
    return qfunc(np.sqrt(gamma / 2.0))


def ber_ook_noncoherent(snr_db: npt.ArrayLike) -> FloatArray:
    """BER of envelope-detected (non-coherent) OOK.

    High-SNR approximation ``0.5 * exp(-gamma / 4)`` combined with the
    coherent bound so the curve stays sane at low SNR.  This matches the
    OOK analysis in Tang et al. [43] which the paper cites for its BER
    tables.
    """
    gamma = _snr_linear(snr_db)
    noncoh: FloatArray = 0.5 * np.exp(-gamma / 4.0)
    # Envelope detection can never beat coherent detection.
    floor: FloatArray = np.maximum(noncoh, ber_ook_coherent(snr_db))
    return floor


def ber_ask_coherent(levels_snr_db: npt.ArrayLike,
                     separation_fraction: float = 1.0) -> FloatArray:
    """BER for binary ASK where the two levels are set by the channel.

    mmX's OTAM produces ASK whose level distance is the *difference of the
    two beams' channel amplitudes*, not a designed constellation.  This
    helper takes the effective SNR of that level difference and applies the
    antipodal-distance Q-form.

    Parameters
    ----------
    levels_snr_db:
        SNR of the level *difference* power to noise power, in dB.
    separation_fraction:
        Optional derating (0..1] of the usable distance, e.g. for imperfect
        thresholding.
    """
    if not 0.0 < separation_fraction <= 1.0:
        raise ValueError("separation_fraction must be in (0, 1]")
    gamma = _snr_linear(levels_snr_db) * separation_fraction**2
    return qfunc(np.sqrt(gamma / 2.0))


def ber_ask_table(snr_db: npt.ArrayLike) -> FloatArray:
    """The 'standard BER table based on the ASK modulation' of §9.3.

    The paper substitutes measured SNR into the OOK curves of Tang et
    al. [43], whose convention works out to ``Q(sqrt(gamma))`` with
    ``gamma`` the reported (peak-referenced) SNR.  This reproduces the
    paper's own calibration claim that 15 dB SNR yields BER below 1e-8
    (section 9.4: Q(sqrt(31.6)) ~ 1e-8).  Use this for the Fig. 11
    methodology; use :func:`ber_ook_coherent` for textbook analysis.
    """
    gamma = _snr_linear(snr_db)
    return qfunc(np.sqrt(gamma))


def ber_fsk_noncoherent(snr_db: npt.ArrayLike) -> FloatArray:
    """BER of non-coherent binary FSK: ``0.5 * exp(-gamma / 2)``."""
    gamma = _snr_linear(snr_db)
    decay: FloatArray = np.exp(-gamma / 2.0)
    return 0.5 * decay


def ber_fsk_coherent(snr_db: npt.ArrayLike) -> FloatArray:
    """BER of coherent binary FSK: ``Q(sqrt(gamma))``."""
    gamma = _snr_linear(snr_db)
    return qfunc(np.sqrt(gamma))


def ber_bpsk(snr_db: npt.ArrayLike) -> FloatArray:
    """BER of coherent BPSK: ``Q(sqrt(2 gamma))`` — the usual reference."""
    gamma = _snr_linear(snr_db)
    return qfunc(np.sqrt(2.0 * gamma))


def snr_db_for_target_ber(target_ber: float, modulation: str = "ook") -> float:
    """Minimum SNR [dB] achieving ``target_ber`` for a given modulation.

    Supports 'ook' (coherent OOK), 'fsk' (non-coherent) and 'bpsk'.
    Uses the closed-form inverses, so it is exact for these curves.
    """
    if not 0.0 < target_ber < 0.5:
        raise ValueError("target BER must be in (0, 0.5)")
    if modulation == "ook":
        gamma = 2.0 * float(qfunc_inv(target_ber)) ** 2
    elif modulation == "fsk":
        gamma = -2.0 * float(np.log(2.0 * target_ber))
    elif modulation == "bpsk":
        gamma = float(qfunc_inv(target_ber)) ** 2 / 2.0
    else:
        raise ValueError(f"unknown modulation {modulation!r}")
    return float(linear_to_db(gamma))
