"""Envelope detection — the ASK half of the AP's joint demodulator."""

from __future__ import annotations

import numpy as np

from .filters import moving_average

__all__ = [
    "envelope_detect",
    "automatic_gain_control",
    "threshold_levels",
]


def envelope_detect(samples: np.ndarray, smooth_window: int = 1) -> np.ndarray:
    """Magnitude envelope of a complex baseband signal, optionally smoothed.

    The mmX AP sees a sine wave whose amplitude was modulated by the
    channel (OTAM); taking ``|x[n]|`` recovers exactly that amplitude
    track.  ``smooth_window`` applies a moving average, typically sized to
    a fraction of a bit period.
    """
    env = np.abs(np.asarray(samples))
    if smooth_window > 1:
        env = moving_average(env, smooth_window)
    return env


def automatic_gain_control(envelope: np.ndarray,
                           target_level: float = 1.0) -> np.ndarray:
    """Normalise an envelope so its RMS hits ``target_level``.

    Removes the absolute received power so the decision logic only deals
    with the *ratio* between the two OTAM levels, which is what carries
    the data.
    """
    envelope = np.asarray(envelope, dtype=float)
    rms = float(np.sqrt(np.mean(envelope**2))) if envelope.size else 0.0
    if rms <= 0.0:
        return envelope.copy()
    return envelope * (target_level / rms)


def threshold_levels(envelope: np.ndarray) -> tuple[float, float, float]:
    """Estimate the two ASK levels and decision threshold from an envelope.

    Runs a tiny 2-means (Lloyd) clustering on the envelope samples,
    initialised at the min/max, and returns ``(low, high, threshold)``
    with the threshold midway between the converged level means.  Works
    with no training when the two levels are separated; degenerates to
    equal levels (threshold at their value) otherwise — which is precisely
    the case where the FSK dimension must take over (section 6.3).
    """
    env = np.asarray(envelope, dtype=float)
    if env.size == 0:
        raise ValueError("empty envelope")
    low = float(env.min())
    high = float(env.max())
    if high - low <= 1e-15:
        return low, high, low
    for _ in range(25):
        threshold = 0.5 * (low + high)
        low_set = env[env <= threshold]
        high_set = env[env > threshold]
        if low_set.size == 0 or high_set.size == 0:
            break
        new_low = float(low_set.mean())
        new_high = float(high_set.mean())
        if abs(new_low - low) < 1e-12 and abs(new_high - high) < 1e-12:
            low, high = new_low, new_high
            break
        low, high = new_low, new_high
    return low, high, 0.5 * (low + high)
