"""Small FIR filtering toolbox used by the AP's baseband processor."""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "moving_average",
    "fir_lowpass",
    "apply_fir",
    "decimate",
    "exponential_smooth",
]


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge replication, length preserved.

    Used as the post-envelope smoother: a bit period's worth of averaging
    integrates out noise without smearing neighbouring symbols.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    x = np.asarray(x, dtype=float)
    if window == 1 or x.size == 0:
        return x.copy()
    window = min(window, x.size)
    kernel = np.ones(window) / window
    padded = np.concatenate([
        np.full(window // 2, x[0]),
        x,
        np.full(window - 1 - window // 2, x[-1]),
    ])
    return np.convolve(padded, kernel, mode="valid")


def fir_lowpass(cutoff_hz: float, sample_rate_hz: float,
                num_taps: int = 63) -> np.ndarray:
    """Hamming-windowed linear-phase FIR low-pass prototype."""
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ValueError("cutoff must be inside (0, Nyquist)")
    if num_taps < 3:
        raise ValueError("need at least 3 taps")
    return sp_signal.firwin(num_taps, cutoff_hz, fs=sample_rate_hz)


def apply_fir(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Zero-phase-ish FIR application: filter then compensate group delay."""
    x = np.asarray(x)
    taps = np.asarray(taps, dtype=float)
    if x.size == 0:
        return x.copy()
    delay = (taps.size - 1) // 2
    padded = np.concatenate([x, np.full(delay, x[-1], dtype=x.dtype)])
    y = sp_signal.lfilter(taps, [1.0], padded)
    return y[delay:]


def decimate(x: np.ndarray, factor: int) -> np.ndarray:
    """Anti-aliased decimation by an integer factor."""
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    x = np.asarray(x)
    if factor == 1:
        return x.copy()
    return sp_signal.decimate(x, factor, ftype="fir", zero_phase=True)


def exponential_smooth(x: np.ndarray, alpha: float) -> np.ndarray:
    """First-order IIR smoother ``y[n] = a*x[n] + (1-a)*y[n-1]``."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        return x.copy()
    return sp_signal.lfilter([alpha], [1.0, -(1.0 - alpha)], x,
                             zi=[(1.0 - alpha) * x[0]])[0]
