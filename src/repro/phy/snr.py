"""Noise, SNR estimation and link-budget math.

The mmX AP chain (section 8.2) is LNA -> microstrip filter -> sub-harmonic
mixer -> USRP baseband.  Its sensitivity is governed by the cascade noise
figure (Friis' formula) and the thermal floor in the occupied bandwidth;
:class:`LinkBudget` assembles those pieces into received SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..constants import THERMAL_NOISE_DBM_PER_HZ
from ..units import db_to_linear, linear_to_db

__all__ = [
    "thermal_noise_dbm",
    "noise_figure_cascade_db",
    "LinkBudget",
    "estimate_snr_two_level",
    "estimate_snr_from_evm",
]


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power [dBm] in ``bandwidth_hz`` plus a noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return (THERMAL_NOISE_DBM_PER_HZ + float(linear_to_db(bandwidth_hz))
            + noise_figure_db)


def noise_figure_cascade_db(stages: list[tuple[float, float]]) -> float:
    """Friis cascade noise figure for ``[(gain_db, nf_db), ...]`` stages.

    The first stage dominates when it has high gain — which is exactly why
    the paper places the HMC751 LNA first in the AP chain (section 8.2).
    """
    if not stages:
        raise ValueError("at least one stage required")
    total_f = 0.0
    cumulative_gain = 1.0
    for i, (gain_db, nf_db) in enumerate(stages):
        f = float(db_to_linear(nf_db))
        if i == 0:
            total_f = f
        else:
            total_f += (f - 1.0) / cumulative_gain
        cumulative_gain *= float(db_to_linear(gain_db))
    return float(linear_to_db(total_f))


@dataclass
class LinkBudget:
    """Received SNR from transmit power, gains, path loss and noise.

    Attributes mirror the standard link-budget identity::

        SNR = EIRP + Grx - PL - (kTB + NF)

    where ``EIRP = Ptx + Gtx`` is folded into ``tx_eirp_dbm`` because the
    mmX node's 10 dBm figure is already a radiated (EIRP-style) number
    (section 8.1).
    """

    tx_eirp_dbm: float
    rx_antenna_gain_dbi: float
    bandwidth_hz: float
    rx_noise_figure_db: float
    implementation_loss_db: float = 0.0

    def noise_floor_dbm(self) -> float:
        """Receiver noise power in the occupied bandwidth [dBm]."""
        return thermal_noise_dbm(self.bandwidth_hz, self.rx_noise_figure_db)

    def received_power_dbm(self, path_loss_db: float) -> float:
        """Signal power at the receiver input [dBm] for a given path loss."""
        return (self.tx_eirp_dbm + self.rx_antenna_gain_dbi - path_loss_db
                - self.implementation_loss_db)

    def snr_db(self, path_loss_db: float) -> float:
        """Received SNR [dB] for a given total path loss [dB]."""
        return self.received_power_dbm(path_loss_db) - self.noise_floor_dbm()

    def max_path_loss_db(self, required_snr_db: float) -> float:
        """Largest tolerable path loss [dB] that still meets an SNR target."""
        return (self.tx_eirp_dbm + self.rx_antenna_gain_dbi
                - self.implementation_loss_db - required_snr_db
                - self.noise_floor_dbm())


def estimate_snr_two_level(samples: npt.ArrayLike,
                           decisions: npt.ArrayLike) -> float:
    """Estimate SNR [dB] of a two-level (ASK) signal from decided symbols.

    Groups envelope ``samples`` by the hard ``decisions`` made on them and
    computes (level distance)^2 / (2 * within-level variance) — the decision
    SNR of the binary detector.  Returns ``-inf`` when a level is missing or
    the signal is degenerate.
    """
    envelope = np.asarray(samples, dtype=np.float64)
    hard = np.asarray(decisions)
    if envelope.shape != hard.shape:
        raise ValueError("samples and decisions must have the same shape")
    ones = envelope[hard == 1]
    zeros = envelope[hard == 0]
    if ones.size < 2 or zeros.size < 2:
        return float("-inf")
    distance = abs(float(ones.mean()) - float(zeros.mean()))
    noise_var = 0.5 * (float(ones.var()) + float(zeros.var()))
    if noise_var <= 0.0:
        return float("inf")
    return float(linear_to_db(distance**2 / (2.0 * noise_var)))


def estimate_snr_from_evm(reference: npt.ArrayLike,
                          received: npt.ArrayLike) -> float:
    """SNR [dB] from error-vector magnitude against a known reference."""
    ref = np.asarray(reference)
    rx = np.asarray(received)
    if ref.shape != rx.shape:
        raise ValueError("shape mismatch between reference and received")
    signal_power = float(np.mean(np.abs(ref) ** 2))
    error_power = float(np.mean(np.abs(rx - ref) ** 2))
    if error_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return float(linear_to_db(signal_power / error_power))
