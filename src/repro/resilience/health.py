"""Per-link health estimation and structured degradation accounting.

The node is feedback-free, so all health intelligence lives AP-side:
the demodulator's per-capture decision SNR (and optionally a BER
estimate) feeds an EWMA, a three-state classifier (healthy / degraded /
outage, with hysteresis so a single noisy capture cannot flap the
state), and at the end of a run a :class:`LinkHealthReport` with the
numbers an operator actually asks for — availability, MTTR, MTBF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EwmaEstimator",
    "HEALTHY",
    "DEGRADED",
    "DORMANT",
    "OUTAGE",
    "LinkHealthMonitor",
    "LinkHealthReport",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
OUTAGE = "outage"
DORMANT = "dormant"
"""Energy-gated sleep: the node is silent *on purpose* and will wake
once its store recharges.  Not a health-classifier output (the monitor
still sees silence); the supervisor reports it so outage accounting and
failover suspicion can tell sleep from death."""


class EwmaEstimator:
    """Exponentially-weighted moving average over a scalar stream."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: float | None = None

    @property
    def value(self) -> float | None:
        """Current estimate (None before the first sample)."""
        return self._value

    def update(self, sample: float) -> float:
        """Fold one sample in and return the new estimate.

        Non-finite samples (a dead capture reports -inf SNR) clamp the
        estimate hard to the sample — a dead link must not be hidden
        behind a slowly-decaying average.
        """
        if not np.isfinite(sample):
            self._value = float(sample)
            return self._value
        if self._value is None or not np.isfinite(self._value):
            self._value = float(sample)
        else:
            self._value = float(self.alpha * sample
                                + (1.0 - self.alpha) * self._value)
        return self._value

    def reset(self) -> None:
        """Forget all history (e.g. after a channel re-allocation)."""
        self._value = None


@dataclass(frozen=True)
class LinkHealthReport:
    """Availability accounting for one monitored link."""

    duration_s: float
    availability: float
    """Fraction of observed time not in outage."""

    degraded_fraction: float
    """Fraction of observed time in the degraded state."""

    outage_count: int
    """Number of distinct outage intervals."""

    mttr_s: float
    """Mean time to recovery: average outage interval length (0 if none)."""

    mtbf_s: float
    """Mean time between failures: average gap between outage starts
    (``inf`` with fewer than two outages)."""

    mean_snr_db: float
    """Mean EWMA SNR over the samples where it was finite."""

    min_snr_db: float
    """Worst EWMA SNR observed (-inf if the link ever died)."""

    def __post_init__(self):
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")
        if not 0.0 <= self.degraded_fraction <= 1.0:
            raise ValueError("degraded fraction must be in [0, 1]")


class LinkHealthMonitor:
    """EWMA-based SNR watcher with hysteretic state classification.

    State machine::

        healthy --(ewma < degraded_db)--> degraded
        degraded --(ewma < outage_db)---> outage
        degraded --(ewma > degraded_db + hysteresis)--> healthy
        outage  --(ewma > outage_db + hysteresis)----> degraded

    ``outage_db`` defaults to 10 dB — the same threshold
    :class:`repro.sim.timeline.LinkTrace` calls an outage — and the
    degraded band sits a margin above it, where frames still get
    through but only with FEC's help.
    """

    def __init__(self, outage_db: float = 10.0,
                 degraded_margin_db: float = 5.0,
                 hysteresis_db: float = 2.0,
                 alpha: float = 0.3):
        if degraded_margin_db <= 0 or hysteresis_db < 0:
            raise ValueError("margins must be positive")
        self.outage_db = outage_db
        self.degraded_db = outage_db + degraded_margin_db
        self.hysteresis_db = hysteresis_db
        self.ewma = EwmaEstimator(alpha)
        self.state = HEALTHY
        self._samples: list[tuple[float, float, str]] = []

    # --- observation -----------------------------------------------------

    def observe(self, time_s: float, snr_db: float) -> str:
        """Fold one SNR measurement in; returns the new state."""
        if self._samples and time_s < self._samples[-1][0]:
            raise ValueError("observations must arrive in time order")
        value = self.ewma.update(float(snr_db))
        if self.state == HEALTHY:
            if value < self.outage_db:
                self.state = OUTAGE
            elif value < self.degraded_db:
                self.state = DEGRADED
        elif self.state == DEGRADED:
            if value < self.outage_db:
                self.state = OUTAGE
            elif value > self.degraded_db + self.hysteresis_db:
                self.state = HEALTHY
        else:  # OUTAGE
            if value > self.outage_db + self.hysteresis_db:
                self.state = DEGRADED
        self._samples.append((float(time_s), value, self.state))
        return self.state

    def observe_demod(self, result, time_s: float | None = None) -> str:
        """Feed one :class:`repro.core.demodulator.DemodResult` in.

        This is the hook :class:`JointDemodulator` calls when a monitor
        is attached; ``time_s`` defaults to a per-capture counter so
        sample-level pipelines need not thread a clock through.
        """
        if time_s is None:
            time_s = float(len(self._samples))
        snr = result.snr_db
        if result.branch == "none" or not result.bits.size:
            snr = float("-inf")
        return self.observe(time_s, snr)

    def reset_estimate(self) -> None:
        """Forget the EWMA (after re-init / channel move), keep history."""
        self.ewma.reset()

    # --- reporting -------------------------------------------------------

    @property
    def num_samples(self) -> int:
        """How many observations have been folded in."""
        return len(self._samples)

    def outage_intervals(self) -> list[tuple[float, float]]:
        """(start_s, duration_s) of each contiguous outage episode.

        The final sample's state extends one median inter-sample gap,
        mirroring ``LinkTrace.outage_events``.
        """
        if not self._samples:
            return []
        times = [t for t, _, _ in self._samples]
        dt = (float(np.median(np.diff(times))) if len(times) > 1 else 0.0)
        intervals = []
        start = None
        for t, _, state in self._samples:
            if state == OUTAGE and start is None:
                start = t
            elif state != OUTAGE and start is not None:
                intervals.append((start, t - start))
                start = None
        if start is not None:
            intervals.append((start, times[-1] - start + dt))
        return intervals

    def report(self) -> LinkHealthReport:
        """Summarise everything observed so far."""
        if not self._samples:
            raise ValueError("no observations to report on")
        times = np.asarray([t for t, _, _ in self._samples])
        values = np.asarray([v for _, v, _ in self._samples])
        states = [s for _, _, s in self._samples]
        duration = (float(times[-1] - times[0]) if len(times) > 1
                    else 0.0)
        outage_frac = states.count(OUTAGE) / len(states)
        degraded_frac = states.count(DEGRADED) / len(states)
        intervals = self.outage_intervals()
        mttr = (float(np.mean([d for _, d in intervals]))
                if intervals else 0.0)
        if len(intervals) >= 2:
            starts = [s for s, _ in intervals]
            mtbf = float(np.mean(np.diff(starts)))
        else:
            mtbf = float("inf")
        finite = values[np.isfinite(values)]
        return LinkHealthReport(
            duration_s=duration,
            availability=1.0 - outage_frac,
            degraded_fraction=degraded_frac,
            outage_count=len(intervals),
            mttr_s=mttr,
            mtbf_s=mtbf,
            mean_snr_db=(float(np.mean(finite)) if finite.size
                         else float("-inf")),
            min_snr_db=float(np.min(values)) if values.size else 0.0,
        )
