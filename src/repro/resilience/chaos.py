"""Chaos runs: one fault schedule, two link-management policies.

:class:`ChaosSimulation` traces the clean analytic link once, then
replays a :class:`~repro.faults.FaultSchedule` against two policies in
lock-step:

* **static** — the seed repo's implicit policy: the conventional ASK
  decision branch, uncoded frames, the originally allocated channel,
  and a naive immediate-retry re-initialization loop.  Nothing adapts.
* **adaptive** — a :class:`~repro.resilience.supervisor.LinkSupervisor`
  with the full recovery ladder.

Both see bit-identical disturbances (one master seed drives the
injector and the supervisor's backoff jitter), so any delivery gap is
attributable to link management alone.  Delivery is accounted in
expectation — per-step frame survival probability — which keeps the
comparison deterministic and free of sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.throughput import CODING_MODES, frame_success_probability
from ..faults.injector import FaultInjector, FaultSchedule
from ..phy import ber as ber_theory
from ..telemetry import NullRecorder, TelemetryRecorder
from .health import LinkHealthMonitor, LinkHealthReport
from .supervisor import LinkSupervisor, RecoveryAction

__all__ = ["ChaosResult", "ChaosSimulation"]

HOME_CHANNEL = 0
"""FDM channel index the victim starts on (interferer scenarios target
this channel; a re-allocation moves the victim off it)."""


@dataclass(frozen=True)
class ChaosResult:
    """Lock-step adaptive-vs-static outcome of one chaos run."""

    times_s: np.ndarray
    adaptive_snr_db: np.ndarray
    """Effective decision SNR the adaptive policy operated at."""

    static_snr_db: np.ndarray
    """Decision SNR of the frozen static policy (ASK branch)."""

    adaptive_success: np.ndarray
    """Per-step frame survival probability, adaptive policy."""

    static_success: np.ndarray
    """Per-step frame survival probability, static policy."""

    clean_snr_db: float
    """Fault-free OTAM SNR at this placement (the recovery target)."""

    adaptive_report: LinkHealthReport
    static_report: LinkHealthReport
    actions: tuple[RecoveryAction, ...]
    schedule: FaultSchedule

    @property
    def adaptive_delivery_ratio(self) -> float:
        """Mean per-offered-frame survival under the adaptive policy."""
        return float(np.mean(self.adaptive_success))

    @property
    def static_delivery_ratio(self) -> float:
        """Mean per-offered-frame survival under the static policy."""
        return float(np.mean(self.static_success))

    @property
    def delivery_gain(self) -> float:
        """Adaptive minus static delivery ratio."""
        return self.adaptive_delivery_ratio - self.static_delivery_ratio

    def post_fault_snr_db(self, settle_s: float = 1.0) -> float:
        """Mean adaptive SNR after the last fault clears (+settling).

        ``nan`` when the schedule leaves no fault-free tail to measure.
        """
        start = self.schedule.last_fault_end_s() + settle_s
        tail = self.adaptive_snr_db[self.times_s >= start]
        if tail.size == 0:
            return float("nan")
        return float(np.mean(tail))

    def recovered(self, tolerance_db: float = 1.0,
                  settle_s: float = 1.0) -> bool:
        """Whether post-fault SNR returned to the clean baseline."""
        post = self.post_fault_snr_db(settle_s)
        return bool(np.isfinite(post)
                    and post >= self.clean_snr_db - tolerance_db)

    def delivery_during(self, start_s: float, end_s: float
                        ) -> tuple[float, float]:
        """(adaptive, static) mean delivery inside a window."""
        mask = (self.times_s >= start_s) & (self.times_s < end_s)
        if not np.any(mask):
            return (float("nan"), float("nan"))
        return (float(np.mean(self.adaptive_success[mask])),
                float(np.mean(self.static_success[mask])))


class _StaticPolicy:
    """The do-nothing baseline: frozen configuration, naive retries."""

    def __init__(self, payload_bytes: int):
        self.payload_bytes = payload_bytes
        self.initialized = True
        self._mode = CODING_MODES[0]

    def step(self, breakdown, *, node_down: bool,
             side_channel_up: bool) -> tuple[float, float]:
        """(decision snr, frame success) for one step."""
        if node_down:
            self.initialized = False
            return (float("-inf"), 0.0)
        if not self.initialized:
            # Immediate tight-loop retry every step until the side
            # channel answers; the handshake consumes the step.
            if side_channel_up:
                self.initialized = True
            return (float("-inf"), 0.0)
        snr = breakdown.ask_snr_db
        ber = float(ber_theory.ber_ask_table(snr))
        return (snr, frame_success_probability(ber, self.payload_bytes,
                                               self._mode))


class ChaosSimulation:
    """Replays one fault schedule against both link-management policies."""

    def __init__(self, link, injector: FaultInjector,
                 time_step_s: float = 0.1,
                 payload_bytes: int = 256,
                 supervisor_kwargs: dict | None = None,
                 telemetry: TelemetryRecorder | None = None):
        if time_step_s <= 0:
            raise ValueError("time step must be positive")
        self.link = link
        self.injector = injector
        self.time_step_s = time_step_s
        self.payload_bytes = payload_bytes
        self.supervisor_kwargs = supervisor_kwargs or {}
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Sink for the ``chaos.*`` step counters; also handed down to
        the adaptive :class:`LinkSupervisor` so its ``resilience.*``
        family lands in the same export.  The simulation drives the
        recorder's clock one ``time_step_s`` per step."""

    def run(self, duration_s: float,
            quiet_tail_s: float = 0.0) -> ChaosResult:
        """One deterministic chaos run.

        The injector's master seed spawns both the fault schedule and
        the supervisor's backoff-jitter stream, so the whole run —
        faults, recovery timing, every reported number — regenerates
        bit-identically.  ``quiet_tail_s`` reserves a fault-free window
        at the end so post-fault recovery is always measurable.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        from ..core.link import perturb_breakdown

        schedule = self.injector.schedule(duration_s, quiet_tail_s)
        ss = np.random.SeedSequence(self.injector.master_seed + 1)
        supervisor = LinkSupervisor(
            monitor=LinkHealthMonitor(),
            payload_bytes=self.payload_bytes,
            rng=np.random.default_rng(ss),
            telemetry=self.telemetry,
            **self.supervisor_kwargs)
        static = _StaticPolicy(self.payload_bytes)
        static_monitor = LinkHealthMonitor()

        clean = self.link.snr_breakdown()
        steps = int(round(duration_s / self.time_step_s))
        times = np.arange(steps) * self.time_step_s

        # The adaptive policy can leave the interfered channel; the
        # static one is stuck on it forever.  The spectrum move runs
        # through a real admission controller: the victim holds an FDM
        # plan, and rung 5 marks its channel interfered — the batched
        # re-admission pass then lands it on clean spectrum (the fresh
        # band guarantees an FDM move, so the schedule-visible outcome
        # — one successful move, then refusals — is unchanged).
        from ..admission.controller import AdmissionController

        admission = AdmissionController()
        victim_id = 0
        admission.admit(victim_id, rate_bps=1e6)
        adaptive_channel = [HOME_CHANNEL]

        def reallocate() -> bool:
            if adaptive_channel[0] != HOME_CHANNEL:
                return False
            plan = admission.decision_for(victim_id).plan
            assert plan is not None
            report = admission.mark_interference(plan.low_hz, plan.high_hz)
            if victim_id not in report.moved:
                return False
            adaptive_channel[0] = HOME_CHANNEL + 1
            return True

        adaptive_snr = np.empty(steps)
        static_snr = np.empty(steps)
        adaptive_success = np.empty(steps)
        static_success = np.empty(steps)
        tel = self.telemetry
        for i, t in enumerate(times):
            t = float(t)
            if tel.enabled:
                tel.clock.advance(self.time_step_s)
                tel.count("chaos.steps")
            d_adaptive = schedule.disturbance_at(t, adaptive_channel[0])
            d_static = schedule.disturbance_at(t, HOME_CHANNEL)
            b_adaptive = perturb_breakdown(clean, d_adaptive,
                                           self.link.config)
            b_static = perturb_breakdown(clean, d_static, self.link.config)
            decision = supervisor.step(
                t, b_adaptive,
                node_down=d_adaptive.node_down,
                side_channel_up=d_adaptive.side_channel_up,
                reallocate=reallocate)
            adaptive_snr[i] = decision.effective_snr_db
            adaptive_success[i] = decision.frame_success
            snr, p = static.step(b_static,
                                 node_down=d_static.node_down,
                                 side_channel_up=d_static.side_channel_up)
            static_monitor.observe(t, snr)
            static_snr[i] = snr
            static_success[i] = p
            if tel.enabled:
                tel.gauge("chaos.adaptive_success", float(decision.frame_success))
                tel.gauge("chaos.static_success", float(p))
        if tel.enabled:
            tel.count("chaos.runs")
            tel.event("chaos.run", duration_s=duration_s, steps=steps,
                      faults=len(schedule.events))
        return ChaosResult(
            times_s=times,
            adaptive_snr_db=adaptive_snr,
            static_snr_db=static_snr,
            adaptive_success=adaptive_success,
            static_success=static_success,
            clean_snr_db=float(max(clean.ask_snr_db, clean.fsk_snr_db)),
            adaptive_report=supervisor.monitor.report(),
            static_report=static_monitor.report(),
            actions=tuple(supervisor.actions),
            schedule=schedule,
        )
