"""Self-healing link management for a feedback-free air interface.

All intelligence is AP-side (the node stays dumb — that is mmX's whole
design): :class:`LinkHealthMonitor` EWMAs the demodulator's decision
SNR into a hysteretic healthy/degraded/outage state,
:class:`LinkSupervisor` applies an escalating recovery ladder (branch
fallback, coding/rate step-down, backed-off side-channel re-init, FDM
channel re-allocation), and :class:`ChaosSimulation` measures what that
buys — availability, MTTR, delivery ratio — against a frozen baseline
under identical fault schedules.
"""

from .chaos import ChaosResult, ChaosSimulation
from .health import (
    DEGRADED,
    DORMANT,
    HEALTHY,
    OUTAGE,
    EwmaEstimator,
    LinkHealthMonitor,
    LinkHealthReport,
)
from .supervisor import LinkSupervisor, RecoveryAction, SupervisorDecision

__all__ = [
    "ChaosResult",
    "ChaosSimulation",
    "DEGRADED",
    "DORMANT",
    "EwmaEstimator",
    "HEALTHY",
    "LinkHealthMonitor",
    "LinkHealthReport",
    "LinkSupervisor",
    "OUTAGE",
    "RecoveryAction",
    "SupervisorDecision",
]
