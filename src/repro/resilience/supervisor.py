"""Self-healing link management: detection, escalation, recovery.

The supervisor is the AP-side brain the paper never needed to describe
— mmX's air interface is feedback-free, but the *system* still owns a
WiFi/BLE side channel and the FDM allocator, which is exactly enough
actuation for an escalating recovery ladder:

1. **Branch fallback** — prefer whichever joint ASK-FSK branch is
   healthier right now (a stuck SPDT or an ambiguous-amplitude
   placement kills ASK; VCO drift kills FSK; rarely both).
2. **Coding step-down** — when degraded, re-frame with the FEC mode
   that maximises frame survival at the measured SNR
   (:mod:`repro.core.throughput`'s ladder).
3. **Rate step-down** — when even the best coding mode cannot clear
   the outage threshold, halve the bit rate (each halving buys 3 dB of
   per-bit energy at the cost of halved offered load).
4. **Side-channel re-initialization** — after a node power dropout the
   channel assignment is gone; re-init attempts run with jittered
   exponential backoff so a congested/lossy control channel is not
   hammered by a tight retry loop.
5. **Channel re-allocation** — a sustained noise-floor jump is an
   in-band interferer; ask the AP to move the node's FDM channel away
   from it.

Every action is logged as a :class:`RecoveryAction` so chaos runs can
audit exactly which rung fired when.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.throughput import CODING_MODES, CodingMode, \
    frame_success_probability
from ..phy import ber as ber_theory
from ..rng import ensure_rng
from ..telemetry import NullRecorder, TelemetryRecorder
from ..units import linear_to_db
from .health import DORMANT, HEALTHY, OUTAGE, LinkHealthMonitor

__all__ = [
    "RecoveryAction",
    "SupervisorDecision",
    "LinkSupervisor",
]


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery-ladder rung firing at one instant."""

    time_s: float
    policy: str
    """One of 'link-lost', 'reinit-attempt', 'reinit-backoff',
    'reinit-success', 'branch-fallback', 'coding-step-down',
    'coding-step-up', 'rate-step-down', 'rate-step-up',
    'channel-reallocation', 'dormant-hold', 'dormant-wake'."""

    detail: str = ""


@dataclass(frozen=True)
class SupervisorDecision:
    """What the supervised link does for one timestep."""

    time_s: float
    transmitting: bool
    branch: str
    mode: CodingMode
    rate_fraction: float
    raw_snr_db: float
    effective_snr_db: float
    state: str
    frame_success: float
    actions: tuple[RecoveryAction, ...]

    @property
    def goodput_fraction(self) -> float:
        """Delivered fraction of the full-rate offered load."""
        if not self.transmitting:
            return 0.0
        return self.frame_success * self.rate_fraction


def _branch_ber(branch: str, snr_db: float) -> float:
    """Channel BER for the branch actually decoding (paper's §9.3 curves)."""
    if branch == "fsk":
        return float(ber_theory.ber_fsk_noncoherent(snr_db))
    return float(ber_theory.ber_ask_table(snr_db))


class LinkSupervisor:
    """Watches one link's health and applies the recovery ladder."""

    MIN_RATE_FRACTION = 0.25

    def __init__(self, monitor: LinkHealthMonitor | None = None,
                 payload_bytes: int = 256,
                 modes: tuple[CodingMode, ...] = CODING_MODES,
                 reinit_backoff_s: float = 0.2,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.25,
                 max_backoff_s: float = 2.0,
                 noise_jump_db: float = 6.0,
                 recovery_hold_s: float = 1.0,
                 rng: np.random.Generator | None = None,
                 telemetry: TelemetryRecorder | None = None):
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        if not modes:
            raise ValueError("need at least one coding mode")
        if reinit_backoff_s <= 0 or max_backoff_s < reinit_backoff_s:
            raise ValueError("invalid backoff window")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if noise_jump_db <= 0:
            raise ValueError("noise jump threshold must be positive")
        self.monitor = monitor or LinkHealthMonitor()
        self.payload_bytes = payload_bytes
        self.modes = modes
        self.reinit_backoff_s = reinit_backoff_s
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.max_backoff_s = max_backoff_s
        self.noise_jump_db = noise_jump_db
        self.recovery_hold_s = recovery_hold_s
        self.rng = ensure_rng(rng)
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Sink for the ``resilience.*`` metric family: one counter per
        ladder rung firing, plus cross-step recovery-latency spans
        (``resilience.outage`` from leaving HEALTHY back to HEALTHY,
        ``resilience.reinit`` from link-lost to reinit-success).  The
        driver that calls :meth:`step` owns the recorder's clock."""

        # Mutable link-management state.
        self.initialized = True
        self.actions: list[RecoveryAction] = []
        self.channel_moves = 0
        self._next_reinit_s = 0.0
        self._failed_attempts = 0
        self._mode_index = 0
        self._rate_fraction = 1.0
        self._branch = "ask"
        self._nominal_noise_dbm: float | None = None
        self._healthy_since: float | None = None
        self._outage_span = None
        self._reinit_span = None
        self._dormant = False

    # --- helpers ---------------------------------------------------------

    def _log(self, time_s: float, policy: str, detail: str = ""
             ) -> RecoveryAction:
        action = RecoveryAction(time_s=time_s, policy=policy, detail=detail)
        self.actions.append(action)
        tel = self.telemetry
        if tel.enabled:
            tel.count("resilience.actions")
            tel.count(f"resilience.action.{policy}")
            tel.event("resilience.action", policy=policy, detail=detail,
                      time_s=time_s)
        return action

    def _track_state(self, state: str) -> None:
        """Open/close the recovery-latency span as health transitions.

        The span starts the first step the link leaves HEALTHY and
        closes when it returns — its sim-time duration is exactly the
        recovery latency the observability docs promise per ladder
        escalation.
        """
        tel = self.telemetry
        if not tel.enabled:
            return
        if state != HEALTHY and self._outage_span is None:
            self._outage_span = tel.begin("resilience.outage",
                                          from_state=state)
        elif state == HEALTHY and self._outage_span is not None:
            tel.end(self._outage_span)
            self._outage_span = None

    def _backoff_delay(self) -> float:
        """Jittered exponential backoff for the next re-init attempt."""
        base = min(self.reinit_backoff_s
                   * self.backoff_factor ** max(self._failed_attempts - 1, 0),
                   self.max_backoff_s)
        jitter = 1.0 + self.backoff_jitter * float(self.rng.uniform(-1, 1))
        return base * jitter

    def _silent_decision(self, time_s: float, state: str,
                         actions: list[RecoveryAction]) -> SupervisorDecision:
        return SupervisorDecision(
            time_s=time_s, transmitting=False, branch=self._branch,
            mode=self.modes[self._mode_index],
            rate_fraction=self._rate_fraction,
            raw_snr_db=float("-inf"), effective_snr_db=float("-inf"),
            state=state, frame_success=0.0, actions=tuple(actions))

    # --- the per-timestep control loop -----------------------------------

    def step(self, time_s: float, breakdown, *,
             node_down: bool = False,
             side_channel_up: bool = True,
             dormant: bool = False,
             reallocate=None) -> SupervisorDecision:
        """Observe one instant's link state and act on it.

        ``breakdown`` is the (possibly perturbed)
        :class:`repro.core.link.SnrBreakdown` the AP measures this step;
        ``reallocate`` is an optional zero-argument callable that asks
        the AP to move this node's channel, returning True on success.

        ``dormant`` marks *energy-gated sleep* (the battery state
        machine is recharging): the node is silent but alive, so the
        ladder **holds** — no link-lost, no re-init storm, no rate
        step-down; initialization and the health estimate survive the
        nap and transmission resumes the step after wake-up.  A real
        power dropout (``node_down``) still wins: a browned-out node
        genuinely lost its assignment.
        """
        actions: list[RecoveryAction] = []

        if dormant and not node_down:
            if not self._dormant:
                self._dormant = True
                actions.append(self._log(
                    time_s, "dormant-hold",
                    "energy-gated sleep; holding link state"))
            return self._silent_decision(time_s, DORMANT, actions)
        if self._dormant:
            self._dormant = False
            actions.append(self._log(time_s, "dormant-wake",
                                     "store recharged; resuming"))

        # Rung 4a: power dropout — the assignment is gone; arm an
        # immediate first re-init attempt for when power returns.
        if node_down:
            if self.initialized:
                self.initialized = False
                self._failed_attempts = 0
                self._next_reinit_s = time_s
                actions.append(self._log(time_s, "link-lost",
                                         "node power dropout"))
                if self.telemetry.enabled and self._reinit_span is None:
                    self._reinit_span = self.telemetry.begin(
                        "resilience.reinit")
            self.monitor.observe(time_s, float("-inf"))
            self._track_state(OUTAGE)
            return self._silent_decision(time_s, OUTAGE, actions)

        # Rung 4b: re-initialization over the side channel with
        # jittered exponential backoff between failed attempts.
        if not self.initialized:
            if time_s >= self._next_reinit_s:
                actions.append(self._log(time_s, "reinit-attempt",
                                         f"attempt {self._failed_attempts + 1}"))
                if side_channel_up:
                    self.initialized = True
                    self._failed_attempts = 0
                    self.monitor.reset_estimate()
                    actions.append(self._log(time_s, "reinit-success"))
                    if self._reinit_span is not None:
                        self.telemetry.end(self._reinit_span)
                        self._reinit_span = None
                else:
                    self._failed_attempts += 1
                    delay = self._backoff_delay()
                    self._next_reinit_s = time_s + delay
                    actions.append(self._log(
                        time_s, "reinit-backoff",
                        f"retry in {delay * 1e3:.0f} ms"))
            # The re-init handshake (successful or not) consumes the
            # step; transmission resumes next step.
            self.monitor.observe(time_s, float("-inf"))
            self._track_state(OUTAGE)
            return self._silent_decision(time_s, OUTAGE, actions)

        # Rung 5: a sustained noise-floor jump means an in-band
        # interferer landed on our channel — move away from it.
        if self._nominal_noise_dbm is None:
            self._nominal_noise_dbm = breakdown.noise_dbm
        elif (breakdown.noise_dbm
                > self._nominal_noise_dbm + self.noise_jump_db
                and reallocate is not None):
            if reallocate():
                self.channel_moves += 1
                self.monitor.reset_estimate()
                actions.append(self._log(
                    time_s, "channel-reallocation",
                    f"noise floor +{breakdown.noise_dbm - self._nominal_noise_dbm:.1f} dB"))
                # Re-baseline on the next measurement (taken on the new
                # channel) so one interferer triggers one move, not a
                # move every step it stays active.
                self._nominal_noise_dbm = None

        raw_snr = max(breakdown.ask_snr_db, breakdown.fsk_snr_db)
        state = self.monitor.observe(time_s, raw_snr)
        self._track_state(state)

        # Rung 3: when the link sits in outage, trade rate for SNR —
        # each halving of the bit rate doubles per-bit energy (+3 dB).
        if state == OUTAGE and np.isfinite(raw_snr) \
                and self._rate_fraction > self.MIN_RATE_FRACTION:
            self._rate_fraction /= 2.0
            actions.append(self._log(time_s, "rate-step-down",
                                     f"rate x{self._rate_fraction:g}"))
        elif state == HEALTHY:
            if self._healthy_since is None:
                self._healthy_since = time_s
            elif time_s - self._healthy_since >= self.recovery_hold_s:
                if self._rate_fraction < 1.0:
                    self._rate_fraction = min(self._rate_fraction * 2.0, 1.0)
                    actions.append(self._log(
                        time_s, "rate-step-up",
                        f"rate x{self._rate_fraction:g}"))
                elif self._mode_index != 0:
                    actions.append(self._log(
                        time_s, "coding-step-up",
                        f"{self.modes[self._mode_index].name} -> "
                        f"{self.modes[0].name}"))
                    self._mode_index = 0
                self._healthy_since = time_s
        if state != HEALTHY:
            self._healthy_since = None

        rate_bonus_db = float(linear_to_db(1.0 / self._rate_fraction))
        branch_snrs = {"ask": breakdown.ask_snr_db + rate_bonus_db,
                       "fsk": breakdown.fsk_snr_db + rate_bonus_db}

        # Rungs 1+2: pick the (branch, coding mode) pair that maximises
        # frame survival.  Outside the healthy state the whole mode
        # ladder is searched (coding step-down); while healthy only the
        # current mode is kept, so a clean link stays on its cheap
        # configuration.
        if state != HEALTHY:
            candidates = [(b, index)
                          for b in ("ask", "fsk")
                          for index in range(len(self.modes))]
        else:
            candidates = [("ask", self._mode_index),
                          ("fsk", self._mode_index)]
        branch, best_index, p_frame = self._branch, self._mode_index, -1.0
        for cand_branch, cand_index in candidates:
            p = frame_success_probability(
                _branch_ber(cand_branch, branch_snrs[cand_branch]),
                self.payload_bytes, self.modes[cand_index])
            if p > p_frame + 1e-12:
                branch, best_index, p_frame = cand_branch, cand_index, p
        if branch != self._branch:
            actions.append(self._log(time_s, "branch-fallback",
                                     f"{self._branch} -> {branch}"))
            self._branch = branch
        if best_index != self._mode_index:
            verb = ("coding-step-down" if best_index > self._mode_index
                    else "coding-step-up")
            actions.append(self._log(
                time_s, verb,
                f"{self.modes[self._mode_index].name} -> "
                f"{self.modes[best_index].name}"))
            self._mode_index = best_index

        mode = self.modes[self._mode_index]
        effective_snr = branch_snrs[branch]
        return SupervisorDecision(
            time_s=time_s, transmitting=True, branch=branch, mode=mode,
            rate_fraction=self._rate_fraction, raw_snr_db=float(raw_snr),
            effective_snr_db=float(effective_snr), state=state,
            frame_success=float(max(p_frame, 0.0)), actions=tuple(actions))
