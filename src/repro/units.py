"""Unit conversions used across the mmX stack.

All RF engineering here is done in two currencies: linear power ratios and
decibels.  These helpers are deliberately tiny and vectorised so every other
module can share one, well-tested implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_db_ratio",
    "amplitude_to_db",
    "db_to_amplitude",
    "wavelength",
]


def db_to_linear(db):
    """Convert a power ratio in dB to a linear ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def linear_to_db(ratio):
    """Convert a linear power ratio to dB.

    Ratios of exactly zero map to ``-inf`` without warnings, which lets
    callers express "no signal at all" naturally.
    """
    ratio = np.asarray(ratio, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(ratio)


def dbm_to_watts(dbm):
    """Convert power in dBm to watts."""
    return np.power(10.0, (np.asarray(dbm, dtype=float) - 30.0) / 10.0)


def watts_to_dbm(watts):
    """Convert power in watts to dBm."""
    watts = np.asarray(watts, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(watts) + 30.0


def dbm_to_db_ratio(dbm_a, dbm_b):
    """Power ratio ``a / b`` in dB for two absolute powers in dBm."""
    return np.asarray(dbm_a, dtype=float) - np.asarray(dbm_b, dtype=float)


def amplitude_to_db(amplitude):
    """Convert a voltage/field amplitude ratio to dB (20 log10)."""
    amplitude = np.asarray(amplitude, dtype=float)
    with np.errstate(divide="ignore"):
        return 20.0 * np.log10(np.abs(amplitude))


def db_to_amplitude(db):
    """Convert dB to a voltage/field amplitude ratio (inverse 20 log10)."""
    return np.power(10.0, np.asarray(db, dtype=float) / 20.0)


def wavelength(frequency_hz):
    """Free-space wavelength [m] for a carrier frequency [Hz]."""
    from .constants import SPEED_OF_LIGHT

    return SPEED_OF_LIGHT / np.asarray(frequency_hz, dtype=float)
