"""Unit conversions used across the mmX stack.

All RF engineering here is done in two currencies: linear power ratios and
decibels.  These helpers are deliberately tiny and vectorised so every other
module can share one, well-tested implementation.

This module is the repo's **single conversion authority**: reprolint's
``UNITS002`` rule forbids hand-rolled ``10 ** (x / 10)`` / ``log10``
conversions anywhere else, so every dB<->linear crossing in the codebase
goes through (and is tested through) these functions.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "FloatArray",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "dbm_to_db_ratio",
    "amplitude_to_db",
    "db_to_amplitude",
    "wavelength",
]

FloatArray = npt.NDArray[np.float64]
"""The float64 array type every converter returns."""


def _as_float_array(values: npt.ArrayLike) -> FloatArray:
    return np.asarray(values, dtype=np.float64)


def db_to_linear(db: npt.ArrayLike) -> FloatArray:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (_as_float_array(db) / 10.0)


def linear_to_db(ratio: npt.ArrayLike) -> FloatArray:
    """Convert a linear power ratio to dB.

    Ratios of exactly zero map to ``-inf`` without warnings, which lets
    callers express "no signal at all" naturally.
    """
    with np.errstate(divide="ignore"):
        log_ratio: FloatArray = np.log10(_as_float_array(ratio))
    return 10.0 * log_ratio


def dbm_to_watts(dbm: npt.ArrayLike) -> FloatArray:
    """Convert power in dBm to watts."""
    return 10.0 ** ((_as_float_array(dbm) - 30.0) / 10.0)


def watts_to_dbm(watts: npt.ArrayLike) -> FloatArray:
    """Convert power in watts to dBm."""
    with np.errstate(divide="ignore"):
        log_watts: FloatArray = np.log10(_as_float_array(watts))
    return 10.0 * log_watts + 30.0


def dbm_to_milliwatts(dbm: npt.ArrayLike) -> FloatArray:
    """Convert power in dBm to milliwatts (the natural linear dBm unit).

    Most of the stack carries absolute powers in dBm and sums them in
    "linear dBm-referenced" units — i.e. milliwatts — before converting
    back; this pair makes that round trip explicit.
    """
    return 10.0 ** (_as_float_array(dbm) / 10.0)


def milliwatts_to_dbm(milliwatts: npt.ArrayLike) -> FloatArray:
    """Convert power in milliwatts to dBm (``-inf`` for zero power)."""
    with np.errstate(divide="ignore"):
        log_mw: FloatArray = np.log10(_as_float_array(milliwatts))
    return 10.0 * log_mw


def dbm_to_db_ratio(dbm_a: npt.ArrayLike, dbm_b: npt.ArrayLike) -> FloatArray:
    """Power ratio ``a / b`` in dB for two absolute powers in dBm."""
    return _as_float_array(dbm_a) - _as_float_array(dbm_b)


def amplitude_to_db(amplitude: npt.ArrayLike) -> FloatArray:
    """Convert a voltage/field amplitude ratio to dB (20 log10)."""
    with np.errstate(divide="ignore"):
        log_amp: FloatArray = np.log10(np.abs(_as_float_array(amplitude)))
    return 20.0 * log_amp


def db_to_amplitude(db: npt.ArrayLike) -> FloatArray:
    """Convert dB to a voltage/field amplitude ratio (inverse 20 log10)."""
    return 10.0 ** (_as_float_array(db) / 20.0)


def wavelength(frequency_hz: npt.ArrayLike) -> FloatArray:
    """Free-space wavelength [m] for a carrier frequency [Hz]."""
    from .constants import SPEED_OF_LIGHT

    return SPEED_OF_LIGHT / _as_float_array(frequency_hz)
