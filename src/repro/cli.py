"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce [names...]``   regenerate paper tables/figures (all by default)
``link``                   analytic link report for one placement
``network --nodes N``      one multi-node snapshot
``characterize``           channel statistics for the default lab
``chaos --scenario NAME``  fault-injection run: recovery ladder vs static
``chaos --ap-crash``       multi-AP failover vs a frozen single AP
``chaos ... --json``       same run, but emit the telemetry export (JSONL)
``chaos all --jobs N``     the scenario sweep across N worker processes
``admission saturate``     offered-load saturation study: blocking
                           probability vs load through the admission
                           ladder (``--nodes``, ``--load``, ``--jobs``,
                           ``--out``/``--resume``, ``--json``)
``energy compare``         Table-1-style node-class comparison: the
                           active node vs backscatter tags vs
                           harvesting duty-cycled nodes (a
                           repro.engine campaign; ``--replicates``,
                           ``--jobs``, ``--out``/``--resume``,
                           ``--json``)
``energy outage``          energy-outage survival drill: a
                           duty-cycled fleet rides a harvesting
                           blackout; dormant nodes must not trip
                           cluster failover (same campaign flags)
``campaign EXPERIMENT``    run a sweep as a sharded, resumable campaign
                           (``--jobs``, ``--shards``, ``--out``,
                           ``--resume``; supervision via
                           ``--max-retries``, ``--shard-timeout``,
                           ``--on-failure fail|quarantine|degrade``)
``telemetry summarize F``  per-subsystem tables from a JSONL export
``telemetry flame F``      collapsed flamegraph stacks from a JSONL export
``fsck PATHS...``          scan campaign journals / AP checkpoints /
                           telemetry exports for corruption; ``--repair``
                           salvages the valid records and quarantines
                           the damaged ones; nonzero exit on damage
``lint [paths...]``        run the reprolint static analyser (repo
                           checkouts; ``--json`` / ``--sarif`` /
                           ``--changed-only``; exit codes match fsck)
``list``                   available experiment names
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="mmX (SIGCOMM 2019) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("reproduce",
                         help="regenerate paper tables and figures")
    rep.add_argument("names", nargs="*",
                     help="experiment names (default: all)")

    link = sub.add_parser("link", help="analytic link report")
    link.add_argument("--distance", type=float, default=3.0,
                      help="node-AP distance [m]")
    link.add_argument("--offset-deg", type=float, default=0.0,
                      help="node orientation offset from the AP [deg]")
    link.add_argument("--blocked", action="store_true",
                      help="put a person in the line of sight")

    net = sub.add_parser("network", help="multi-node snapshot")
    net.add_argument("--nodes", type=int, default=10)
    net.add_argument("--seed", type=int, default=0)

    sub.add_parser("characterize", help="channel statistics")

    chaos = sub.add_parser(
        "chaos", help="run a named fault-injection scenario")
    chaos.add_argument("--scenario", default="kitchen-sink",
                       help="fault scenario name, or 'all' for the sweep")
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed (faults + recovery jitter)")
    chaos.add_argument("--duration", type=float, default=30.0,
                       help="simulated seconds")
    chaos.add_argument("--ap-crash", action="store_true",
                       help="run the multi-AP failover comparison "
                            "(cluster vs frozen single AP) instead of "
                            "a link-fault scenario")
    chaos.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the run's telemetry export as JSONL "
                            "on stdout instead of the text report")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the '--scenario all' "
                            "sweep (routed through repro.engine; other "
                            "runs are single scenarios and stay serial)")

    adm = sub.add_parser(
        "admission",
        help="spectrum/SDM admission-control studies")
    adm_sub = adm.add_subparsers(dest="admission_command", required=True)
    sat = adm_sub.add_parser(
        "saturate",
        help="blocking probability vs offered load through the "
             "admission ladder (a repro.engine campaign)")
    sat.add_argument("--nodes", type=int, default=600,
                     help="Poisson arrivals simulated per trial")
    sat.add_argument("--load", type=float, action="append", default=None,
                     metavar="L",
                     help="offered-load point (repeatable; default: "
                          "the stock sweep)")
    sat.add_argument("--replicates", type=int, default=4,
                     help="independent trials per load point")
    sat.add_argument("--seed", type=int, default=0,
                     help="campaign master seed")
    sat.add_argument("--jobs", type=int, default=1,
                     help="worker processes (1 = in-process serial; "
                          ">1 runs supervised)")
    sat.add_argument("--shards", type=int, default=None,
                     help="shard count (default: --jobs); results "
                          "never depend on it")
    sat.add_argument("--out", default=None,
                     help="JSONL result-store path: completed shards "
                          "are journaled here, crash-safely")
    sat.add_argument("--resume", action="store_true",
                     help="allow --out to already exist and resume "
                          "the campaign it holds")
    sat.add_argument("--json", action="store_true", dest="as_json",
                     help="emit the saturation curve as JSON rows")

    energy = sub.add_parser(
        "energy",
        help="node-class and energy-constrained-operation studies")
    energy_sub = energy.add_subparsers(dest="energy_command",
                                       required=True)
    comp = energy_sub.add_parser(
        "compare",
        help="Table-1-style node-class comparison: active vs "
             "backscatter vs harvesting (a repro.engine campaign)")
    comp.add_argument("--bits", type=int, default=400,
                      help="payload bits measured per link trial")
    surv = energy_sub.add_parser(
        "outage",
        help="energy-outage survival drill: a duty-cycled fleet "
             "rides a harvesting blackout without tripping cluster "
             "failover (a repro.engine campaign)")
    surv.add_argument("--nodes", type=int, default=6,
                      help="duty-cycled nodes per fleet trial")
    for preset in (comp, surv):
        preset.add_argument("--replicates", type=int, default=4,
                            help="independent trials per node class "
                                 "(compare) or fleets (outage)")
        preset.add_argument("--seed", type=int, default=0,
                            help="campaign master seed")
        preset.add_argument("--jobs", type=int, default=1,
                            help="worker processes (1 = in-process "
                                 "serial; >1 runs supervised)")
        preset.add_argument("--shards", type=int, default=None,
                            help="shard count (default: --jobs); "
                                 "results never depend on it")
        preset.add_argument("--out", default=None,
                            help="JSONL result-store path: completed "
                                 "shards are journaled here, "
                                 "crash-safely")
        preset.add_argument("--resume", action="store_true",
                            help="allow --out to already exist and "
                                 "resume the campaign it holds")
        preset.add_argument("--json", action="store_true",
                            dest="as_json",
                            help="emit the aggregate as JSON instead "
                                 "of the text table")

    camp = sub.add_parser(
        "campaign",
        help="run a figure sweep as a sharded, resumable campaign")
    camp.add_argument("experiment",
                      choices=["fig10", "fig11", "fig13", "chaos"],
                      help="which sweep to run")
    camp.add_argument("--trials", type=int, default=None,
                      help="trial count (fig11: placements, fig13: "
                           "trials per node count; fig10's count is "
                           "its grid, chaos runs every scenario)")
    camp.add_argument("--seed", type=int, default=0,
                      help="campaign master seed")
    camp.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process serial)")
    camp.add_argument("--shards", type=int, default=None,
                      help="shard count (default: --jobs); results "
                           "never depend on it")
    camp.add_argument("--out", default=None,
                      help="JSONL result-store path: completed shards "
                           "are journaled here, crash-safely")
    camp.add_argument("--resume", action="store_true",
                      help="allow --out to already exist and resume "
                           "the campaign it holds")
    camp.add_argument("--duration", type=float, default=30.0,
                      help="simulated seconds per scenario "
                           "(chaos campaigns only)")
    camp.add_argument("--max-retries", type=int, default=None,
                      help="supervise the campaign: retry each failed "
                           "shard up to N times (deterministic "
                           "exponential backoff) before quarantining")
    camp.add_argument("--shard-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="supervise the campaign: absolute per-shard "
                           "attempt deadline; hung workers are timed "
                           "out and retried")
    camp.add_argument("--on-failure", default=None,
                      choices=["fail", "quarantine", "degrade"],
                      help="supervised shard that exhausts its retries: "
                           "kill the campaign (fail), complete without "
                           "it (quarantine), or re-run it in-process "
                           "as a last resort (degrade)")

    tele = sub.add_parser(
        "telemetry", help="inspect sim-time telemetry JSONL exports")
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)
    summ = tele_sub.add_parser(
        "summarize", help="render per-subsystem metric/span tables")
    summ.add_argument("path", help="telemetry JSONL export file")
    flame = tele_sub.add_parser(
        "flame", help="emit collapsed flamegraph stacks (sim-time µs)")
    flame.add_argument("path", help="telemetry JSONL export file")

    fsck = sub.add_parser(
        "fsck",
        help="verify (and repair) durable artifacts: campaign "
             "journals, AP checkpoints, telemetry exports")
    fsck.add_argument("paths", nargs="+",
                      help="artifact files to check")
    fsck.add_argument("--repair", action="store_true",
                      help="salvage valid records in place: damaged "
                           "lines move to a .quarantine sidecar and "
                           "the artifact is rewritten atomically")
    fsck.add_argument("--json", action="store_true", dest="as_json",
                      help="emit one JSON report object per path")

    lint = sub.add_parser(
        "lint", help="run the reprolint static analyser over the repo")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: src/)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit findings as JSON")
    lint.add_argument("--sarif", action="store_true", dest="as_sarif",
                      help="emit findings as SARIF 2.1.0")
    lint.add_argument("--changed-only", action="store_true",
                      help="report findings only for files changed vs "
                           "git HEAD")

    sub.add_parser("list", help="list experiment names")
    return parser


def _cmd_reproduce(names: list[str]) -> int:
    from .experiments import (ablations, chaos, extensions, fig06_tma,
                              fig07_vco, fig08_patterns, fig09_waveforms,
                              fig10_snr_map, fig11_ber_cdf, fig12_range,
                              fig13_multinode, table1)

    registry = {
        "fig06": lambda: fig06_tma.render(fig06_tma.run()),
        "fig07": lambda: fig07_vco.render(fig07_vco.run()),
        "fig08": lambda: fig08_patterns.render(fig08_patterns.run()),
        "fig09": lambda: fig09_waveforms.render(fig09_waveforms.run()),
        "fig10": lambda: fig10_snr_map.render(fig10_snr_map.run()),
        "fig11": lambda: fig11_ber_cdf.render(fig11_ber_cdf.run()),
        "fig12": lambda: fig12_range.render(fig12_range.run()),
        "fig13": lambda: fig13_multinode.render(fig13_multinode.run()),
        "table1": lambda: table1.render(table1.run()),
        "ablations": lambda: "\n\n".join([
            ablations.render(ablations.run_orthogonality(),
                             ablations.run_modulation(),
                             ablations.run_beam_search()),
            ablations.render_oracle(ablations.run_oracle_comparison()),
        ]),
        "extensions": lambda: "\n\n".join([
            extensions.render_mobility(extensions.run_mobility(
                duration_s=30.0)),
            extensions.render_scheduler(extensions.run_scheduler(trials=10)),
            extensions.render_60ghz(extensions.run_60ghz()),
            extensions.render_channel_stats(extensions.run_channel_stats()),
            extensions.render_streaming(extensions.run_streaming()),
        ]),
        "chaos": lambda: chaos.render_all(chaos.run_all()),
    }
    chosen = names or list(registry)
    unknown = [n for n in chosen if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for name in chosen:
        print(f"===== {name} =====")
        print(registry[name]())
        print()
    return 0


def _cmd_link(distance: float, offset_deg: float, blocked: bool) -> int:
    from .core.link import OtamLink
    from .sim.environment import default_lab_room
    from .sim.geometry import Point, angle_of, normalize_angle
    from .sim.mobility import los_blocker_between
    from .sim.placement import Placement

    room = default_lab_room()
    ap = Point(room.width_m / 2.0, 0.15)
    node = Point(room.width_m / 2.0, 0.15 + distance)
    if not room.contains(node, margin=0.1):
        print("distance does not fit in the 6 m lab room", file=sys.stderr)
        return 2
    toward = angle_of(node, ap)
    placement = Placement(node,
                          normalize_angle(toward + np.radians(offset_deg)),
                          ap, np.pi / 2)
    if blocked:
        room.add_blocker(los_blocker_between(node, ap))
    breakdown = OtamLink(placement=placement, room=room).snr_breakdown()
    print(f"distance {distance:.1f} m, offset {offset_deg:+.0f} deg, "
          f"blocked={blocked}")
    print(f"  Beam 1 level   : {breakdown.beam1_level_dbm:7.1f} dBm")
    print(f"  Beam 0 level   : {breakdown.beam0_level_dbm:7.1f} dBm")
    print(f"  SNR with OTAM  : {breakdown.otam_snr_db:7.1f} dB")
    print(f"  SNR without    : {breakdown.no_otam_snr_db:7.1f} dB")
    print(f"  predicted BER  : {breakdown.ber_with_otam():.2e} (OTAM) / "
          f"{breakdown.ber_without_otam():.2e} (baseline)")
    print(f"  inverted       : {breakdown.inverted}")
    return 0


def _cmd_network(nodes: int, seed: int) -> int:
    from .network.network import MultiNodeNetwork
    from .sim.environment import default_lab_room

    network = MultiNodeNetwork(default_lab_room(),
                               np.random.default_rng(seed))
    snapshot = network.evaluate(nodes)
    print(f"{nodes} simultaneous node(s), seed {seed}:")
    for stats in snapshot.nodes:
        print(f"  node {stats.node_id:2d}: ch {stats.channel_index:2d}  "
              f"SINR {stats.sinr_db:5.1f} dB")
    print(f"mean {snapshot.mean_sinr_db:.1f} dB, "
          f"min {snapshot.min_sinr_db:.1f} dB")
    return 0


def _cmd_characterize() -> int:
    from .channel.statistics import characterize
    from .sim.environment import default_lab_room
    from .sim.placement import PlacementSampler

    room = default_lab_room()
    sampler = PlacementSampler(room, np.random.default_rng(0))
    stats = characterize(room, sampler.sample_many(60))
    print("channel statistics over 60 placements in the 6x4 m lab:")
    print(f"  paths: mean {stats.mean_path_count:.1f}, "
          f"median {stats.median_path_count:.0f}, "
          f"max {stats.max_path_count} (sparse: {stats.is_sparse})")
    print(f"  median K-factor      : {stats.median_k_factor_db:.1f} dB")
    print(f"  median delay spread  : {stats.median_delay_spread_ns:.2f} ns")
    print(f"  median angular spread: "
          f"{stats.median_angular_spread_deg:.0f} deg")
    return 0


def _cmd_chaos(scenario: str, seed: int, duration: float,
               ap_crash: bool = False, as_json: bool = False,
               jobs: int = 1) -> int:
    from .experiments import chaos
    from .faults import SCENARIOS
    from .telemetry import Recorder, to_jsonl

    if jobs < 1:
        print("repro chaos: --jobs must be at least 1", file=sys.stderr)
        return 2
    # With --json every run records into one Recorder and the export —
    # the same deterministic JSONL the library writes — goes to stdout.
    recorder = Recorder() if as_json else None

    if ap_crash:
        outcome = chaos.run_failover(seed=seed, duration_s=duration,
                                     telemetry=recorder)
        if recorder is not None:
            print(to_jsonl(recorder), end="")
        else:
            print(chaos.render_failover(outcome))
        return 0
    if scenario == "all":
        executor = None
        if jobs > 1:
            from .engine import ProcessPool

            executor = ProcessPool(jobs=jobs)
        outcomes = chaos.run_all(seed=seed, duration_s=duration,
                                 telemetry=recorder, executor=executor)
        if recorder is not None:
            print(to_jsonl(recorder), end="")
        else:
            print(chaos.render_all(outcomes))
        return 0
    if scenario not in SCENARIOS:
        print(f"unknown scenario {scenario!r}; choose from "
              f"{', '.join(sorted(SCENARIOS))} or 'all'",
              file=sys.stderr)
        return 2
    outcome = chaos.run(scenario, seed=seed, duration_s=duration,
                        telemetry=recorder)
    if recorder is not None:
        print(to_jsonl(recorder), end="")
    else:
        print(chaos.render(outcome))
    return 0


def _cmd_admission_saturate(nodes: int, loads: list[float] | None,
                            replicates: int, seed: int, jobs: int,
                            shards: int | None, out: str | None,
                            resume: bool, as_json: bool) -> int:
    from .engine import (EngineError, SerialExecutor, StoreError,
                         SupervisedPool)

    if nodes < 1:
        print("repro admission saturate: --nodes must be at least 1",
              file=sys.stderr)
        return 2
    if replicates < 1:
        print("repro admission saturate: --replicates must be at "
              "least 1", file=sys.stderr)
        return 2
    if jobs < 1:
        print("repro admission saturate: --jobs must be at least 1",
              file=sys.stderr)
        return 2
    if shards is not None and shards < 1:
        print("repro admission saturate: --shards must be at least 1",
              file=sys.stderr)
        return 2
    if loads is not None and any(lo <= 0 for lo in loads):
        print("repro admission saturate: --load points must be "
              "positive", file=sys.stderr)
        return 2
    if resume and out is None:
        print("repro admission saturate: --resume needs --out (the "
              "store to resume from)", file=sys.stderr)
        return 2
    if out is not None and Path(out).exists() and not resume:
        print(f"repro admission saturate: {out} already exists; pass "
              "--resume to continue that campaign, or choose a fresh "
              "path", file=sys.stderr)
        return 2

    from .admission import default_config, render, run_saturation
    from .admission.saturation import DEFAULT_LOADS

    config = default_config(
        loads=tuple(loads) if loads is not None else DEFAULT_LOADS,
        replicates=replicates, arrivals=nodes)
    # One supervised pool covers both the ISSUE's resumable-CLI ask and
    # worker-crash tolerance; serial runs stay in-process.
    executor: SerialExecutor | SupervisedPool
    executor = SupervisedPool(jobs=jobs) if jobs > 1 else SerialExecutor()
    num_shards = shards if shards is not None else jobs
    try:
        result = run_saturation(config, master_seed=seed,
                                executor=executor,
                                num_shards=num_shards, store=out)
    except (EngineError, StoreError) as exc:
        print(_campaign_diagnostic(exc, executor, out), file=sys.stderr)
        return 2
    if as_json:
        import json

        print(json.dumps(result.curve(), indent=2))
    else:
        print(render(result))
    if out is not None:
        print(f"\ncampaign store: {out}", file=sys.stderr)
    return 0


def _cmd_energy(command: str, replicates: int, seed: int, jobs: int,
                shards: int | None, out: str | None, resume: bool,
                as_json: bool, bits: int | None = None,
                nodes: int | None = None) -> int:
    from .engine import (EngineError, SerialExecutor, StoreError,
                         SupervisedPool)

    if replicates < 1:
        print(f"repro energy {command}: --replicates must be at "
              "least 1", file=sys.stderr)
        return 2
    if jobs < 1:
        print(f"repro energy {command}: --jobs must be at least 1",
              file=sys.stderr)
        return 2
    if shards is not None and shards < 1:
        print(f"repro energy {command}: --shards must be at least 1",
              file=sys.stderr)
        return 2
    if bits is not None and bits < 1:
        print("repro energy compare: --bits must be at least 1",
              file=sys.stderr)
        return 2
    if nodes is not None and nodes < 1:
        print("repro energy outage: --nodes must be at least 1",
              file=sys.stderr)
        return 2
    if resume and out is None:
        print(f"repro energy {command}: --resume needs --out (the "
              "store to resume from)", file=sys.stderr)
        return 2
    if out is not None and Path(out).exists() and not resume:
        print(f"repro energy {command}: {out} already exists; pass "
              "--resume to continue that campaign, or choose a fresh "
              "path", file=sys.stderr)
        return 2

    executor: SerialExecutor | SupervisedPool
    executor = SupervisedPool(jobs=jobs) if jobs > 1 else SerialExecutor()
    num_shards = shards if shards is not None else jobs
    try:
        if command == "compare":
            from .energy import compare

            result = compare.run_compare(
                compare.default_config(
                    replicates=replicates,
                    num_bits=bits if bits is not None else 400),
                master_seed=seed, executor=executor,
                num_shards=num_shards, store=out)
            payload: object = result.rows()
            text = compare.render(result)
        else:
            from .energy import outage

            fleet = outage.run_outage(
                outage.default_config(
                    nodes=nodes if nodes is not None else 6,
                    replicates=replicates),
                master_seed=seed, executor=executor,
                num_shards=num_shards, store=out)
            payload = fleet.summary()
            text = outage.render(fleet)
    except (EngineError, StoreError) as exc:
        print(_campaign_diagnostic(exc, executor, out), file=sys.stderr)
        return 2
    if as_json:
        import json

        print(json.dumps(payload, indent=2))
    else:
        print(text)
    if out is not None:
        print(f"\ncampaign store: {out}", file=sys.stderr)
    return 0


def _cmd_campaign(experiment: str, trials: int | None, seed: int,
                  jobs: int, shards: int | None, out: str | None,
                  resume: bool, duration: float,
                  max_retries: int | None = None,
                  shard_timeout: float | None = None,
                  on_failure: str | None = None) -> int:
    from .engine import (EngineError, ProcessPool, SerialExecutor,
                         StoreError, SupervisedPool, SupervisionPolicy)

    if jobs < 1:
        print("repro campaign: --jobs must be at least 1",
              file=sys.stderr)
        return 2
    if shards is not None and shards < 1:
        print("repro campaign: --shards must be at least 1",
              file=sys.stderr)
        return 2
    if max_retries is not None and max_retries < 0:
        print("repro campaign: --max-retries cannot be negative",
              file=sys.stderr)
        return 2
    if shard_timeout is not None and shard_timeout <= 0:
        print("repro campaign: --shard-timeout must be positive",
              file=sys.stderr)
        return 2
    if resume and out is None:
        print("repro campaign: --resume needs --out (the store to "
              "resume from)", file=sys.stderr)
        return 2
    if out is not None:
        if experiment == "chaos":
            print("repro campaign: chaos outcomes are rich objects, "
                  "not JSON rows; --out is not supported for the "
                  "chaos sweep", file=sys.stderr)
            return 2
        if Path(out).exists() and not resume:
            print(f"repro campaign: {out} already exists; pass "
                  "--resume to continue that campaign, or choose a "
                  "fresh path", file=sys.stderr)
            return 2
    if trials is not None and experiment == "fig10":
        print("repro campaign: fig10's trial count is its placement "
              "grid; --trials does not apply", file=sys.stderr)
        return 2

    supervised = (max_retries is not None or shard_timeout is not None
                  or on_failure is not None)
    executor: SerialExecutor | ProcessPool | SupervisedPool
    if supervised:
        from .engine import ON_FAILURE_MODES
        from .engine.policy import OnFailure

        mode: OnFailure = "quarantine"
        for known in ON_FAILURE_MODES:
            if on_failure == known:
                mode = known
        policy = SupervisionPolicy(
            max_attempts=(max_retries + 1 if max_retries is not None
                          else 3),
            shard_timeout_s=shard_timeout,
            on_failure=mode)
        executor = SupervisedPool(jobs=jobs, policy=policy)
    elif jobs > 1:
        executor = ProcessPool(jobs=jobs)
    else:
        executor = SerialExecutor()
    num_shards = shards if shards is not None else jobs

    try:
        if experiment == "chaos":
            from .experiments import chaos

            print(chaos.render_all(chaos.run_all(
                seed=seed, duration_s=duration, executor=executor,
                num_shards=num_shards)))
        elif experiment == "fig10":
            from .experiments import fig10_snr_map

            print(fig10_snr_map.render(fig10_snr_map.run(
                seed=seed, executor=executor, num_shards=num_shards,
                store=out)))
        elif experiment == "fig11":
            from .experiments import fig11_ber_cdf

            print(fig11_ber_cdf.render(fig11_ber_cdf.run(
                seed=seed,
                num_placements=trials if trials is not None else 30,
                executor=executor, num_shards=num_shards, store=out)))
        elif experiment == "fig13":
            from .experiments import fig13_multinode

            print(fig13_multinode.render(fig13_multinode.run(
                seed=seed,
                trials_per_count=trials if trials is not None else 30,
                executor=executor, num_shards=num_shards, store=out)))
        else:
            raise AssertionError("unreachable")
    except (EngineError, StoreError) as exc:
        # One line, diagnosable: what died, which shards, where the
        # journal lives — never a raw traceback.
        print(_campaign_diagnostic(exc, executor, out), file=sys.stderr)
        return 2
    if out is not None:
        print(f"\ncampaign store: {out}", file=sys.stderr)
    report = getattr(executor, "last_report", None)
    if report is not None and (report.retries or report.quarantined):
        survived = (f"{report.retries} retr"
                    f"{'y' if report.retries == 1 else 'ies'}")
        if report.degraded:
            survived += (", degraded shards "
                         f"{sorted(report.degraded)} recovered "
                         "in-process")
        print(f"repro campaign: supervised run survived {survived}",
              file=sys.stderr)
        abandoned = report.abandoned
        if abandoned:
            where = f"; journal: {out}" if out is not None else ""
            print("repro campaign: partial result — quarantined "
                  f"shards {sorted(abandoned)} never completed"
                  f"{where}", file=sys.stderr)
            return 1
    return 0


def _campaign_diagnostic(exc: Exception, executor: object,
                         out: str | None) -> str:
    """The one-line failure summary ``repro campaign`` prints."""
    parts = [f"repro campaign: {type(exc).__name__}: {exc}"]
    report = getattr(executor, "last_report", None)
    if report is not None and report.failures:
        failed = sorted({f.shard_id for f in report.failures})
        parts.append(f"failed shards: {failed}")
        if report.quarantined:
            parts.append(
                f"quarantined: {sorted(report.quarantined)}")
    if out is not None:
        parts.append(f"journal: {out}")
    return " | ".join(parts)


def _cmd_telemetry(command: str, path: str) -> int:
    from .telemetry import load_path, render, spans_to_collapsed, summarize

    try:
        records = load_path(path)
    except OSError as exc:
        print(f"repro telemetry: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro telemetry: {path} is not a telemetry JSONL "
              f"export: {exc}", file=sys.stderr)
        return 2
    if command == "summarize":
        print(render(summarize(records)))
        return 0
    if command == "flame":
        for line in spans_to_collapsed(records):
            print(line)
        return 0
    raise AssertionError("unreachable")


def _cmd_fsck(paths: list[str], repair: bool, as_json: bool) -> int:
    import json

    from .durability import fsck_paths

    reports, exit_code = fsck_paths(paths, repair=repair)
    if as_json:
        print(json.dumps([report.to_dict() for report in reports],
                         indent=1, sort_keys=True))
    else:
        for report in reports:
            print(report.summary())
    return exit_code


def _cmd_lint(paths: list[str], as_json: bool, as_sarif: bool = False,
              changed_only: bool = False) -> int:
    # The linter lives in tools/ (it is repo tooling, not part of the
    # installed package), so `repro lint` only works from a checkout:
    # walk up from this file until a tools/reprolint directory appears.
    for parent in Path(__file__).resolve().parents:
        tools_dir = parent / "tools"
        if (tools_dir / "reprolint" / "__init__.py").is_file():
            break
    else:
        print("repro lint: tools/reprolint not found; run from a repo "
              "checkout or use `python tools/reprolint` directly",
              file=sys.stderr)
        return 2
    if str(tools_dir) not in sys.path:
        sys.path.insert(0, str(tools_dir))
    from reprolint.cli import main as reprolint_main

    argv = list(paths) or [str(parent / "src")]
    if as_json:
        argv += ["--format", "json"]
    elif as_sarif:
        argv += ["--format", "sarif"]
    if changed_only:
        argv += ["--changed-only"]
    # Exit codes already share the fsck contract:
    # 0 clean / 1 findings / 2 fatal.
    return reprolint_main(argv)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "reproduce":
        return _cmd_reproduce(args.names)
    if args.command == "link":
        return _cmd_link(args.distance, args.offset_deg, args.blocked)
    if args.command == "network":
        return _cmd_network(args.nodes, args.seed)
    if args.command == "characterize":
        return _cmd_characterize()
    if args.command == "chaos":
        return _cmd_chaos(args.scenario, args.seed, args.duration,
                          args.ap_crash, args.as_json, args.jobs)
    if args.command == "admission":
        return _cmd_admission_saturate(args.nodes, args.load,
                                       args.replicates, args.seed,
                                       args.jobs, args.shards, args.out,
                                       args.resume, args.as_json)
    if args.command == "energy":
        return _cmd_energy(args.energy_command, args.replicates,
                           args.seed, args.jobs, args.shards, args.out,
                           args.resume, args.as_json,
                           bits=getattr(args, "bits", None),
                           nodes=getattr(args, "nodes", None))
    if args.command == "campaign":
        return _cmd_campaign(args.experiment, args.trials, args.seed,
                             args.jobs, args.shards, args.out,
                             args.resume, args.duration,
                             args.max_retries, args.shard_timeout,
                             args.on_failure)
    if args.command == "telemetry":
        return _cmd_telemetry(args.telemetry_command, args.path)
    if args.command == "fsck":
        return _cmd_fsck(args.paths, args.repair, args.as_json)
    if args.command == "lint":
        return _cmd_lint(args.paths, args.as_json, args.as_sarif,
                         args.changed_only)
    if args.command == "list":
        print("fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 "
              "table1 ablations extensions chaos")
        return 0
    raise AssertionError("unreachable")
