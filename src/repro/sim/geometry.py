"""2-D computational geometry for the ray tracer.

Everything operates on points as ``(x, y)`` float pairs.  The primitives
here are exactly the ones image-method ray tracing needs: segment
intersection (does a ray cross a wall / does a blocker occlude a leg),
point reflection across a wall line (to build mirror images), and angle
bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Point",
    "Segment",
    "segment_intersection",
    "segment_circle_intersects",
    "reflect_point_across_line",
    "angle_of",
    "normalize_angle",
    "distance",
]


@dataclass(frozen=True)
class Point:
    """A 2-D point in metres."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def __add__(self, other: Point) -> Point:
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: Point) -> Point:
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, k: float) -> Point:
        """Scalar multiple of the position vector."""
        return Point(self.x * k, self.y * k)

    def norm(self) -> float:
        """Euclidean length of the position vector."""
        return math.hypot(self.x, self.y)


@dataclass(frozen=True)
class Segment:
    """A line segment between two points."""

    a: Point
    b: Point

    def length(self) -> float:
        """Segment length [m]."""
        return distance(self.a, self.b)

    def midpoint(self) -> Point:
        """Segment midpoint."""
        return Point(0.5 * (self.a.x + self.b.x), 0.5 * (self.a.y + self.b.y))


def distance(p: Point, q: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(p.x - q.x, p.y - q.y)


def _cross(ox, oy, ax, ay, bx, by) -> float:
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def segment_intersection(s1: Segment, s2: Segment,
                         tol: float = 1e-9) -> Point | None:
    """Intersection point of two segments, or ``None`` if they miss.

    Endpoint touches count as intersections.  Collinear overlap returns
    the first segment's endpoint that lies on the other segment (the ray
    tracer treats grazing propagation along a wall as blocked).
    """
    p, r_end = s1.a, s1.b
    q, s_end = s2.a, s2.b
    rx, ry = r_end.x - p.x, r_end.y - p.y
    sx, sy = s_end.x - q.x, s_end.y - q.y
    denom = rx * sy - ry * sx
    qpx, qpy = q.x - p.x, q.y - p.y
    if abs(denom) < tol:
        # Parallel.  Check collinearity, then overlap.
        if abs(qpx * ry - qpy * rx) > tol:
            return None
        r_len2 = rx * rx + ry * ry
        if r_len2 < tol:
            return p if distance(p, q) < tol else None
        t0 = (qpx * rx + qpy * ry) / r_len2
        t1 = t0 + (sx * rx + sy * ry) / r_len2
        lo, hi = min(t0, t1), max(t0, t1)
        if hi < -tol or lo > 1 + tol:
            return None
        t = max(0.0, lo)
        return Point(p.x + t * rx, p.y + t * ry)
    t = (qpx * sy - qpy * sx) / denom
    u = (qpx * ry - qpy * rx) / denom
    if -tol <= t <= 1 + tol and -tol <= u <= 1 + tol:
        return Point(p.x + t * rx, p.y + t * ry)
    return None


def segment_circle_intersects(seg: Segment, centre: Point,
                              radius: float) -> bool:
    """Whether a segment passes within ``radius`` of ``centre``.

    This is the blocker occlusion test: a person is a circle and a
    propagation leg is a segment.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    ax, ay = seg.a.x - centre.x, seg.a.y - centre.y
    bx, by = seg.b.x - centre.x, seg.b.y - centre.y
    dx, dy = bx - ax, by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return math.hypot(ax, ay) <= radius
    t = -(ax * dx + ay * dy) / seg_len2
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(cx, cy) <= radius


def reflect_point_across_line(p: Point, line: Segment) -> Point:
    """Mirror image of ``p`` across the infinite line through ``line``.

    The image method: a first-order reflection off a wall is equivalent to
    a straight ray from the mirrored source.
    """
    ax, ay = line.a.x, line.a.y
    dx, dy = line.b.x - ax, line.b.y - ay
    len2 = dx * dx + dy * dy
    if len2 == 0.0:
        raise ValueError("degenerate line segment")
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / len2
    foot = Point(ax + t * dx, ay + t * dy)
    return Point(2.0 * foot.x - p.x, 2.0 * foot.y - p.y)


def angle_of(origin: Point, target: Point) -> float:
    """Absolute bearing [rad] of ``target`` as seen from ``origin``."""
    return math.atan2(target.y - origin.y, target.x - origin.x)


def normalize_angle(theta: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    theta = math.fmod(theta, 2.0 * math.pi)
    if theta > math.pi:
        theta -= 2.0 * math.pi
    elif theta <= -math.pi:
        theta += 2.0 * math.pi
    return theta
