"""Seeded Monte-Carlo experiment runner.

Every experiment in the paper is a set of repeated trials over random
placements (30 locations in §9.3, 100 runs in §9.5...).  The runner owns
the RNG discipline — one master seed, one child generator per trial — so
every figure regenerates bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["TrialResult", "MonteCarloRunner"]


@dataclass(frozen=True)
class TrialResult:
    """One trial's outputs, tagged with its index and seed."""

    index: int
    seed: int
    values: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


class MonteCarloRunner:
    """Runs ``trial_fn(rng, index) -> dict`` over independent RNG streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed

    def child_seeds(self, count: int) -> list[int]:
        """Deterministic per-trial seeds derived from the master seed."""
        if count < 0:
            raise ValueError("count cannot be negative")
        ss = np.random.SeedSequence(self.master_seed)
        return [int(s.generate_state(1)[0]) for s in ss.spawn(count)]

    def run(self, trial_fn: Callable[[np.random.Generator, int], dict],
            num_trials: int) -> list[TrialResult]:
        """Execute ``num_trials`` independent trials."""
        results = []
        for index, seed in enumerate(self.child_seeds(num_trials)):
            rng = np.random.default_rng(seed)
            values = trial_fn(rng, index)
            if not isinstance(values, dict):
                raise TypeError("trial function must return a dict of values")
            results.append(TrialResult(index=index, seed=seed, values=values))
        return results

    @staticmethod
    def collect(results: list[TrialResult], key: str) -> np.ndarray:
        """Gather one scalar metric across trials into an array."""
        return np.asarray([r.values[key] for r in results], dtype=float)

    @staticmethod
    def summary(results: list[TrialResult], key: str) -> dict[str, float]:
        """Mean / median / percentiles of a metric across trials."""
        x = MonteCarloRunner.collect(results, key)
        if x.size == 0:
            raise ValueError("no results to summarise")
        return {
            "mean": float(np.mean(x)),
            "median": float(np.median(x)),
            "p10": float(np.percentile(x, 10)),
            "p90": float(np.percentile(x, 90)),
            "min": float(np.min(x)),
            "max": float(np.max(x)),
        }
