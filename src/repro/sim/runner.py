"""Seeded Monte-Carlo experiment runner.

Every experiment in the paper is a set of repeated trials over random
placements (30 locations in §9.3, 100 runs in §9.5...).  The runner owns
the RNG discipline — one master seed, one child generator per trial — so
every figure regenerates bit-identically.

Long sweeps are observable mid-run: :meth:`MonteCarloRunner.run_stream`
yields each :class:`TrialResult` the moment its trial finishes (so a
caller can checkpoint or print partials), :meth:`MonteCarloRunner.run`
accepts a per-trial ``progress`` callback, and a
:class:`~repro.telemetry.TelemetryRecorder` wraps every trial in a
``sim.trial`` span plus a ``sim.trial`` event — the per-trial profile
the flamegraph export is built from.

Long sweeps are also *parallel*: ``run(..., executor=ProcessPool(4))``
routes the same trials through :mod:`repro.engine`'s sharded campaign
machinery (identical seeds, identical results, multi-core wall-clock),
and ``store=`` makes the sweep crash-safe and resumable.  See
``docs/scaling.md``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..telemetry import NullRecorder, TelemetryRecorder

__all__ = ["TrialResult", "MonteCarloRunner"]


@dataclass(frozen=True)
class TrialResult:
    """One trial's outputs, tagged with its index and seed."""

    index: int
    seed: int
    values: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


class MonteCarloRunner:
    """Runs ``trial_fn(rng, index) -> dict`` over independent RNG streams."""

    def __init__(self, master_seed: int = 0,
                 telemetry: TelemetryRecorder | None = None):
        self.master_seed = master_seed
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()

    def child_seeds(self, count: int) -> list[int]:
        """Deterministic per-trial seeds derived from the master seed."""
        if count < 0:
            raise ValueError("count cannot be negative")
        ss = np.random.SeedSequence(self.master_seed)
        return [int(s.generate_state(1)[0]) for s in ss.spawn(count)]

    def run_stream(self, trial_fn: Callable[[np.random.Generator, int], dict],
                   num_trials: int) -> Iterator[TrialResult]:
        """Yield each trial's result as soon as it completes.

        This is the partial-result path: a sweep of hundreds of trials
        can be consumed incrementally (printed, checkpointed, aborted)
        instead of blocking until the last trial returns.  Each trial is
        traced as a ``sim.trial`` span and announced with a ``sim.trial``
        telemetry event carrying its index and seed.
        """
        tel = self.telemetry
        for index, seed in enumerate(self.child_seeds(num_trials)):
            rng = np.random.default_rng(seed)
            with tel.span("sim.trial", index=index):
                values = trial_fn(rng, index)
            if not isinstance(values, dict):
                raise TypeError("trial function must return a dict of values")
            if tel.enabled:
                tel.count("sim.trials")
                tel.event("sim.trial", index=index, seed=seed,
                          of=num_trials)
            yield TrialResult(index=index, seed=seed, values=values)

    def run(self, trial_fn: Callable[[np.random.Generator, int], dict],
            num_trials: int,
            progress: Callable[[TrialResult], None] | None = None,
            executor=None, num_shards: int | None = None,
            store=None, allow_partial: bool = False) -> list[TrialResult]:
        """Execute ``num_trials`` independent trials.

        ``progress`` (optional) is invoked with each
        :class:`TrialResult` as it lands — the hook long sweeps use to
        report partial results without changing the return type.

        ``executor`` (optional) routes the sweep through
        :class:`repro.engine.Campaign`: trials are partitioned into
        ``num_shards`` shards (default: the executor's worker count)
        and run on the executor — e.g.
        :class:`repro.engine.ProcessPool` for multi-core fan-out.
        ``store`` (a :class:`repro.engine.ResultStore` or path) makes
        the campaign resumable.  Seeds, results and telemetry exports
        are identical to the serial path for the same master seed;
        with an executor, ``progress`` fires per trial in index order
        after the merge rather than streaming mid-sweep.

        A supervised executor (:class:`repro.engine.SupervisedPool`)
        may quarantine shards instead of dying; because ``run`` returns
        a flat trial list that figure code assumes is complete, a
        partial campaign raises :class:`repro.engine.EngineError` here
        unless ``allow_partial=True`` (in which case the surviving
        trials are returned and the holes are the caller's problem).
        """
        if executor is None and store is None:
            results = []
            for result in self.run_stream(trial_fn, num_trials):
                if progress is not None:
                    progress(result)
                results.append(result)
            return results
        from ..engine import Campaign, EngineError, PartialCampaignResult

        if num_shards is None:
            num_shards = max(1, getattr(executor, "jobs", 1))
        campaign = Campaign(trial_fn, num_trials,
                            master_seed=self.master_seed,
                            num_shards=num_shards, executor=executor,
                            store=store, telemetry=self.telemetry)
        outcome = campaign.run()
        if isinstance(outcome, PartialCampaignResult) \
                and not allow_partial:
            raise EngineError(
                "campaign completed partially: shards "
                f"{list(outcome.quarantined_shards)} were quarantined "
                f"({len(outcome.missing_trials)} of {num_trials} "
                "trials missing); completed shards are journaled — "
                "re-run to retry only the quarantined shards, or use "
                "on_failure='degrade'")
        merged = list(outcome.results)
        if progress is not None:
            for result in merged:
                progress(result)
        return merged

    @staticmethod
    def collect(results: list[TrialResult], key: str) -> np.ndarray:
        """Gather one scalar metric across trials into an array."""
        return np.asarray([r.values[key] for r in results], dtype=float)

    @staticmethod
    def summary(results: list[TrialResult], key: str) -> dict[str, float]:
        """Mean / median / percentiles of a metric across trials."""
        x = MonteCarloRunner.collect(results, key)
        if x.size == 0:
            raise ValueError(
                f"no results to summarise for {key!r}: the result "
                "list is empty (summary statistics are undefined on "
                "zero trials)")
        return {
            "mean": float(np.mean(x)),
            "median": float(np.median(x)),
            "p10": float(np.percentile(x, 10)),
            "p90": float(np.percentile(x, 90)),
            "min": float(np.min(x)),
            "max": float(np.max(x)),
        }
