"""Node/AP placement sampling matching the paper's experimental protocol.

Section 9.2: the AP sits on one side of the room; nodes are placed "at
random locations and heights" with orientation (w.r.t. the AP) "randomly
picked between -60 and 60 degrees".  The reproduction is 2-D, so height
variation maps to a small orientation/gain perturbation within the 65°
elevation beamwidth — negligible by the paper's own argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import EVAL_ORIENTATION_RANGE_DEG
from .environment import Room
from .geometry import Point, angle_of, normalize_angle

__all__ = ["Placement", "PlacementSampler"]


@dataclass(frozen=True)
class Placement:
    """One experimental placement: node pose plus the fixed AP pose."""

    node_position: Point
    node_orientation_rad: float
    ap_position: Point
    ap_orientation_rad: float

    @property
    def distance_m(self) -> float:
        """Node-AP separation [m]."""
        return math.hypot(self.node_position.x - self.ap_position.x,
                          self.node_position.y - self.ap_position.y)

    @property
    def offset_from_ap_rad(self) -> float:
        """Angle between the node's boresight and the AP direction."""
        bearing = angle_of(self.node_position, self.ap_position)
        return normalize_angle(bearing - self.node_orientation_rad)


class PlacementSampler:
    """Draws placements per the paper's protocol inside a room."""

    def __init__(self, room: Room, rng: np.random.Generator,
                 ap_position: Point | None = None,
                 orientation_range_deg=EVAL_ORIENTATION_RANGE_DEG,
                 margin_m: float = 0.3):
        self.room = room
        self.rng = rng
        self.margin_m = margin_m
        lo, hi = orientation_range_deg
        if hi < lo:
            raise ValueError("invalid orientation range")
        self.orientation_range_rad = (math.radians(lo), math.radians(hi))
        # "We place mmX's AP on one side of the room": mid-width, near y=0.
        if ap_position is None:
            ap_position = Point(room.width_m / 2.0, 0.15)
        self.ap_position = ap_position
        # AP faces into the room.
        self.ap_orientation_rad = math.pi / 2.0 if ap_position.y < room.length_m / 2 \
            else -math.pi / 2.0

    def sample(self) -> Placement:
        """One placement: uniform node location, bounded orientation offset.

        The node's boresight points at the AP plus a uniform offset in the
        configured range — exactly "orientation with respect to the AP
        randomly picked between -60 and 60 degrees".
        """
        node = self.room.random_interior_point(self.rng, self.margin_m)
        # Avoid degenerate zero-distance placements right at the AP.
        while (math.hypot(node.x - self.ap_position.x,
                          node.y - self.ap_position.y) < 0.5):
            node = self.room.random_interior_point(self.rng, self.margin_m)
        toward_ap = angle_of(node, self.ap_position)
        offset = float(self.rng.uniform(*self.orientation_range_rad))
        return Placement(
            node_position=node,
            node_orientation_rad=normalize_angle(toward_ap + offset),
            ap_position=self.ap_position,
            ap_orientation_rad=self.ap_orientation_rad,
        )

    def sample_many(self, count: int) -> list[Placement]:
        """Draw ``count`` independent placements."""
        if count < 0:
            raise ValueError("count cannot be negative")
        return [self.sample() for _ in range(count)]

    def at_distance(self, distance_m: float,
                    facing: bool = True) -> Placement:
        """Deterministic placement at a distance straight out from the AP.

        Used by the range experiment (Fig. 12): ``facing=True`` points the
        node's broadside Beam 1 at the AP (scenario 1); ``facing=False``
        rotates the node 30° so only one arm of Beam 0 points at the AP
        (scenario 2).
        """
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        direction = self.ap_orientation_rad
        node = Point(self.ap_position.x + distance_m * math.cos(direction),
                     self.ap_position.y + distance_m * math.sin(direction))
        toward_ap = angle_of(node, self.ap_position)
        offset = 0.0 if facing else math.radians(30.0)
        return Placement(
            node_position=node,
            node_orientation_rad=normalize_angle(toward_ap + offset),
            ap_position=self.ap_position,
            ap_orientation_rad=self.ap_orientation_rad,
        )
