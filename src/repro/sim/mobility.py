"""Mobility models for blockers and nodes.

Section 9.2's protocol: "We also asked people to walk around. In order to
block the signal, one person was blocking the line-of-sight path between
the node and the AP for the entire duration of the experiment."  These
models supply both behaviours: random walkers and a dedicated LoS blocker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .environment import Blocker, Room
from .geometry import Point, Segment

__all__ = ["RandomWaypoint", "LinearCrossing", "WalkingBlocker",
           "los_blocker_between"]


class RandomWaypoint:
    """Random-waypoint walker: pick a point, walk to it, repeat.

    The classic pedestrian mobility model; speeds default to a casual
    indoor walking pace (0.5-1.5 m/s).
    """

    def __init__(self, room: Room, rng: np.random.Generator,
                 speed_range_mps: tuple[float, float] = (0.5, 1.5),
                 margin_m: float = 0.3):
        if speed_range_mps[0] <= 0 or speed_range_mps[1] < speed_range_mps[0]:
            raise ValueError("invalid speed range")
        self.room = room
        self.rng = rng
        self.speed_range = speed_range_mps
        self.margin = margin_m
        self.position = room.random_interior_point(rng, margin_m)
        self._pick_waypoint()

    def _pick_waypoint(self) -> None:
        self.waypoint = self.room.random_interior_point(self.rng, self.margin)
        self.speed = float(self.rng.uniform(*self.speed_range))

    def step(self, dt_s: float) -> Point:
        """Advance the walker by ``dt_s`` seconds; returns the new position."""
        if dt_s < 0:
            raise ValueError("time step cannot be negative")
        remaining = self.speed * dt_s
        while remaining > 0:
            dx = self.waypoint.x - self.position.x
            dy = self.waypoint.y - self.position.y
            dist = math.hypot(dx, dy)
            if dist <= remaining:
                self.position = self.waypoint
                remaining -= dist
                self._pick_waypoint()
            else:
                k = remaining / dist
                self.position = Point(self.position.x + k * dx,
                                      self.position.y + k * dy)
                remaining = 0.0
        return self.position


class LinearCrossing:
    """A walker crossing back and forth along a fixed segment.

    Useful for deterministic blockage tests: the walker oscillates along
    ``path`` at constant speed, repeatedly cutting any link the segment
    crosses.
    """

    def __init__(self, path: Segment, speed_mps: float = 1.0):
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        if path.length() <= 0:
            raise ValueError("crossing path must have nonzero length")
        self.path = path
        self.speed = speed_mps
        self._progress = 0.0  # 0..2 (there and back)

    def step(self, dt_s: float) -> Point:
        """Advance along the crossing; returns the new position."""
        if dt_s < 0:
            raise ValueError("time step cannot be negative")
        length = self.path.length()
        self._progress = (self._progress + self.speed * dt_s / length) % 2.0
        t = self._progress if self._progress <= 1.0 else 2.0 - self._progress
        return Point(self.path.a.x + t * (self.path.b.x - self.path.a.x),
                     self.path.a.y + t * (self.path.b.y - self.path.a.y))


@dataclass
class WalkingBlocker:
    """A :class:`Blocker` attached to a mobility model."""

    blocker: Blocker
    mobility: object

    def step(self, dt_s: float) -> Blocker:
        """Move the blocker one time step; returns the updated blocker."""
        position = self.mobility.step(dt_s)
        self.blocker = self.blocker.moved_to(position)
        return self.blocker


def los_blocker_between(node: Point, ap: Point,
                        fraction: float = 0.5,
                        radius_m: float = 0.25,
                        penetration_loss_db: float | None = None,
                        rng: np.random.Generator | None = None) -> Blocker:
    """A person standing on the node-AP line (the paper's persistent blocker).

    ``fraction`` places them along the segment (0 = at the node, 1 = at
    the AP).  Penetration loss defaults to a draw from the composed
    20-35 dB blocked-path band of section 6.1, or its midpoint when no
    RNG is given.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be strictly between 0 and 1")
    from ..constants import BLOCKED_PATH_TOTAL_EXCESS_DB

    if penetration_loss_db is None:
        lo, hi = BLOCKED_PATH_TOTAL_EXCESS_DB
        penetration_loss_db = (float(rng.uniform(lo, hi)) if rng is not None
                               else 0.5 * (lo + hi))
    position = Point(node.x + fraction * (ap.x - node.x),
                     node.y + fraction * (ap.y - node.y))
    return Blocker(position=position, radius_m=radius_m,
                   penetration_loss_db=penetration_loss_db)
