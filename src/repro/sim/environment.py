"""Rooms, walls and blockers — the synthetic 6 m x 4 m lab.

The paper evaluates mmX "in a lab area with standard furniture" where
walls/furniture provide the NLoS reflections OTAM depends on, and walking
people provide blockage (section 9).  A :class:`Room` is a set of
reflective :class:`Wall` segments plus circular :class:`Blocker` objects.

Reflection losses are drawn from the attenuation bands the paper quotes
(section 6.1): an NLoS bounce costs 10-20 dB over the LoS path, and a
human blocker adds another 10-15 dB.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..constants import (
    EVAL_ROOM_LENGTH_M,
    EVAL_ROOM_WIDTH_M,
)
from .geometry import Point, Segment, segment_circle_intersects

__all__ = ["Wall", "Blocker", "Room", "default_lab_room"]


@dataclass(frozen=True)
class Wall:
    """A reflective planar surface (wall, closet face, whiteboard...).

    ``reflection_loss_db`` is the *material* loss a ray pays at the
    bounce itself.  Note this is deliberately smaller than the paper's
    10-20 dB "NLoS excess" band: that band is the *end-to-end* gap
    between an NLoS and the LoS path, and the ray tracer already pays
    the extra spreading loss and antenna-pattern mismatch explicitly.
    Specular reflection off drywall/furniture at 24 GHz costs ~4-10 dB;
    the emergent end-to-end NLoS excess then lands in the paper's band
    (asserted by the channel tests).
    """

    segment: Segment
    reflection_loss_db: float = 7.0
    name: str = "wall"
    occludes: bool = True
    """Whether rays crossing this surface are blocked.  Room walls do
    block; furniture below antenna height reflects (grazing bounce) but
    does not cut a line-of-sight at sensor height, so furniture pieces
    set this to False."""

    def __post_init__(self):
        if self.reflection_loss_db < 0:
            raise ValueError("reflection loss cannot be negative")


@dataclass(frozen=True)
class Blocker:
    """A circular obstacle — typically a person (radius ~0.25 m).

    ``penetration_loss_db`` is the extra loss a ray pays for passing
    through the blocker.  Section 6.1's bands compose to 20-35 dB total
    excess for a blocked LoS path (NLoS band + blockage band), so a
    body costs ~27.5 dB by default — consistent with published mmWave
    human-blockage measurements (20-40 dB).
    """

    position: Point
    radius_m: float = 0.25
    penetration_loss_db: float = 27.5
    name: str = "person"

    def __post_init__(self):
        if self.radius_m <= 0:
            raise ValueError("blocker radius must be positive")
        if self.penetration_loss_db < 0:
            raise ValueError("penetration loss cannot be negative")

    def occludes(self, leg: Segment) -> bool:
        """Whether this blocker intersects a propagation leg."""
        return segment_circle_intersects(leg, self.position, self.radius_m)

    def moved_to(self, position: Point) -> Blocker:
        """Copy of this blocker at a new position (for mobility models)."""
        return replace(self, position=position)


@dataclass
class Room:
    """A 2-D environment: reflective walls plus movable blockers."""

    walls: list[Wall] = field(default_factory=list)
    blockers: list[Blocker] = field(default_factory=list)
    width_m: float = EVAL_ROOM_WIDTH_M
    length_m: float = EVAL_ROOM_LENGTH_M

    @classmethod
    def rectangular(cls, width_m: float = EVAL_ROOM_WIDTH_M,
                    length_m: float = EVAL_ROOM_LENGTH_M,
                    reflection_loss_db: float = 7.0) -> Room:
        """Axis-aligned rectangular room with four reflective walls.

        The room occupies ``[0, width] x [0, length]`` — x across the
        short side, y along the long side, matching the axes of the
        paper's Fig. 10 heatmaps (x to 3 m-ish, y to 6 m).
        """
        if width_m <= 0 or length_m <= 0:
            raise ValueError("room dimensions must be positive")
        corners = [
            Point(0.0, 0.0),
            Point(width_m, 0.0),
            Point(width_m, length_m),
            Point(0.0, length_m),
        ]
        names = ["south", "east", "north", "west"]
        walls = [
            Wall(Segment(corners[i], corners[(i + 1) % 4]),
                 reflection_loss_db=reflection_loss_db, name=names[i])
            for i in range(4)
        ]
        return cls(walls=walls, width_m=width_m, length_m=length_m)

    def add_wall(self, wall: Wall) -> None:
        """Add an interior reflector (furniture face, partition...)."""
        self.walls.append(wall)

    def add_blocker(self, blocker: Blocker) -> None:
        """Add an obstacle."""
        self.blockers.append(blocker)

    def clear_blockers(self) -> None:
        """Remove all obstacles (walls stay)."""
        self.blockers = []

    def contains(self, p: Point, margin: float = 0.0) -> bool:
        """Whether a point lies inside the rectangular footprint."""
        return (margin <= p.x <= self.width_m - margin
                and margin <= p.y <= self.length_m - margin)

    def blockage_loss_db(self, leg: Segment) -> float:
        """Total blocker penetration loss along one propagation leg [dB]."""
        return sum(b.penetration_loss_db for b in self.blockers
                   if b.occludes(leg))

    def random_interior_point(self, rng: np.random.Generator,
                              margin: float = 0.3) -> Point:
        """Uniform random point inside the room, away from the walls."""
        if margin * 2 >= min(self.width_m, self.length_m):
            raise ValueError("margin too large for this room")
        x = rng.uniform(margin, self.width_m - margin)
        y = rng.uniform(margin, self.length_m - margin)
        return Point(float(x), float(y))


def default_lab_room(rng: np.random.Generator | None = None,
                     reflection_loss_db: float | None = None,
                     furniture: bool = True) -> Room:
    """The paper's 6 m x 4 m lab (section 9.2).

    Walls get a reflection loss drawn from (or centred in) the paper's
    10-20 dB NLoS excess band.  ``furniture`` adds the "standard
    furniture such as desks, chairs, computers and closets" the paper
    describes: interior reflector faces along the sides of the room.
    These matter — they are the environmental reflectors Beam 0 relies
    on, and without them the two beams too often see near-identical path
    sets.
    """
    if reflection_loss_db is None:
        if rng is None:
            reflection_loss_db = 7.0
        else:
            reflection_loss_db = float(rng.uniform(5.0, 10.0))
    room = Room.rectangular(EVAL_ROOM_WIDTH_M, EVAL_ROOM_LENGTH_M,
                            reflection_loss_db=reflection_loss_db)
    if furniture:
        pieces = [
            # (segment, material loss dB, name): desks/closets hug the
            # walls; a metal cabinet reflects harder than wood.
            (Segment(Point(0.0, 2.3), Point(0.8, 2.3)), 6.0, "desk-west"),
            (Segment(Point(3.2, 3.6), Point(4.0, 3.6)), 6.0, "desk-east"),
            (Segment(Point(0.0, 4.9), Point(0.6, 4.9)), 5.0, "closet"),
            (Segment(Point(1.6, 5.4), Point(2.4, 5.4)), 4.0, "cabinet"),
        ]
        for segment, loss, name in pieces:
            room.add_wall(Wall(segment, reflection_loss_db=loss, name=name,
                               occludes=False))
    return room
