"""Simulation substrate: room geometry, placements, mobility, Monte Carlo.

The paper's experiments run in a 6 m x 4 m lab with furniture and walking
people (section 9).  This subpackage provides the synthetic equivalent:
a 2-D room whose walls act as mmWave reflectors, circular human blockers
(static or walking), placement samplers matching the paper's protocol
(random locations, orientations in -60..60 degrees), and a seeded
Monte-Carlo runner.
"""

from .environment import Wall, Blocker, Room, default_lab_room
from .geometry import (
    Point,
    Segment,
    segment_intersection,
    segment_circle_intersects,
    reflect_point_across_line,
    angle_of,
    normalize_angle,
)
from .mobility import RandomWaypoint, LinearCrossing, WalkingBlocker
from .placement import PlacementSampler, Placement
from .runner import MonteCarloRunner, TrialResult
from .timeline import LinkTrace, TimelineSimulator

__all__ = [
    "Blocker",
    "LinearCrossing",
    "LinkTrace",
    "MonteCarloRunner",
    "Placement",
    "PlacementSampler",
    "Point",
    "RandomWaypoint",
    "Room",
    "Segment",
    "TimelineSimulator",
    "TrialResult",
    "WalkingBlocker",
    "Wall",
    "angle_of",
    "default_lab_room",
    "normalize_angle",
    "reflect_point_across_line",
    "segment_circle_intersects",
    "segment_intersection",
]
