"""Time-series link simulation — "dynamic and stationary environments".

Section 1 claims mmX "works in both dynamic and stationary
environments"; OTAM's whole point is surviving mobility without
re-searching beams.  :class:`TimelineSimulator` advances walkers through
the room in fixed steps, evaluates the link at every instant, and
produces SNR traces plus the outage/transition statistics a deployment
engineer would ask for: outage probability, mean outage duration, and
how often the OTAM polarity flips (each flip is a blockage event the
preamble absorbs instead of a re-beam-search).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .environment import Room
from .placement import Placement

__all__ = ["LinkTrace", "TimelineSimulator"]


@dataclass(frozen=True)
class LinkTrace:
    """A sampled time series of link quality."""

    times_s: np.ndarray
    otam_snr_db: np.ndarray
    no_otam_snr_db: np.ndarray
    inverted: np.ndarray
    """Boolean polarity state per sample (True = Beam 0 stronger)."""

    def outage_fraction(self, threshold_db: float = 10.0,
                        with_otam: bool = True) -> float:
        """Fraction of time below an SNR threshold."""
        series = self.otam_snr_db if with_otam else self.no_otam_snr_db
        if series.size == 0:
            return 0.0
        return float(np.mean(series < threshold_db))

    def outage_events(self, threshold_db: float = 10.0,
                      with_otam: bool = True) -> list[tuple[float, float]]:
        """(start_s, duration_s) of each contiguous outage interval."""
        series = self.otam_snr_db if with_otam else self.no_otam_snr_db
        below = series < threshold_db
        events = []
        start = None
        dt = float(self.times_s[1] - self.times_s[0]) if len(self.times_s) > 1 else 0.0
        for i, state in enumerate(below):
            if state and start is None:
                start = self.times_s[i]
            elif not state and start is not None:
                events.append((float(start), float(self.times_s[i] - start)))
                start = None
        if start is not None:
            events.append((float(start),
                           float(self.times_s[-1] - start + dt)))
        return events

    def mean_outage_duration_s(self, threshold_db: float = 10.0,
                               with_otam: bool = True) -> float:
        """Average length of an outage interval (0 when none occur)."""
        events = self.outage_events(threshold_db, with_otam)
        if not events:
            return 0.0
        return float(np.mean([d for _, d in events]))

    def polarity_flips(self) -> int:
        """Number of times the stronger beam changed — blockage events."""
        if self.inverted.size < 2:
            return 0
        return int(np.count_nonzero(np.diff(self.inverted.astype(int))))

    def summary(self, threshold_db: float = 10.0) -> dict[str, float]:
        """The headline robustness numbers for this trace."""
        return {
            "mean_otam_snr_db": float(np.mean(self.otam_snr_db)),
            "mean_no_otam_snr_db": float(np.mean(self.no_otam_snr_db)),
            "otam_outage": self.outage_fraction(threshold_db, True),
            "no_otam_outage": self.outage_fraction(threshold_db, False),
            "polarity_flips": float(self.polarity_flips()),
        }


class TimelineSimulator:
    """Steps walkers through a room and records link quality over time."""

    def __init__(self, room: Room, placement: Placement,
                 walkers: list | None = None,
                 time_step_s: float = 0.1,
                 link_kwargs: dict | None = None,
                 fault_injector=None,
                 fault_channel: int | None = None):
        if time_step_s <= 0:
            raise ValueError("time step must be positive")
        self.room = room
        self.placement = placement
        self.walkers = walkers or []
        self.time_step_s = time_step_s
        self.link_kwargs = link_kwargs or {}
        self.fault_injector = fault_injector
        """Optional :class:`repro.faults.FaultInjector` (or a
        pre-materialised :class:`repro.faults.FaultSchedule`); its
        per-instant :class:`~repro.faults.LinkDisturbance` is applied on
        top of the ray-traced walker/blocker dynamics each step."""

        self.fault_channel = fault_channel
        """FDM channel the victim occupies for interference matching
        (``None`` = conservative any-channel view)."""

    def _fault_schedule(self, duration_s: float):
        """Materialise the schedule (``None`` when faults are off)."""
        if self.fault_injector is None:
            return None
        if hasattr(self.fault_injector, "disturbance_at"):
            return self.fault_injector  # already a FaultSchedule
        return self.fault_injector.schedule(duration_s)

    def run(self, duration_s: float) -> LinkTrace:
        """Simulate ``duration_s`` seconds of the environment evolving.

        Each step every walker moves, the room's blocker set is
        refreshed, the channel is re-traced and the analytic link
        quality recorded — then any scheduled fault disturbance is
        layered on top.  Static obstacles already in the room are
        preserved.
        """
        # Imported here to avoid a package-level cycle (core.link pulls
        # in the channel package, which needs repro.sim initialised).
        from ..core.link import OtamLink

        if duration_s <= 0:
            raise ValueError("duration must be positive")
        steps = int(round(duration_s / self.time_step_s))
        static_blockers = list(self.room.blockers)
        schedule = self._fault_schedule(duration_s)
        times = np.arange(steps) * self.time_step_s
        otam = np.empty(steps)
        no_otam = np.empty(steps)
        inverted = np.empty(steps, dtype=bool)
        try:
            for i in range(steps):
                moving = [w.step(self.time_step_s) for w in self.walkers]
                self.room.blockers = static_blockers + moving
                link = OtamLink(placement=self.placement, room=self.room,
                                **self.link_kwargs)
                disturbance = (schedule.disturbance_at(float(times[i]),
                                                       self.fault_channel)
                               if schedule is not None else None)
                breakdown = link.snr_breakdown(disturbance=disturbance)
                otam[i] = breakdown.otam_snr_db
                no_otam[i] = breakdown.no_otam_snr_db
                inverted[i] = breakdown.inverted
        finally:
            self.room.blockers = static_blockers
        return LinkTrace(times_s=times, otam_snr_db=otam,
                         no_otam_snr_db=no_otam, inverted=inverted)
