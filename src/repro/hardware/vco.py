"""HMC533 voltage-controlled oscillator model (Fig. 7, section 8.1).

The paper measures the VCO sweeping 23.95-24.25 GHz as the control voltage
goes 3.5 V -> 4.9 V, covering the whole 24 GHz ISM band, and notes two
uses: channel selection (FDM) and the small per-bit frequency nudges that
implement the FSK half of joint ASK-FSK.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    VCO_FREQ_RANGE_HZ,
    VCO_MAX_OUTPUT_DBM,
    VCO_TUNE_VOLTAGE_RANGE_V,
)
from .components import ComponentSpec, RFComponent

__all__ = ["HMC533VCO"]


class HMC533VCO(RFComponent):
    """Behavioural HMC533: monotone tuning curve with soft saturation.

    The measured Fig. 7 curve is close to linear with a slight flattening
    toward the top of the range; we reproduce that with a mild quadratic
    bend (``curvature`` fraction of the span) while holding the measured
    endpoints exactly.
    """

    def __init__(self, curvature: float = 0.06,
                 phase_noise_dbc_hz: float = -100.0):
        super().__init__(ComponentSpec(
            name="HMC533 VCO", gain_db=0.0, noise_figure_db=0.0,
            power_w=0.405, cost_usd=35.0))
        if not 0.0 <= curvature < 0.5:
            raise ValueError("curvature must be in [0, 0.5)")
        self.curvature = curvature
        self.phase_noise_dbc_hz = phase_noise_dbc_hz
        self.v_min, self.v_max = VCO_TUNE_VOLTAGE_RANGE_V
        self.f_min, self.f_max = VCO_FREQ_RANGE_HZ
        self.max_output_dbm = VCO_MAX_OUTPUT_DBM

    def frequency_hz(self, tuning_voltage_v) -> np.ndarray:
        """Output frequency [Hz] for a control voltage [V].

        Voltages outside the usable range clamp to the endpoints, as the
        real part rails do.
        """
        v = np.clip(np.asarray(tuning_voltage_v, dtype=float),
                    self.v_min, self.v_max)
        x = (v - self.v_min) / (self.v_max - self.v_min)  # 0..1
        # Soft saturation: slope slightly higher at the bottom of the range.
        bent = x + self.curvature * x * (1.0 - x)
        return self.f_min + bent * (self.f_max - self.f_min)

    def voltage_for_frequency(self, frequency_hz: float) -> float:
        """Control voltage [V] that produces a target frequency.

        Inverts the tuning curve numerically (it is strictly monotone).
        Raises ``ValueError`` for frequencies outside the tuning range.
        """
        if not self.f_min <= frequency_hz <= self.f_max:
            raise ValueError(
                f"{frequency_hz/1e9:.3f} GHz outside tuning range "
                f"{self.f_min/1e9:.3f}-{self.f_max/1e9:.3f} GHz")
        lo, hi = self.v_min, self.v_max
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if float(self.frequency_hz(mid)) < frequency_hz:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def tuning_sensitivity_hz_per_v(self, tuning_voltage_v: float) -> float:
        """Local tuning slope [Hz/V] — sets how small FSK deviations can be."""
        dv = 1e-4
        f1 = float(self.frequency_hz(tuning_voltage_v - dv))
        f2 = float(self.frequency_hz(tuning_voltage_v + dv))
        return (f2 - f1) / (2.0 * dv)

    def covers_ism_band(self) -> bool:
        """Whether the tuning range spans the full 24 GHz ISM band."""
        from ..constants import ISM_24GHZ_HIGH_HZ, ISM_24GHZ_LOW_HZ

        return self.f_min <= ISM_24GHZ_LOW_HZ and self.f_max >= ISM_24GHZ_HIGH_HZ
