"""USRP-class baseband receiver model (the AP's digitiser, §8.2).

The paper's AP hands a 4 GHz IF to an N210 + CBX, which tunes, filters,
digitises and ships complex samples to the host.  This model applies the
parts of that chain that change what the demodulator sees: final
down-conversion with a (possibly offset) digital LO, an anti-alias
low-pass, AGC, and ADC quantisation.  Feeding a clean simulated capture
through :meth:`UsrpReceiver.capture` produces the "realistic capture"
the robustness tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.envelope import automatic_gain_control
from ..phy.filters import apply_fir, fir_lowpass
from ..phy.impairments import apply_cfo, apply_phase_noise, quantize
from ..phy.waveform import Waveform

__all__ = ["UsrpReceiver"]


@dataclass
class UsrpReceiver:
    """Behavioural digitiser: LO offset -> filter -> AGC -> ADC.

    Parameters
    ----------
    adc_bits:
        The N210 digitises at 14 bits; cheap captures often end up with
        ~8 effective bits after headroom.
    lo_offset_hz:
        Residual frequency error between the node's free-running VCO
        and the AP's LO chain (CFO as seen at baseband).
    lo_linewidth_hz:
        Combined oscillator phase-noise linewidth.
    antialias_fraction:
        Anti-alias cutoff as a fraction of Nyquist.
    """

    adc_bits: int = 12
    lo_offset_hz: float = 0.0
    lo_linewidth_hz: float = 0.0
    antialias_fraction: float = 0.9
    agc_target: float = 0.5

    def __post_init__(self):
        if self.adc_bits < 1:
            raise ValueError("ADC needs at least one bit")
        if not 0.0 < self.antialias_fraction <= 1.0:
            raise ValueError("anti-alias fraction must be in (0, 1]")
        if self.agc_target <= 0:
            raise ValueError("AGC target must be positive")

    def capture(self, wave: Waveform,
                rng: np.random.Generator | None = None) -> Waveform:
        """What the host receives for an ideal over-the-air waveform."""
        out = wave
        if self.lo_offset_hz:
            out = apply_cfo(out, self.lo_offset_hz)
        if self.lo_linewidth_hz:
            out = apply_phase_noise(out, self.lo_linewidth_hz, rng)
        if self.antialias_fraction < 1.0 and len(out) > 129:
            cutoff = self.antialias_fraction * out.sample_rate_hz / 2.0
            taps = fir_lowpass(cutoff, out.sample_rate_hz, num_taps=65)
            out = Waveform(apply_fir(out.samples, taps), out.sample_rate_hz)
        # AGC scales into the ADC's full-scale window; the demodulator is
        # scale-invariant so only the relative quantisation grid matters.
        magnitudes = np.abs(out.samples)
        scaled = automatic_gain_control(magnitudes, self.agc_target)
        if magnitudes.max() > 0:
            gain = (scaled.max() / magnitudes.max()
                    if magnitudes.max() > 0 else 1.0)
        else:
            gain = 1.0
        out = Waveform(out.samples * gain, out.sample_rate_hz)
        return quantize(out, self.adc_bits, full_scale=1.0)
