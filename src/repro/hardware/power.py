"""Energy accounting: power ledgers and energy-per-bit (Table 1, §9.1)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "energy_per_bit_j"]


def energy_per_bit_j(power_w: float, bitrate_bps: float) -> float:
    """Energy efficiency [J/bit] = power / bitrate.

    The paper's headline: 1.1 W at 100 Mbps -> 11 nJ/bit, below the
    802.11n module it compares against (17.5 nJ/bit).
    """
    if power_w < 0:
        raise ValueError("power cannot be negative")
    if bitrate_bps <= 0:
        raise ValueError("bitrate must be positive")
    return power_w / bitrate_bps


@dataclass
class EnergyModel:
    """Duty-cycled energy ledger for a transmitting node.

    IoT sensors rarely transmit continuously; this model splits time
    between active transmission (full node power) and idle (controller
    keeps running, mmWave section gated off) to estimate battery life —
    the kind of budget a camera integrator would actually run.
    """

    active_power_w: float
    idle_power_w: float
    bitrate_bps: float

    def __post_init__(self):
        if self.active_power_w < self.idle_power_w:
            raise ValueError("active power must be >= idle power")
        if self.idle_power_w < 0:
            raise ValueError("idle power cannot be negative")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")

    def duty_cycle_for_load(self, offered_load_bps: float) -> float:
        """Fraction of time spent transmitting to carry an offered load."""
        if offered_load_bps < 0:
            raise ValueError("offered load cannot be negative")
        if offered_load_bps > self.bitrate_bps:
            raise ValueError("offered load exceeds the link bitrate")
        return offered_load_bps / self.bitrate_bps

    def average_power_w(self, offered_load_bps: float) -> float:
        """Mean power [W] at a given offered load."""
        duty = self.duty_cycle_for_load(offered_load_bps)
        return duty * self.active_power_w + (1.0 - duty) * self.idle_power_w

    def energy_per_delivered_bit_j(self, offered_load_bps: float) -> float:
        """Total energy per *useful* bit, idle overhead included."""
        if offered_load_bps <= 0:
            raise ValueError("offered load must be positive")
        return self.average_power_w(offered_load_bps) / offered_load_bps

    def battery_life_hours(self, battery_wh: float,
                           offered_load_bps: float) -> float:
        """Runtime [h] on a battery for a sustained offered load."""
        if battery_wh <= 0:
            raise ValueError("battery capacity must be positive")
        return battery_wh / self.average_power_w(offered_load_bps)
