"""Energy accounting: power ledgers and energy-per-bit (Table 1, §9.1).

Two granularities live here:

* the paper's single **aggregate** figure (1.1 W while transmitting,
  :func:`energy_per_bit_j`, :class:`EnergyModel`) — unchanged, and still
  what Table 1 reports for the active node class;
* a **per-state** ledger (:class:`PowerStateProfile`) splitting the
  draw across tx / rx / idle / sleep, which is what the
  :mod:`repro.energy` battery state machine integrates.  The active
  class's profile puts the full 1.1 W on the tx state, so the aggregate
  numbers are reproduced exactly when the node never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from .chains import NodeHardware

__all__ = ["EnergyModel", "POWER_STATES", "PowerStateProfile",
           "active_node_profile", "energy_per_bit_j"]

POWER_STATES = ("tx", "rx", "idle", "sleep")
"""The four operating states a node's power ledger distinguishes."""

CONTROLLER_SLEEP_POWER_W = 0.005
"""Deep-sleep draw of a Pi-class controller with the RTC alarm armed
[W] — the residual the battery state machine pays while dormant."""


@dataclass(frozen=True)
class PowerStateProfile:
    """Per-state power draw [W]: the ledger duty cycling integrates.

    States are ordered by hunger — transmitting can never cost less
    than receiving, receiving less than idling, idling less than
    sleeping — which the constructor enforces so a mis-keyed profile
    cannot silently make sleep the expensive state.
    """

    tx_w: float
    """Draw while the mmWave section radiates (the paper's 1.1 W)."""

    rx_w: float
    """Draw while listening on the side channel (mmWave gated off)."""

    idle_w: float
    """Draw while awake but neither transmitting nor receiving."""

    sleep_w: float
    """Deep-sleep draw (controller RTC only)."""

    def __post_init__(self) -> None:
        if self.sleep_w < 0:
            raise ValueError("sleep power cannot be negative")
        if not self.tx_w >= self.rx_w >= self.idle_w >= self.sleep_w:
            raise ValueError(
                "power states must satisfy tx >= rx >= idle >= sleep")

    def draw_w(self, state: str) -> float:
        """Power draw [W] for one named operating state."""
        if state == "tx":
            return self.tx_w
        if state == "rx":
            return self.rx_w
        if state == "idle":
            return self.idle_w
        if state == "sleep":
            return self.sleep_w
        raise ValueError(
            f"unknown power state {state!r}; choose from {POWER_STATES}")

    def mean_power_w(self, duty: dict[str, float]) -> float:
        """Time-weighted mean draw [W] for a state-duty mix.

        ``duty`` maps state name to occupancy fraction; fractions must
        be non-negative and sum to 1 (within float tolerance).
        """
        total = 0.0
        weight = 0.0
        for state, fraction in duty.items():
            if fraction < 0:
                raise ValueError("duty fractions cannot be negative")
            total += self.draw_w(state) * fraction
            weight += fraction
        if abs(weight - 1.0) > 1e-9:
            raise ValueError("duty fractions must sum to 1")
        return total

    def energy_j(self, state: str, duration_s: float) -> float:
        """Energy [J] one state consumes over a duration."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        return self.draw_w(state) * duration_s


def active_node_profile(
        hardware: "NodeHardware | None" = None) -> PowerStateProfile:
    """The always-on active node's per-state ledger.

    Derived from the same :class:`~repro.hardware.chains.NodeHardware`
    ledger Table 1 uses: the full measured draw lands on the tx state
    (the prototype transmits whenever it is on), rx/idle keep only the
    controller running (mmWave section gated off — the assumption
    :class:`EnergyModel` already documents), and sleep is the
    controller's RTC-only deep-sleep residual.
    """
    from .chains import NodeHardware

    hw = hardware if hardware is not None else NodeHardware()
    controller_w = float(hw.controller_power_w or 0.0)
    sleep_w = min(CONTROLLER_SLEEP_POWER_W, controller_w)
    return PowerStateProfile(tx_w=hw.total_power_w,
                             rx_w=controller_w,
                             idle_w=controller_w,
                             sleep_w=sleep_w)


def energy_per_bit_j(power_w: float, bitrate_bps: float) -> float:
    """Energy efficiency [J/bit] = power / bitrate.

    The paper's headline: 1.1 W at 100 Mbps -> 11 nJ/bit, below the
    802.11n module it compares against (17.5 nJ/bit).
    """
    if power_w < 0:
        raise ValueError("power cannot be negative")
    if bitrate_bps <= 0:
        raise ValueError("bitrate must be positive")
    return power_w / bitrate_bps


@dataclass
class EnergyModel:
    """Duty-cycled energy ledger for a transmitting node.

    IoT sensors rarely transmit continuously; this model splits time
    between active transmission (full node power) and idle (controller
    keeps running, mmWave section gated off) to estimate battery life —
    the kind of budget a camera integrator would actually run.
    """

    active_power_w: float
    idle_power_w: float
    bitrate_bps: float

    def __post_init__(self):
        if self.active_power_w < self.idle_power_w:
            raise ValueError("active power must be >= idle power")
        if self.idle_power_w < 0:
            raise ValueError("idle power cannot be negative")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")

    def duty_cycle_for_load(self, offered_load_bps: float) -> float:
        """Fraction of time spent transmitting to carry an offered load."""
        if offered_load_bps < 0:
            raise ValueError("offered load cannot be negative")
        if offered_load_bps > self.bitrate_bps:
            raise ValueError("offered load exceeds the link bitrate")
        return offered_load_bps / self.bitrate_bps

    def average_power_w(self, offered_load_bps: float) -> float:
        """Mean power [W] at a given offered load."""
        duty = self.duty_cycle_for_load(offered_load_bps)
        return duty * self.active_power_w + (1.0 - duty) * self.idle_power_w

    def energy_per_delivered_bit_j(self, offered_load_bps: float) -> float:
        """Total energy per *useful* bit, idle overhead included."""
        if offered_load_bps <= 0:
            raise ValueError("offered load must be positive")
        return self.average_power_w(offered_load_bps) / offered_load_bps

    def battery_life_hours(self, battery_wh: float,
                           offered_load_bps: float) -> float:
        """Runtime [h] on a battery for a sustained offered load."""
        if battery_wh <= 0:
            raise ValueError("battery capacity must be positive")
        return battery_wh / self.average_power_w(offered_load_bps)
