"""Base types for RF component models."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComponentSpec", "RFComponent"]


@dataclass(frozen=True)
class ComponentSpec:
    """The per-component quantities the paper's arguments rest on.

    The cost/power case against conventional mmWave radios (section 1,
    "High power consumption" / "Expensive hardware") is made entirely in
    these terms, so every modelled part carries them.
    """

    name: str
    gain_db: float = 0.0
    noise_figure_db: float = 0.0
    power_w: float = 0.0
    cost_usd: float = 0.0

    def __post_init__(self):
        if self.power_w < 0:
            raise ValueError("power draw cannot be negative")
        if self.cost_usd < 0:
            raise ValueError("cost cannot be negative")


class RFComponent:
    """An RF stage with a spec; chains cascade these.

    Subclasses add behaviour (tuning curves, switching limits...).  For
    passive/lossy stages ``gain_db`` is negative and the noise figure of a
    passive device equals its loss, which subclasses enforce where it
    applies.
    """

    def __init__(self, spec: ComponentSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        """Component display name."""
        return self.spec.name

    @property
    def gain_db(self) -> float:
        """Small-signal power gain [dB] (negative = loss)."""
        return self.spec.gain_db

    @property
    def noise_figure_db(self) -> float:
        """Stage noise figure [dB]."""
        return self.spec.noise_figure_db

    @property
    def power_w(self) -> float:
        """DC power draw [W]."""
        return self.spec.power_w

    @property
    def cost_usd(self) -> float:
        """Unit cost [USD]."""
        return self.spec.cost_usd

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"gain={self.gain_db:+.1f} dB, nf={self.noise_figure_db:.1f} dB, "
                f"power={self.power_w:.2f} W, cost=${self.cost_usd:.0f})")
