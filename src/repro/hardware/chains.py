"""Assembled hardware chains: the mmX node and AP bill of materials.

These aggregate the component models into the totals the paper reports:
the node's 1.1 W / ~$110 / 10 dBm EIRP, and the AP's cascade noise figure
that anchors every SNR number in section 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import NODE_EIRP_DBM, NODE_POWER_W
from ..phy.snr import noise_figure_cascade_db
from .components import RFComponent
from .frontend import ADF5356PLL, HMC264SubharmonicMixer, HMC751LNA, MicrostripFilter
from .switch import ADRF5020Switch
from .vco import HMC533VCO

__all__ = ["NodeHardware", "AccessPointHardware"]


@dataclass
class NodeHardware:
    """The mmX node's mmWave section: VCO -> SPDT -> two antenna arrays.

    The digital controller (a Raspberry Pi in the prototype) is included
    in the power ledger but has no RF behaviour.  ``controller_power_w``
    defaults to whatever closes the ledger on the paper's measured 1.1 W
    total, which attributes ~0.7 W to the Pi + SPI glue — consistent with
    an idle-ish Pi 3.
    """

    vco: HMC533VCO = field(default_factory=HMC533VCO)
    switch: ADRF5020Switch = field(default_factory=ADRF5020Switch)
    controller_power_w: float | None = None
    antenna_cost_usd: float = 15.0

    def __post_init__(self):
        rf_power = self.vco.power_w + self.switch.power_w
        if self.controller_power_w is None:
            self.controller_power_w = NODE_POWER_W - rf_power
        if self.controller_power_w < 0:
            raise ValueError("controller power cannot be negative")

    @property
    def total_power_w(self) -> float:
        """Node power draw [W] — 1.1 W with default parts (section 9.1)."""
        return (self.vco.power_w + self.switch.power_w
                + self.controller_power_w)

    @property
    def total_cost_usd(self) -> float:
        """Node BOM cost [USD]; ~$110 with the controller board included."""
        controller_cost = 40.0  # Raspberry Pi 3 class board
        return (self.vco.cost_usd + self.switch.cost_usd
                + self.antenna_cost_usd + controller_cost)

    @property
    def max_bitrate_bps(self) -> float:
        """Bitrate cap — the switch's toggle limit (100 Mbps)."""
        return self.switch.max_bitrate_bps

    def eirp_dbm(self, antenna_peak_gain_dbi: float = 8.0) -> float:
        """Peak EIRP [dBm]: VCO output - switch loss + array gain.

        With default parts: 12 - 2 + 8 = 18 dBm of *available* EIRP;
        the prototype backs the radiated power off to the FCC-compliant
        10 dBm (section 8.1), which :attr:`radiated_eirp_dbm` reports.
        """
        return (self.vco.max_output_dbm - self.switch.insertion_loss_db
                + antenna_peak_gain_dbi)

    @property
    def radiated_eirp_dbm(self) -> float:
        """The FCC-compliant operating EIRP the paper quotes (10 dBm)."""
        return NODE_EIRP_DBM

    def energy_per_bit_j(self, bitrate_bps: float | None = None) -> float:
        """Energy per bit [J] at a bitrate (default: the 100 Mbps cap)."""
        rate = bitrate_bps or self.max_bitrate_bps
        self.switch.validate_bitrate(rate)
        return self.total_power_w / rate


@dataclass
class AccessPointHardware:
    """The mmX AP chain: LNA -> filter -> sub-harmonic mixer (-> USRP)."""

    lna: HMC751LNA = field(default_factory=HMC751LNA)
    bandpass: MicrostripFilter = field(default_factory=MicrostripFilter)
    mixer: HMC264SubharmonicMixer = field(default_factory=HMC264SubharmonicMixer)
    pll: ADF5356PLL = field(default_factory=ADF5356PLL)
    baseband_noise_figure_db: float = 8.0

    def stages(self) -> list[RFComponent]:
        """Signal-path stages in cascade order."""
        return [self.lna, self.bandpass, self.mixer]

    @property
    def cascade_noise_figure_db(self) -> float:
        """System noise figure via Friis — ~2.2 dB, LNA-dominated.

        This is the quantitative payoff of putting the LNA first: the
        filter's 5 dB and the mixer's ~9 dB losses are divided down by
        the LNA's 25 dB gain.
        """
        chain = [(c.gain_db, c.noise_figure_db) for c in self.stages()]
        chain.append((0.0, self.baseband_noise_figure_db))
        return noise_figure_cascade_db(chain)

    @property
    def cascade_gain_db(self) -> float:
        """Net conversion gain of the analog chain [dB]."""
        return sum(c.gain_db for c in self.stages())

    @property
    def total_power_w(self) -> float:
        """AP front-end power draw (excluding the USRP baseband)."""
        return sum(c.power_w for c in self.stages()) + self.pll.power_w

    @property
    def total_cost_usd(self) -> float:
        """AP front-end BOM cost (excluding the USRP baseband)."""
        antenna = 10.0
        return sum(c.cost_usd for c in self.stages()) + self.pll.cost_usd + antenna

    def if_frequency_hz(self, rf_frequency_hz: float = 24.0e9) -> float:
        """IF the baseband digitises for a given RF carrier (4 GHz at 24 GHz)."""
        return self.mixer.output_if_hz(rf_frequency_hz,
                                       self.pll.output_frequency_hz)
