"""AP front-end stages: LNA, microstrip filter, sub-harmonic mixer, PLL.

Section 8.2 builds the mmX AP as LNA (HMC751, 25 dB gain / 2 dB NF at
24 GHz) -> coupled-line microstrip filter (5 dB passband IL, free on the
PCB) -> HMC264 sub-harmonic mixer driven by an ADF5356 PLL at 10 GHz
(doubled internally, so the costly mmWave PLL is avoided) -> 4 GHz IF
into a USRP.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    AP_FILTER_INSERTION_LOSS_DB,
    AP_LNA_GAIN_DB,
    AP_LNA_NOISE_FIGURE_DB,
    AP_LO_FREQUENCY_HZ,
)
from .components import ComponentSpec, RFComponent

__all__ = [
    "HMC751LNA",
    "MicrostripFilter",
    "HMC264SubharmonicMixer",
    "ADF5356PLL",
]


class HMC751LNA(RFComponent):
    """HMC751 low-noise amplifier: first in the chain by design.

    Friis' formula makes the first stage's noise figure dominate when its
    gain is high — the reason the paper places the LNA before the lossy
    filter (section 8.2 / section 5.2).
    """

    def __init__(self, gain_db: float = AP_LNA_GAIN_DB,
                 noise_figure_db: float = AP_LNA_NOISE_FIGURE_DB):
        if gain_db <= 0:
            raise ValueError("LNA gain must be positive")
        super().__init__(ComponentSpec(
            name="HMC751 LNA", gain_db=gain_db,
            noise_figure_db=noise_figure_db, power_w=0.165, cost_usd=40.0))


class MicrostripFilter(RFComponent):
    """Coupled-line microstrip band-pass filter printed on the PCB.

    Costs nothing (it is copper traces), passes the 24 GHz ISM band with
    5 dB insertion loss, and provides out-of-band rejection.
    """

    def __init__(self,
                 center_frequency_hz: float = 24.0e9,
                 bandwidth_hz: float = 1.0e9,
                 insertion_loss_db: float = AP_FILTER_INSERTION_LOSS_DB,
                 stopband_rejection_db: float = 40.0):
        if bandwidth_hz <= 0:
            raise ValueError("filter bandwidth must be positive")
        if insertion_loss_db < 0 or stopband_rejection_db <= insertion_loss_db:
            raise ValueError("need 0 <= insertion loss < stopband rejection")
        super().__init__(ComponentSpec(
            name="microstrip filter", gain_db=-insertion_loss_db,
            noise_figure_db=insertion_loss_db, power_w=0.0, cost_usd=0.0))
        self.center_frequency_hz = center_frequency_hz
        self.bandwidth_hz = bandwidth_hz
        self.stopband_rejection_db = stopband_rejection_db

    def attenuation_db(self, frequency_hz) -> np.ndarray:
        """Attenuation at a frequency: passband IL or stopband rejection.

        A simple raised-cosine transition over half a bandwidth on each
        side keeps the response continuous.
        """
        f = np.asarray(frequency_hz, dtype=float)
        offset = np.abs(f - self.center_frequency_hz)
        half_bw = self.bandwidth_hz / 2.0
        transition = half_bw  # transition band width
        il = -self.spec.gain_db
        ramp = np.clip((offset - half_bw) / transition, 0.0, 1.0)
        shape = 0.5 * (1.0 - np.cos(np.pi * ramp))  # 0 in band -> 1 stopband
        return il + shape * (self.stopband_rejection_db - il)


class HMC264SubharmonicMixer(RFComponent):
    """HMC264LC3B sub-harmonic mixer: internally doubles the LO.

    Fed with 10 GHz it behaves as a 20 GHz LO, down-converting 24 GHz RF
    to a 4 GHz IF — which is why the AP can use a cheap sub-mmWave PLL.
    """

    def __init__(self, conversion_loss_db: float = 9.0):
        if conversion_loss_db < 0:
            raise ValueError("conversion loss cannot be negative")
        super().__init__(ComponentSpec(
            name="HMC264 sub-harmonic mixer", gain_db=-conversion_loss_db,
            noise_figure_db=conversion_loss_db, power_w=0.04, cost_usd=50.0))

    def output_if_hz(self, rf_frequency_hz: float,
                     lo_frequency_hz: float = AP_LO_FREQUENCY_HZ) -> float:
        """IF frequency for an RF input: ``|RF - 2*LO|`` (LO doubling)."""
        if rf_frequency_hz <= 0 or lo_frequency_hz <= 0:
            raise ValueError("frequencies must be positive")
        return abs(rf_frequency_hz - 2.0 * lo_frequency_hz)


class ADF5356PLL(RFComponent):
    """ADF5356 synthesiser generating the 10 GHz LO.

    Operating the PLL at 10 GHz instead of 20-24 GHz is the cost/power
    trick section 5.2 describes; a mmWave PLL would be "costly and power
    hungry".
    """

    def __init__(self, output_frequency_hz: float = AP_LO_FREQUENCY_HZ):
        if output_frequency_hz <= 0:
            raise ValueError("LO frequency must be positive")
        super().__init__(ComponentSpec(
            name="ADF5356 PLL", gain_db=0.0, noise_figure_db=0.0,
            power_w=0.4, cost_usd=45.0))
        self.output_frequency_hz = output_frequency_hz

    def effective_lo_hz(self) -> float:
        """LO seen by the RF port after the mixer's internal doubling."""
        return 2.0 * self.output_frequency_hz

    def expected_if_hz(self, rf_frequency_hz: float = 24.0e9) -> float:
        """IF produced for a given RF carrier; 4 GHz for 24 GHz RF."""
        return abs(rf_frequency_hz - self.effective_lo_hz())
