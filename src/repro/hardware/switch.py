"""ADRF5020 SPDT switch model (section 8.1).

The switch is the node's modulator: the digital controller toggles it to
steer the VCO tone into Beam 1 or Beam 0.  Its datasheet limits are load
bearing: the 100 MHz maximum toggle rate caps the node at 100 Mbps
(section 9.1), the <2 dB insertion loss sits in the EIRP budget, and the
65 dB isolation bounds how much carrier leaks into the *unselected* beam.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    SWITCH_INSERTION_LOSS_DB,
    SWITCH_ISOLATION_DB,
    SWITCH_MAX_RATE_HZ,
)
from ..units import db_to_amplitude
from .components import ComponentSpec, RFComponent

__all__ = ["ADRF5020Switch"]


class ADRF5020Switch(RFComponent):
    """Behavioural SPDT: two output ports, one selected per data bit."""

    def __init__(self,
                 insertion_loss_db: float = SWITCH_INSERTION_LOSS_DB,
                 isolation_db: float = SWITCH_ISOLATION_DB,
                 max_rate_hz: float = SWITCH_MAX_RATE_HZ):
        if insertion_loss_db < 0:
            raise ValueError("insertion loss cannot be negative")
        if isolation_db <= insertion_loss_db:
            raise ValueError("isolation must exceed insertion loss")
        if max_rate_hz <= 0:
            raise ValueError("max switching rate must be positive")
        super().__init__(ComponentSpec(
            name="ADRF5020 SPDT", gain_db=-insertion_loss_db,
            noise_figure_db=insertion_loss_db, power_w=0.002, cost_usd=20.0))
        self.insertion_loss_db = insertion_loss_db
        self.isolation_db = isolation_db
        self.max_rate_hz = max_rate_hz

    @property
    def max_bitrate_bps(self) -> float:
        """One beam toggle per bit: bitrate cap equals the toggle rate."""
        return self.max_rate_hz

    def validate_bitrate(self, bitrate_bps: float) -> None:
        """Raise if a requested bitrate exceeds the switching limit."""
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if bitrate_bps > self.max_rate_hz:
            raise ValueError(
                f"bitrate {bitrate_bps/1e6:.0f} Mbps exceeds the switch's "
                f"{self.max_rate_hz/1e6:.0f} MHz toggle limit")

    def port_amplitudes(self, selected_port: int) -> tuple[float, float]:
        """Linear field amplitude delivered to (port0, port1).

        The selected port sees the input attenuated by the insertion
        loss; the other port sees it attenuated by the isolation — the
        small leakage that radiates out of the *wrong* beam.
        """
        if selected_port not in (0, 1):
            raise ValueError("selected_port must be 0 or 1")
        through = float(db_to_amplitude(-self.insertion_loss_db))
        leak = float(db_to_amplitude(-self.isolation_db))
        if selected_port == 0:
            return through, leak
        return leak, through

    def port_amplitude_matrix(self, bits) -> np.ndarray:
        """Per-bit (n, 2) matrix of amplitudes on (port0, port1).

        Port 1 carries Beam 1 ('1' bits), port 0 carries Beam 0.
        """
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        out = np.empty((bits.size, 2), dtype=float)
        for value in (0, 1):
            amps = self.port_amplitudes(value)
            out[bits == value, 0] = amps[0]
            out[bits == value, 1] = amps[1]
        return out
