"""Behavioural models of the mmX bill of materials (sections 5 and 8).

No RF hardware exists in this reproduction; instead each component the
paper names — HMC533 VCO, ADRF5020 SPDT switch, HMC751 LNA, HMC264
sub-harmonic mixer, ADF5356 PLL, the coupled-line microstrip filter —
is modelled by the datasheet behaviour the evaluation actually depends
on: tuning curves, gains, noise figures, losses, switching limits, power
draw and unit cost.  Assembled chains expose cascade noise figure and
total power/cost, which feed Table 1 and the 11 nJ/bit microbenchmark.
"""

from .chains import NodeHardware, AccessPointHardware
from .components import RFComponent, ComponentSpec
from .frontend import (
    HMC751LNA,
    HMC264SubharmonicMixer,
    ADF5356PLL,
    MicrostripFilter,
)
from .power import EnergyModel, energy_per_bit_j
from .switch import ADRF5020Switch
from .usrp import UsrpReceiver
from .vco import HMC533VCO

__all__ = [
    "ADF5356PLL",
    "ADRF5020Switch",
    "AccessPointHardware",
    "ComponentSpec",
    "EnergyModel",
    "HMC264SubharmonicMixer",
    "HMC533VCO",
    "HMC751LNA",
    "MicrostripFilter",
    "NodeHardware",
    "RFComponent",
    "UsrpReceiver",
    "energy_per_bit_j",
]
