"""Behavioural models of the mmX bill of materials (sections 5 and 8).

No RF hardware exists in this reproduction; instead each component the
paper names — HMC533 VCO, ADRF5020 SPDT switch, HMC751 LNA, HMC264
sub-harmonic mixer, ADF5356 PLL, the coupled-line microstrip filter —
is modelled by the datasheet behaviour the evaluation actually depends
on: tuning curves, gains, noise figures, losses, switching limits, power
draw and unit cost.  Assembled chains expose cascade noise figure and
total power/cost, which feed Table 1 and the 11 nJ/bit microbenchmark.
"""

from .components import RFComponent, ComponentSpec
from .vco import HMC533VCO
from .switch import ADRF5020Switch
from .frontend import (
    HMC751LNA,
    HMC264SubharmonicMixer,
    ADF5356PLL,
    MicrostripFilter,
)
from .chains import NodeHardware, AccessPointHardware
from .usrp import UsrpReceiver
from .power import EnergyModel, energy_per_bit_j

__all__ = [name for name in dir() if not name.startswith("_")]
