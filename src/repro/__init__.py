"""mmX — a millimeter wave network for billions of things.

Reproduction of Mazaheri, Ameli, Abedi & Abari (SIGCOMM 2019).  mmX is a
24 GHz network for low-power, low-cost IoT devices built on Over-The-Air
Modulation (OTAM): the node transmits a pure carrier and keys data into
*which of two fixed orthogonal beams* radiates it, so the sparse mmWave
channel itself creates the ASK signal at the AP — no phased array, no
beam searching, no feedback.

Quickstart
----------
>>> import numpy as np
>>> from repro import (default_lab_room, PlacementSampler, OtamLink,
...                    default_preamble_bits, random_bits)
>>> rng = np.random.default_rng(0)
>>> room = default_lab_room()
>>> placement = PlacementSampler(room, rng).sample()
>>> link = OtamLink(placement=placement, room=room)
>>> bits = np.concatenate([default_preamble_bits(), random_bits(128, rng)])
>>> report = link.simulate_transmission(bits, rng=rng)
>>> report.ber  # doctest: +SKIP
0.0

Layout
------
``repro.core``      OTAM, joint ASK-FSK, packets, the end-to-end link
``repro.phy``       DSP, BER theory, coding, preambles
``repro.antenna``   patch arrays, the orthogonal beam pair, phased arrays
``repro.channel``   ray tracing, path loss, multipath, noise
``repro.hardware``  behavioural component and chain models
``repro.node``      MmxNode / MmxAccessPoint devices
``repro.network``   FDM, TMA-based SDM, interference, multi-node sims
``repro.admission`` million-node spectrum/SDM admission control
``repro.energy``    node classes, backscatter tags, harvesting duty cycles
``repro.baselines`` beam-search baselines and Table 1 platforms
``repro.sim``       rooms, blockers, mobility, placements, Monte Carlo
``repro.faults``    seeded fault-injection processes and schedules
``repro.resilience`` link health monitoring and the recovery ladder
``repro.transport`` reliable transport: ARQ, adaptive RTO, circuit breaker
``repro.cluster``   AP checkpointing, heartbeats, multi-AP failover
``repro.engine``    sharded, resumable, parallel Monte-Carlo campaigns
``repro.telemetry`` sim-time metrics, spans, deterministic exporters
``repro.experiments`` one module per paper table/figure
"""

from .admission import (
    AdmissionController,
    SdmPacker,
    SpectrumBook,
    run_saturation,
)
from .antenna import OrthogonalBeamPair, PhasedArray, design_mmx_beams
from .baselines import (
    ExhaustiveBeamSearch,
    FixedBeamNode,
    HierarchicalBeamSearch,
    comparison_table,
)
from .channel import ChannelResponse, trace_paths, two_beam_gains
from .cluster import (
    ApCheckpoint,
    Cluster,
    FailoverSimulation,
    HeartbeatMonitor,
)
from .constants import CARRIER_FREQUENCY_HZ, NODE_EIRP_DBM
from .core import (
    AskFskConfig,
    DemodResult,
    JointDemodulator,
    LinkReport,
    OtamLink,
    OtamModulator,
    Packet,
    PacketCodec,
    PacketError,
    SnrBreakdown,
)
from .energy import (
    BackscatterLink,
    CarrierScheduler,
    EnergyStateMachine,
    EnergyStore,
    HarvestModel,
    NodeClassSpec,
    node_class,
    registered_classes,
    run_compare,
    run_outage,
)
from .engine import (
    Campaign,
    CampaignPlan,
    CampaignResult,
    ProcessPool,
    ResultStore,
    SerialExecutor,
    run_campaign,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    LinkDisturbance,
    scenario_injector,
)
from .hardware import AccessPointHardware, NodeHardware
from .network import (
    FdmAllocator,
    InterferenceModel,
    MultiNodeNetwork,
    TimeModulatedArray,
)
from .node import DigitalController, MmxAccessPoint, MmxNode
from .phy import default_preamble_bits, random_bits
from .resilience import (
    ChaosResult,
    ChaosSimulation,
    LinkHealthMonitor,
    LinkHealthReport,
    LinkSupervisor,
)
from .sim import (
    Blocker,
    MonteCarloRunner,
    Placement,
    PlacementSampler,
    Point,
    Room,
    default_lab_room,
)
from .telemetry import (
    MetricsRegistry,
    NullRecorder,
    Recorder,
    SimClock,
    TelemetryRecorder,
    TelemetrySnapshot,
    Tracer,
)
from .transport import (
    AdaptiveRetransmission,
    CircuitBreaker,
    ReliableLink,
    RtoEstimator,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPointHardware",
    "AdaptiveRetransmission",
    "AdmissionController",
    "ApCheckpoint",
    "AskFskConfig",
    "BackscatterLink",
    "Blocker",
    "CARRIER_FREQUENCY_HZ",
    "Campaign",
    "CampaignPlan",
    "CampaignResult",
    "CarrierScheduler",
    "ChannelResponse",
    "ChaosResult",
    "ChaosSimulation",
    "CircuitBreaker",
    "Cluster",
    "DemodResult",
    "DigitalController",
    "EnergyStateMachine",
    "EnergyStore",
    "ExhaustiveBeamSearch",
    "FailoverSimulation",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FdmAllocator",
    "FixedBeamNode",
    "HarvestModel",
    "HeartbeatMonitor",
    "HierarchicalBeamSearch",
    "InterferenceModel",
    "JointDemodulator",
    "LinkDisturbance",
    "LinkHealthMonitor",
    "LinkHealthReport",
    "LinkReport",
    "LinkSupervisor",
    "MetricsRegistry",
    "MmxAccessPoint",
    "MmxNode",
    "MonteCarloRunner",
    "MultiNodeNetwork",
    "NODE_EIRP_DBM",
    "NodeClassSpec",
    "NodeHardware",
    "NullRecorder",
    "OrthogonalBeamPair",
    "OtamLink",
    "OtamModulator",
    "Packet",
    "PacketCodec",
    "PacketError",
    "PhasedArray",
    "Placement",
    "PlacementSampler",
    "Point",
    "ProcessPool",
    "Recorder",
    "ReliableLink",
    "ResultStore",
    "Room",
    "RtoEstimator",
    "SerialExecutor",
    "SimClock",
    "SdmPacker",
    "SnrBreakdown",
    "SpectrumBook",
    "TelemetryRecorder",
    "TelemetrySnapshot",
    "TimeModulatedArray",
    "Tracer",
    "comparison_table",
    "default_lab_room",
    "default_preamble_bits",
    "design_mmx_beams",
    "node_class",
    "random_bits",
    "registered_classes",
    "run_campaign",
    "run_compare",
    "run_outage",
    "run_saturation",
    "scenario_injector",
    "trace_paths",
    "two_beam_gains",
]
