"""Control-plane resilience for multi-AP mmX deployments.

Three pieces, layered bottom-up:

* :mod:`~repro.cluster.checkpoint` — versioned, integrity-hashed
  snapshots of one AP's control-plane state (FDM map, registrations,
  TMA slots) that restore bit-for-bit;
* :mod:`~repro.cluster.heartbeat` — deterministic simulated-time
  failure detection with an explicit detection-latency window;
* :mod:`~repro.cluster.failover` — the :class:`Cluster` coordinator
  (crash → detect → re-associate → checkpointed recovery) and the
  :class:`FailoverSimulation` that scores it against a frozen
  single-AP baseline.
"""

from .checkpoint import (  # noqa: F401
    CHECKPOINT_SCHEMA_VERSION,
    ApCheckpoint,
    CheckpointError,
)
from .failover import (  # noqa: F401
    ApMember,
    Cluster,
    FailoverResult,
    FailoverSimulation,
)
from .heartbeat import (  # noqa: F401
    NODE_ACTIVE,
    NODE_DORMANT,
    NODE_LIVENESS,
    NODE_SILENT,
    HeartbeatMonitor,
    NodeLivenessTracker,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "ApCheckpoint",
    "CheckpointError",
    "ApMember",
    "Cluster",
    "FailoverResult",
    "FailoverSimulation",
    "HeartbeatMonitor",
    "NODE_ACTIVE",
    "NODE_DORMANT",
    "NODE_LIVENESS",
    "NODE_SILENT",
    "NodeLivenessTracker",
]
