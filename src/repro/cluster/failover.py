"""Multi-AP failover: heartbeat detection, re-association, recovery.

Section 1 pitches mmX deployments with many APs covering a large space
(malls, libraries, parks).  One AP crashing must not silence its nodes
for the rest of the run — yet that is exactly what the seed repository
(and the frozen baseline here) does, because all control-plane state
lives in the dead AP's memory and nodes are feedback-free.

:class:`Cluster` coordinates a set of live
:class:`~repro.node.access_point.MmxAccessPoint` instances:

* every alive AP beats into a :class:`~repro.cluster.heartbeat.
  HeartbeatMonitor`; a crash is *detected*, not announced, so nodes
  stay stranded for up to ``detection_latency_s``;
* on detection, each stranded node re-associates to the best surviving
  AP in its preference order (descending link quality), falling down
  the list when an allocator is full and landing in ``orphaned`` only
  when every surviving AP is exhausted;
* alive APs checkpoint on a cadence
  (:class:`~repro.cluster.checkpoint.ApCheckpoint`), so a rebooted AP
  restores its exact pre-crash spectrum map and re-adopts whichever of
  its nodes did not migrate while it was down.

:class:`FailoverSimulation` scores the whole story in expectation
(deterministically — per-step frame-survival probabilities, the same
accounting style as :class:`repro.resilience.chaos.ChaosSimulation`)
against a frozen single-AP baseline under an ``ap_crash`` fault
schedule.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..durability.io import FsBackend
from ..faults.injector import FaultSchedule
from ..network.fdm import SpectrumExhausted
from ..node.access_point import MmxAccessPoint
from ..sim.environment import Room
from ..sim.geometry import Point
from ..telemetry import NullRecorder, TelemetryRecorder
from ..units import FloatArray
from .checkpoint import ApCheckpoint, CheckpointError
from .heartbeat import (
    NODE_DORMANT,
    NODE_SILENT,
    HeartbeatMonitor,
    NodeLivenessTracker,
)

__all__ = ["ApMember", "Cluster", "FailoverResult", "FailoverSimulation"]


@dataclass
class ApMember:
    """One AP's slot in a cluster: the device, liveness, last checkpoint."""

    ap_id: int
    ap: MmxAccessPoint
    alive: bool = True
    checkpoint: ApCheckpoint | None = None


class Cluster:
    """A set of APs sharing responsibility for one node population."""

    def __init__(self, aps: Sequence[MmxAccessPoint],
                 heartbeat: HeartbeatMonitor | None = None,
                 telemetry: TelemetryRecorder | None = None,
                 checkpoint_dir: str | Path | None = None,
                 fs: FsBackend | None = None,
                 liveness: NodeLivenessTracker | None = None,
                 silence_failover: bool = False):
        if not aps:
            raise ValueError("a cluster needs at least one AP")
        self.members: dict[int, ApMember] = {
            i: ApMember(ap_id=i, ap=ap) for i, ap in enumerate(aps)}
        self.monitor = heartbeat or HeartbeatMonitor()
        for ap_id in self.members:
            self.monitor.watch(ap_id, 0.0)
        self.serving: dict[int, int] = {}
        self.orphaned: set[int] = set()
        self.failover_count = 0
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Sink for the ``cluster.*`` metric family: heartbeat-death /
        failover / orphan / checkpoint / recovery counters, the alive-AP
        gauge, and one ``cluster.ap_outage`` span per declared death
        (closed on recovery, so its sim-time duration is the failover
        window).  The driver stepping the cluster owns the clock."""
        self._preferences: dict[int, tuple[int, ...]] = {}
        self._rates: dict[int, float] = {}
        self._ap_outage_spans: dict[int, Any] = {}
        self.checkpoint_dir = (None if checkpoint_dir is None
                               else Path(checkpoint_dir))
        """When set, :meth:`checkpoint_all` also persists every capture
        to ``<dir>/ap<ID>.ckpt`` (atomically, via the
        :mod:`repro.durability` seam), and :meth:`recover` falls back to
        the on-disk copy when the in-memory one is gone — the process-
        restart story the in-memory checkpoints cannot cover."""
        self.fs = fs
        """Injectable durability backend for checkpoint persistence."""
        self.recovery_errors: list[tuple[int, str]] = []
        """``(ap_id, reason)`` per checkpoint that could not be used at
        recovery time (corrupt, unreadable).  Recovery *reports* the
        damage and reboots the AP empty instead of raising mid-failover
        — ``repro fsck`` on the checkpoint file tells the rest."""
        self.liveness = liveness
        """Optional per-node liveness tracker.  When present,
        :meth:`register_node` starts watching each admitted node and
        :meth:`node_heard` / :meth:`node_dormant` feed it; liveness
        reason codes then qualify node silence in :meth:`step`."""
        self.silence_failover = bool(silence_failover)
        """Opt-in second detection path: when every *awake* node an
        alive-looking AP serves has gone :data:`NODE_SILENT`, treat the
        AP's backhaul heartbeat as a liar (a beating AP whose whole
        radio plane is mute) and fail its nodes over.  Nodes classified
        :data:`NODE_DORMANT` are exempt — a fleet recharging in lock
        step is silent *on purpose* and must never count as evidence —
        and an AP serving only dormant nodes is never suspected.
        Requires ``liveness``."""
        if self.silence_failover and self.liveness is None:
            raise ValueError("silence_failover requires a liveness tracker")
        self.silence_failovers = 0
        """How many APs were failed over on node-silence evidence."""

    # --- membership -------------------------------------------------------

    def alive_ap_ids(self) -> list[int]:
        """IDs of every AP currently up (sorted)."""
        return sorted(i for i, m in self.members.items() if m.alive)

    def serving_ap(self, node_id: int) -> int | None:
        """The AP currently holding a node's registration (None if the
        node is orphaned)."""
        if node_id in self.orphaned:
            return None
        return self.serving.get(node_id)

    def is_served(self, node_id: int) -> bool:
        """Whether a node's serving AP is up *right now*.

        False both for orphans and for nodes stranded on a crashed AP
        whose death the heartbeat has not yet declared — the stranded
        window is real downtime and is scored as such.
        """
        ap_id = self.serving_ap(node_id)
        return ap_id is not None and self.members[ap_id].alive

    def register_node(self, node_id: int, demanded_rate_bps: float,
                      preference: Sequence[int] | None = None,
                      now_s: float = 0.0) -> int:
        """Admit a node on the best AP in its preference order.

        ``preference`` ranks AP ids best-first (defaults to id order);
        it is remembered so failover re-runs the same ranking against
        the surviving set.  Raises :class:`SpectrumExhausted` if no
        alive AP can fit the demand.  With a liveness tracker attached,
        admission counts as the node's first uplink at ``now_s``.
        """
        if node_id in self.serving or node_id in self.orphaned:
            raise ValueError(f"node {node_id} is already in the cluster")
        ranking = tuple(int(p) for p in (
            sorted(self.members) if preference is None else preference))
        for ap_id in ranking:
            member = self.members.get(ap_id)
            if member is None or not member.alive:
                continue
            try:
                member.ap.register_node(node_id, demanded_rate_bps)
            except SpectrumExhausted:
                continue
            self.serving[node_id] = ap_id
            self._preferences[node_id] = ranking
            self._rates[node_id] = float(demanded_rate_bps)
            if self.liveness is not None:
                self.liveness.watch(node_id, now_s)
            return ap_id
        raise SpectrumExhausted(
            f"no alive AP can admit node {node_id}")

    # --- node liveness ----------------------------------------------------

    def node_heard(self, node_id: int, now_s: float) -> None:
        """The serving AP decoded an uplink from a node (wakes it)."""
        if self.liveness is not None:
            self.liveness.heard(node_id, now_s)

    def node_dormant(self, node_id: int) -> None:
        """The energy layer declared a node asleep-on-purpose."""
        if self.liveness is not None:
            self.liveness.mark_dormant(node_id)

    # --- checkpointing ----------------------------------------------------

    def checkpoint_path(self, ap_id: int) -> Path:
        """Where one AP's on-disk checkpoint lives (dir must be set)."""
        if self.checkpoint_dir is None:
            raise ValueError("cluster has no checkpoint_dir")
        return self.checkpoint_dir / f"ap{ap_id}.ckpt"

    def checkpoint_all(self) -> dict[int, ApCheckpoint]:
        """Snapshot every alive AP (dead ones keep their last capture).

        With a ``checkpoint_dir``, each fresh capture is also persisted
        atomically; a crash mid-save leaves the previous on-disk
        checkpoint intact, never a torn file.
        """
        out: dict[int, ApCheckpoint] = {}
        captured = 0
        for member in self.members.values():
            if member.alive:
                member.checkpoint = ApCheckpoint.capture(member.ap)
                captured += 1
                if self.checkpoint_dir is not None:
                    member.checkpoint.save(
                        self.checkpoint_path(member.ap_id), fs=self.fs)
            if member.checkpoint is not None:
                out[member.ap_id] = member.checkpoint
        if self.telemetry.enabled and captured:
            self.telemetry.count("cluster.checkpoints", captured)
        return out

    # --- failure and recovery ---------------------------------------------

    def _report_bad_checkpoint(self, ap_id: int, reason: str) -> None:
        """Record (never raise) one unusable checkpoint at recovery."""
        self.recovery_errors.append((ap_id, reason))
        if self.telemetry.enabled:
            self.telemetry.count("cluster.corrupt_checkpoints")

    def crash(self, ap_id: int) -> None:
        """Kill an AP (it silently stops beating; detection comes later)."""
        member = self.members[ap_id]
        member.alive = False

    def step(self, now_s: float) -> dict[int, list[int]]:
        """One heartbeat round: alive APs beat, deaths trigger failover.

        With :attr:`silence_failover` armed, an alive-looking AP whose
        whole *awake* served population is :data:`NODE_SILENT` is also
        failed over — its backhaul beat no longer vouches for its radio
        plane.  Dormant nodes never feed that suspicion: a duty-cycled
        fleet recharging in lock step keeps its AP untouched.

        Returns ``{dead_ap_id: [migrated node ids]}`` for every death
        declared this step.
        """
        for member in self.members.values():
            if member.alive:
                self.monitor.beat(member.ap_id, now_s)
        migrations: dict[int, list[int]] = {}
        tel = self.telemetry
        for ap_id in self.monitor.newly_dead(now_s):
            if tel.enabled:
                tel.count("cluster.heartbeat_deaths")
                if ap_id not in self._ap_outage_spans:
                    self._ap_outage_spans[ap_id] = tel.begin(
                        "cluster.ap_outage", ap_id=ap_id)
            migrations[ap_id] = self.fail_over(ap_id)
        for ap_id in self._silence_suspects(now_s):
            if tel.enabled:
                tel.count("cluster.silence_failovers")
            self.crash(ap_id)
            self.silence_failovers += 1
            migrations[ap_id] = self.fail_over(ap_id)
        if tel.enabled:
            tel.gauge("cluster.alive_aps", float(len(self.alive_ap_ids())))
            if self.liveness is not None:
                codes = self.liveness.classify_all(now_s)
                tel.gauge("cluster.dormant_nodes", float(
                    sum(c == NODE_DORMANT for c in codes.values())))
        return migrations

    def _silence_suspects(self, now_s: float) -> list[int]:
        """Alive APs condemned by their nodes' unexplained silence.

        An AP is suspect only when it serves at least one *awake*
        tracked node and every one of them is :data:`NODE_SILENT`.
        Dormant nodes are invisible to the test — declared sleep is not
        evidence — so a fully-dormant fleet can never condemn its AP.
        """
        if self.liveness is None or not self.silence_failover:
            return []
        suspects = []
        for ap_id in self.alive_ap_ids():
            codes = [self.liveness.classify(n, now_s)
                     for n, a in self.serving.items()
                     if a == ap_id and n in self.liveness]
            awake = [c for c in codes if c != NODE_DORMANT]
            if awake and all(c == NODE_SILENT for c in awake):
                suspects.append(ap_id)
        return suspects

    def fail_over(self, dead_ap_id: int) -> list[int]:
        """Re-associate every node stranded on a dead AP.

        Each node walks its preference order over the *surviving* APs;
        a full allocator means falling to the next choice, and a node
        no survivor can fit lands in ``orphaned`` (still remembered, so
        recovery can re-adopt it).  Returns the migrated node ids.
        """
        stranded = sorted(n for n, a in self.serving.items()
                          if a == dead_ap_id)
        migrated: list[int] = []
        for node_id in stranded:
            new_ap: int | None = None
            for ap_id in self._preferences[node_id]:
                member = self.members.get(ap_id)
                if member is None or not member.alive:
                    continue
                try:
                    member.ap.register_node(node_id, self._rates[node_id])
                except SpectrumExhausted:
                    continue
                new_ap = ap_id
                break
            if new_ap is None:
                del self.serving[node_id]
                self.orphaned.add(node_id)
                if self.telemetry.enabled:
                    self.telemetry.count("cluster.orphaned")
            else:
                self.serving[node_id] = new_ap
                self.failover_count += 1
                migrated.append(node_id)
                if self.telemetry.enabled:
                    self.telemetry.count("cluster.failovers")
        return migrated

    def recover(self, ap_id: int, now_s: float) -> MmxAccessPoint:
        """Reboot a crashed AP from its last checkpoint.

        The restored AP reproduces its pre-crash spectrum map exactly;
        nodes that migrated to a survivor while it was down are then
        released from the restored copy (they live elsewhere now), and
        checkpointed nodes currently orphaned are re-adopted.  An AP
        that never checkpointed reboots empty — every registration it
        held is simply gone, which is the whole argument for the
        checkpoint cadence.

        A checkpoint that turns out to be corrupt (in memory that can't
        happen, but an on-disk one can rot, tear, or be tampered with)
        is *skipped and reported* — logged on
        :attr:`recovery_errors`, counted as
        ``cluster.corrupt_checkpoints`` — and the AP reboots empty.
        Raising mid-failover would turn one bad file into a cluster
        outage; ``repro fsck`` on the file tells the rest of the story.
        """
        member = self.members[ap_id]
        if member.alive:
            raise ValueError(f"AP {ap_id} is not down")
        checkpoint = member.checkpoint
        if checkpoint is None and self.checkpoint_dir is not None:
            # Process-restart path: the in-memory capture is gone, but
            # the last persisted one may survive on disk.
            path = self.checkpoint_path(ap_id)
            if path.exists():
                try:
                    checkpoint = ApCheckpoint.load(path)
                except (CheckpointError, OSError) as exc:
                    self._report_bad_checkpoint(ap_id, str(exc))
        member.ap = MmxAccessPoint()
        if checkpoint is not None:
            try:
                member.ap = checkpoint.restore()
            except (CheckpointError, KeyError, TypeError,
                    ValueError) as exc:
                self._report_bad_checkpoint(ap_id, str(exc))
        for node_id in list(member.ap.registered_nodes):
            owner = self.serving.get(node_id)
            if owner == ap_id:
                continue          # never migrated; still ours
            if node_id in self.orphaned:
                self.orphaned.discard(node_id)
                self.serving[node_id] = ap_id
            elif owner is None:
                # A node this cluster has never seen: we are a restarted
                # process and the checkpoint is the only record of it.
                # Adopt it (default preference, checkpointed rate).
                self.serving[node_id] = ap_id
                self._preferences.setdefault(
                    node_id, tuple(sorted(self.members)))
                registration = member.ap.registration(node_id)
                self._rates.setdefault(
                    node_id, float(registration.config.bit_rate_bps))
            else:
                member.ap.deregister_node(node_id)
        member.alive = True
        self.monitor.beat(ap_id, now_s)
        tel = self.telemetry
        if tel.enabled:
            tel.count("cluster.recoveries")
            tel.gauge("cluster.alive_aps", float(len(self.alive_ap_ids())))
            span = self._ap_outage_spans.pop(ap_id, None)
            if span is not None:
                tel.end(span)
        return member.ap

    def stats(self) -> dict[str, int]:
        """Cluster-level health counters."""
        return {
            "aps": len(self.members),
            "alive_aps": len(self.alive_ap_ids()),
            "served_nodes": sum(self.is_served(n) for n in self.serving),
            "orphaned_nodes": len(self.orphaned),
            "failovers": self.failover_count,
            "silence_failovers": self.silence_failovers,
        }


@dataclass(frozen=True)
class FailoverResult:
    """Outcome of one adaptive-vs-frozen failover comparison."""

    times_s: FloatArray
    adaptive_success: FloatArray
    """Per-step mean expected frame survival across nodes (cluster)."""

    static_success: FloatArray
    """Same, for the frozen single-AP baseline."""

    detection_latency_s: float
    failover_count: int
    orphaned_nodes: int

    @property
    def adaptive_delivery_ratio(self) -> float:
        """Expected delivered fraction over the whole run (cluster)."""
        return float(np.mean(self.adaptive_success))

    @property
    def static_delivery_ratio(self) -> float:
        """Expected delivered fraction for the frozen baseline."""
        return float(np.mean(self.static_success))

    @property
    def gain(self) -> float:
        """How much delivery the failover machinery buys."""
        return self.adaptive_delivery_ratio - self.static_delivery_ratio


class FailoverSimulation:
    """Scores a cluster against a frozen single-AP under AP crashes.

    Both policies see the same crash schedule and the same per-(node,
    AP) frame-survival probabilities from
    :func:`repro.network.network.frame_success_matrix`, so the
    comparison is deterministic:

    * **adaptive** — the full :class:`Cluster`: heartbeat detection,
      failover to the best surviving AP, checkpointed recovery when the
      crash window ends;
    * **static** — every node on AP 0, no heartbeat, no checkpoint: the
      first crash of AP 0 erases its control-plane state and, with no
      recovery path, its nodes deliver nothing for the rest of the run
      (the seed repository's behaviour).
    """

    def __init__(self, room: Room, ap_positions: Sequence[Point],
                 node_positions: Sequence[Point],
                 demanded_rate_bps: float = 1e6,
                 payload_bytes: int = 256,
                 heartbeat: HeartbeatMonitor | None = None,
                 checkpoint_interval_s: float = 1.0,
                 link_kwargs: dict[str, Any] | None = None,
                 telemetry: TelemetryRecorder | None = None):
        from ..network.network import frame_success_matrix

        if checkpoint_interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.telemetry = telemetry if telemetry is not None \
            else NullRecorder()
        """Recorder handed to the per-run :class:`Cluster` (so the
        ``cluster.*`` family lands in the export) and whose clock this
        simulation advances one ``dt_s`` per lock-step iteration."""
        self.ap_positions = list(ap_positions)
        self.node_positions = list(node_positions)
        self.demanded_rate_bps = float(demanded_rate_bps)
        self.heartbeat = heartbeat or HeartbeatMonitor(interval_s=0.5,
                                                       miss_threshold=3)
        self.checkpoint_interval_s = float(checkpoint_interval_s)
        self.success = frame_success_matrix(
            room, self.ap_positions, self.node_positions,
            payload_bytes=payload_bytes, link_kwargs=link_kwargs)

    def _crash_windows(self, schedule: FaultSchedule
                       ) -> list[tuple[float, float, int]]:
        """Extract (start_s, end_s, ap_index) from ``ap_crash`` events."""
        windows: list[tuple[float, float, int]] = []
        for event in schedule.events:
            if event.kind != "ap_crash":
                continue
            ap_index = int(event.severity)
            if 0 <= ap_index < len(self.ap_positions):
                windows.append((event.start_s, event.end_s, ap_index))
        return windows

    def run(self, schedule: FaultSchedule,
            dt_s: float = 0.1) -> FailoverResult:
        """Step both policies through the schedule in lock step."""
        if dt_s <= 0:
            raise ValueError("time step must be positive")
        windows = self._crash_windows(schedule)

        # A fresh monitor per run: the one configured on the simulation
        # is a template (its parameters), not shared mutable state — a
        # second run must not see the first run's beat history.
        monitor = HeartbeatMonitor(
            interval_s=self.heartbeat.interval_s,
            miss_threshold=self.heartbeat.miss_threshold)
        cluster = Cluster(
            aps=[MmxAccessPoint() for _ in self.ap_positions],
            heartbeat=monitor,
            telemetry=self.telemetry)
        num_nodes = len(self.node_positions)
        for i in range(num_nodes):
            preference = [int(j) for j in np.argsort(-self.success[i])]
            cluster.register_node(i, self.demanded_rate_bps, preference)
        cluster.checkpoint_all()

        static_ap = MmxAccessPoint()
        for i in range(num_nodes):
            static_ap.register_node(i, self.demanded_rate_bps)
        static_state_lost = False

        times = np.arange(0.0, schedule.duration_s, dt_s)
        adaptive = np.zeros_like(times)
        static = np.zeros_like(times)
        next_checkpoint_s = self.checkpoint_interval_s

        crash_targets = sorted({ap for _, _, ap in windows})
        tel = self.telemetry
        for k, t in enumerate(times):
            if tel.enabled:
                tel.clock.advance(dt_s)
            # An AP is down while *any* of its crash windows is open
            # (windows may overlap); it reboots once all have closed.
            for ap_index in crash_targets:
                down = any(start_s <= t < end_s
                           for start_s, end_s, ap in windows
                           if ap == ap_index)
                member = cluster.members[ap_index]
                if down and member.alive:
                    cluster.crash(ap_index)
                    if ap_index == 0:
                        # The baseline AP reboots too when the window
                        # ends, but without a checkpoint its state is
                        # gone for good.
                        static_state_lost = True
                elif not down and not member.alive:
                    cluster.recover(ap_index, t)

            if t >= next_checkpoint_s:
                cluster.checkpoint_all()
                next_checkpoint_s += self.checkpoint_interval_s

            cluster.step(t)

            served = [self.success[i, cluster.serving_ap(i)]
                      for i in range(num_nodes) if cluster.is_served(i)]
            adaptive[k] = float(np.sum(served)) / num_nodes
            if not static_state_lost:
                static[k] = float(np.mean(self.success[:, 0]))

        if tel.enabled:
            tel.event("cluster.run",
                      duration_s=float(schedule.duration_s),
                      failovers=cluster.failover_count,
                      orphaned=len(cluster.orphaned))
        return FailoverResult(
            times_s=times,
            adaptive_success=adaptive,
            static_success=static,
            detection_latency_s=self.heartbeat.detection_latency_s,
            failover_count=cluster.failover_count,
            orphaned_nodes=len(cluster.orphaned),
        )
