"""Crash-safe AP state: versioned, integrity-hashed checkpoints.

Every piece of mmX control-plane state lives in AP memory — node
registrations, the FDM spectrum map (including interference blocks),
and the TMA harmonic assignments.  A crash loses all of it and strands
every registered node (they are feedback-free; they keep transmitting
into a void).  :class:`ApCheckpoint` makes that state durable:

* ``capture`` walks a :class:`repro.node.access_point.MmxAccessPoint`
  into a plain dataclass-of-primitives;
* ``to_dict`` / ``from_dict`` round-trip it through JSON-safe dicts
  with a ``schema_version`` and a SHA-256 ``integrity`` hash over the
  canonical serialisation, so a truncated or tampered checkpoint is
  rejected instead of restored;
* ``restore`` rebuilds an AP whose allocator plans, blocked ranges,
  registrations and TMA slots are *identical* to the captured one —
  the property the chaos-failover gate asserts bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

from ..core.ask_fsk import AskFskConfig
from ..durability.integrity import digest as _digest
from ..durability.io import FsBackend, atomic_replace
from ..network.fdm import ChannelPlan, FdmAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..node.access_point import MmxAccessPoint

__all__ = ["CHECKPOINT_SCHEMA_VERSION", "CheckpointError", "ApCheckpoint"]

CHECKPOINT_SCHEMA_VERSION = 1
"""Bump on any change to the checkpoint layout; ``from_dict`` refuses
newer (unknown) schemas rather than misreading them."""


class CheckpointError(Exception):
    """Raised when a checkpoint is unreadable, tampered, or too new."""


@dataclass(frozen=True)
class ApCheckpoint:
    """One AP's complete control-plane state, as plain primitives."""

    schema_version: int
    band: dict
    """Allocator sizing parameters (band edges, overhead, guard)."""

    plans: tuple
    """Every FDM allocation: (node_id, center_hz, bandwidth_hz)."""

    blocked: tuple
    """Interference-blocked spectrum ranges: (low_hz, high_hz)."""

    registrations: tuple
    """Per-node admission state: id, rate numerology, channel."""

    tma_assignments: tuple
    """SDM bookkeeping: (node_id, harmonic_index) pairs."""

    reallocation_failures: int
    """Carried through restore so stats survive the crash too."""

    # --- capture ----------------------------------------------------------

    @classmethod
    def capture(cls, access_point) -> ApCheckpoint:
        """Snapshot a live :class:`MmxAccessPoint`."""
        alloc = access_point.allocator
        plans = tuple(sorted(
            (p.node_id, p.center_hz, p.bandwidth_hz)
            for p in alloc.plans))
        registrations = tuple(sorted(
            (reg.node_id,
             reg.channel.center_hz, reg.channel.bandwidth_hz,
             reg.config.bit_rate_bps, reg.config.sample_rate_hz,
             reg.config.fsk_deviation_hz)
            for reg in (access_point.registration(n)
                        for n in access_point.registered_nodes)))
        return cls(
            schema_version=CHECKPOINT_SCHEMA_VERSION,
            band={
                "band_low_hz": alloc.band_low_hz,
                "band_high_hz": alloc.band_high_hz,
                "bandwidth_per_bps": alloc.bandwidth_per_bps,
                "guard_fraction": alloc.guard_fraction,
                "min_channel_hz": alloc.min_channel_hz,
            },
            plans=plans,
            blocked=tuple(alloc.blocked_ranges),
            registrations=registrations,
            tma_assignments=tuple(sorted(
                access_point.tma_assignments.items())),
            reallocation_failures=access_point.reallocation_failures,
        )

    # --- serialisation ----------------------------------------------------

    def _state_dict(self) -> dict:
        state = asdict(self)
        # JSON has no tuples; normalise to lists so the canonical form
        # (and therefore the digest) is encoding-independent.
        return json.loads(json.dumps(state))

    def to_dict(self) -> dict:
        """Serialise to a JSON-safe dict with an integrity hash."""
        state = self._state_dict()
        state["integrity"] = _digest(state)
        return state

    def to_json(self) -> str:
        """Serialise to a JSON string (the on-disk checkpoint format)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_dict(cls, data: dict) -> ApCheckpoint:
        """Deserialise, verifying schema version and integrity hash."""
        if not isinstance(data, dict):
            raise CheckpointError("checkpoint must be a dict")
        state = dict(data)
        stored = state.pop("integrity", None)
        if stored is None:
            raise CheckpointError("checkpoint carries no integrity hash")
        if _digest(state) != stored:
            raise CheckpointError("checkpoint integrity hash mismatch")
        version = state.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema {version!r} "
                f"(this build reads {CHECKPOINT_SCHEMA_VERSION})")
        try:
            return cls(
                schema_version=version,
                band=dict(state["band"]),
                plans=tuple(tuple(p) for p in state["plans"]),
                blocked=tuple(tuple(b) for b in state["blocked"]),
                registrations=tuple(tuple(r)
                                    for r in state["registrations"]),
                tma_assignments=tuple(tuple(t)
                                      for t in state["tma_assignments"]),
                reallocation_failures=int(state["reallocation_failures"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> ApCheckpoint:
        """Deserialise from the JSON string format."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint is not JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path, fs: FsBackend | None = None) -> None:
        """Write the checkpoint to a file, atomically and durably.

        Routed through :func:`repro.durability.atomic_replace`
        (write-temp → fsync → rename → fsync parent dir): a crash at
        any point leaves either the previous checkpoint or this one,
        never a half-written file — the property the old
        "atomic enough for a sim" ``open()``-and-write lacked.
        """
        atomic_replace(path, self.to_json() + "\n", fs=fs)

    @classmethod
    def load(cls, path) -> ApCheckpoint:
        """Read and verify a checkpoint file."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # --- restore ----------------------------------------------------------

    def restore(self, hardware: Any = None, antenna: Any = None,
                codec: Any = None) -> MmxAccessPoint:
        """Rebuild an AP with exactly this control-plane state.

        The returned :class:`MmxAccessPoint` reproduces the captured
        spectrum map (plans land via
        :meth:`FdmAllocator.restore_plan`, not a fresh first-fit — so
        allocation order cannot shift channels), registrations,
        demodulators, TMA slots, and stats counters.
        """
        from ..node.access_point import MmxAccessPoint

        band = self.band
        allocator = FdmAllocator(
            band_low_hz=band["band_low_hz"],
            band_high_hz=band["band_high_hz"],
            bandwidth_per_bps=band["bandwidth_per_bps"],
            guard_fraction=band["guard_fraction"],
            min_channel_hz=band["min_channel_hz"])
        for low_hz, high_hz in self.blocked:
            allocator.block_range(low_hz, high_hz)
        for node_id, center_hz, bandwidth_hz in self.plans:
            allocator.restore_plan(ChannelPlan(
                node_id=int(node_id), center_hz=center_hz,
                bandwidth_hz=bandwidth_hz))
        ap = MmxAccessPoint(hardware=hardware, antenna=antenna,
                            allocator=allocator, codec=codec)
        for (node_id, center_hz, bandwidth_hz,
             bit_rate_bps, sample_rate_hz, fsk_deviation_hz) in \
                self.registrations:
            config = AskFskConfig(bit_rate_bps=bit_rate_bps,
                                  sample_rate_hz=sample_rate_hz,
                                  fsk_deviation_hz=fsk_deviation_hz)
            ap.adopt_registration(int(node_id),
                                  ChannelPlan(node_id=int(node_id),
                                              center_hz=center_hz,
                                              bandwidth_hz=bandwidth_hz),
                                  config)
        for node_id, harmonic in self.tma_assignments:
            ap.assign_tma_slot(int(node_id), int(harmonic))
        ap.reallocation_failures = self.reallocation_failures
        return ap
