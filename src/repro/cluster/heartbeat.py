"""Heartbeat-based AP failure detection with explicit simulated time.

Every AP in a cluster beats on a fixed interval over the backhaul /
side-channel; the detector declares an AP dead after
``miss_threshold`` consecutive intervals with no beat.  Detection is
therefore *not* instant — a crashed AP strands its nodes for up to
``detection_latency_s`` before failover can begin, which is exactly
the window the chaos-failover experiment measures.

Time is always passed in by the caller (the simulation clock), so the
detector is deterministic and can never hang a test waiting on a wall
clock.
"""

from __future__ import annotations

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Tracks last-heard times and declares silence after a threshold."""

    def __init__(self, interval_s: float = 0.5, miss_threshold: int = 3):
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("need at least one missed beat to declare death")
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self._last_beat_s: dict[int, float] = {}
        self._declared_dead: set[int] = set()

    @property
    def detection_latency_s(self) -> float:
        """Worst-case time from crash to a death declaration."""
        return self.interval_s * self.miss_threshold

    def watch(self, ap_id: int, now_s: float) -> None:
        """Start tracking an AP (counts as an immediate beat)."""
        self.beat(ap_id, now_s)

    def beat(self, ap_id: int, now_s: float) -> None:
        """Record one heartbeat; a beating AP is never dead."""
        previous = self._last_beat_s.get(ap_id)
        if previous is not None and now_s < previous:
            raise ValueError("heartbeats must arrive in time order")
        self._last_beat_s[ap_id] = float(now_s)
        self._declared_dead.discard(ap_id)

    def is_alive(self, ap_id: int, now_s: float) -> bool:
        """Whether an AP's silence is still within the threshold."""
        last = self._last_beat_s.get(ap_id)
        if last is None:
            raise KeyError(f"AP {ap_id} is not being watched")
        return now_s - last < self.detection_latency_s

    def newly_dead(self, now_s: float) -> list[int]:
        """APs whose silence just crossed the threshold (each reported
        once, until a fresh beat revives them)."""
        dead = []
        for ap_id in sorted(self._last_beat_s):
            if ap_id in self._declared_dead:
                continue
            if not self.is_alive(ap_id, now_s):
                self._declared_dead.add(ap_id)
                dead.append(ap_id)
        return dead

    def watched(self) -> list[int]:
        """Every AP currently being tracked (sorted)."""
        return sorted(self._last_beat_s)
